#!/usr/bin/env bash
# Snapshot the workspace's public API surface into a sorted, diffable
# golden file, or verify the committed golden is current.
#
#   tools/api_snapshot.sh            # rewrite API_SURFACE.txt
#   tools/api_snapshot.sh --check    # diff against API_SURFACE.txt; exit 1
#                                    # on drift (the CI api-surface job)
#
# The snapshot is every `pub` item line in the library sources (the
# umbrella crate plus crates/*/src), excluding binaries, benches, and
# anything after a `#[cfg(test)]` marker in a file (test modules sit at
# the bottom of files in this repo). `pub(crate)`/`pub(super)` items are
# not public API and are not matched. This is a textual tripwire, not a
# semantic API model: any intentional surface change is a one-command
# regeneration away, while an accidental one fails CI with a readable
# diff.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN="API_SURFACE.txt"

snapshot() {
    find src/lib.rs crates/*/src -name '*.rs' \
        ! -path '*/bin/*' ! -path '*/benches/*' ! -path '*/tests/*' -print0 |
        LC_ALL=C sort -z |
        xargs -0 awk '
            FNR == 1 { skip = 0 }
            /#\[cfg\(test\)\]/ { skip = 1 }
            !skip && /^[[:space:]]*pub (fn|struct|enum|trait|type|const|static|mod|use|macro_rules!) / {
                line = $0
                sub(/^[[:space:]]+/, "", line)
                sub(/[[:space:]]*\{[^}]*$/, "", line)
                sub(/[[:space:]]+$/, "", line)
                print FILENAME ": " line
            }' |
        LC_ALL=C sort
}

case "${1:---write}" in
--write)
    snapshot >"$GOLDEN"
    echo "wrote $GOLDEN ($(wc -l <"$GOLDEN") items)"
    ;;
--check)
    if ! snapshot | diff -u "$GOLDEN" - >&2; then
        echo "error: public API surface drifted from $GOLDEN." >&2
        echo "If the change is intentional, run tools/api_snapshot.sh and commit the result." >&2
        exit 1
    fi
    echo "$GOLDEN is current"
    ;;
*)
    echo "usage: tools/api_snapshot.sh [--write|--check]" >&2
    exit 2
    ;;
esac
