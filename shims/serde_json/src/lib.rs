//! Offline stand-in for `serde_json` (see `shims/README.md`).
//!
//! Renders the `serde` shim's [`Value`] tree as JSON — compact
//! (`to_string`) or pretty with 2-space indentation (`to_string_pretty`,
//! matching real serde_json's layout) — and parses JSON text back into a
//! [`Value`] (`from_str`), which the test suite uses to validate output.

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Convert `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, v: f64) {
    if !v.is_finite() {
        // Real serde_json errors on non-finite floats; rendering null keeps
        // diagnostics flowing in a simulation report instead of aborting it.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        // Match serde_json/ryu: integral floats keep a ".0" suffix.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(pad) = indent {
                    out.push('\n');
                    out.push_str(&pad.repeat(depth + 1));
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(pad) = indent {
                out.push('\n');
                out.push_str(&pad.repeat(depth));
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(pad) = indent {
                    out.push('\n');
                    out.push_str(&pad.repeat(depth + 1));
                }
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if let Some(pad) = indent {
                out.push('\n');
                out.push_str(&pad.repeat(depth));
            }
            out.push('}');
        }
    }
}

/// Parse JSON text into a [`Value`] tree.
pub fn from_str(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, tok: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{tok}` at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Value::Null),
            Some(b't') => self.eat("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| Error("bad escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape \\{}", other as char))),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte stream.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error(e.to_string()))?;
                    let ch = s.chars().next().unwrap();
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(e.to_string()))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("bad array at {:?}", other))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error(format!("bad object at {:?}", other))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_matches_serde_json_layout() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("FIG2".into())),
            ("rate".into(), Value::Float(5.0)),
            ("conns".into(), Value::UInt(20)),
            (
                "checks".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(
            out,
            r#"{"id":"FIG2","rate":5.0,"conns":20,"checks":[true,null]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents_two_spaces() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::UInt(1)]))]);
        let mut out = String::new();
        write_value(&mut out, &v, Some("  "), 0);
        assert_eq!(out, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parse_round_trip() {
        let text =
            r#"{"id":"FIG2","rate":5.5,"n":-3,"ok":true,"xs":[1,2.5,"a\nb"],"nothing":null}"#;
        let v = from_str(text).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, text);
    }

    #[test]
    fn float_formatting() {
        let mut out = String::new();
        write_float(&mut out, 5.0);
        assert_eq!(out, "5.0");
        out.clear();
        write_float(&mut out, 0.1);
        assert_eq!(out, "0.1");
        out.clear();
        write_float(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn string_escapes() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\n\u{01}");
        assert_eq!(out, r#""a\"b\\c\n\u0001""#);
        assert_eq!(
            from_str(&out).unwrap(),
            Value::Str("a\"b\\c\n\u{01}".into())
        );
    }
}
