//! Offline stand-in for the `crossbeam` crate (see `shims/README.md`).
//!
//! Since Rust 1.63 the standard library ships scoped threads with the same
//! borrow-friendly semantics crossbeam pioneered, so this shim simply
//! re-exports them under the `crossbeam::thread` path the workspace uses.

/// Scoped thread support (`crossbeam::thread::scope`).
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}
