//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Provides the [`RngCore`] trait that `sim_core::rng::SimRng` implements,
//! with the same method signatures as rand 0.8 so the real crate can be
//! swapped back in without source changes.

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The simulator's RNG is infallible, so this is never constructed in
/// practice; it exists to keep signatures compatible with rand 0.8.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RNG error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (rand 0.8 subset).
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fill `dest` with random data, or report a failure.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
