//! Offline stand-in for `criterion` (see `shims/README.md`).
//!
//! A timing-only harness: each benchmark runs a handful of iterations and
//! prints a mean wall-clock time per iteration. No statistics, plots, or
//! baselines. `criterion_main!` exits immediately when invoked by
//! `cargo test` (any `--test`-ish flag), so bench targets stay inert in
//! the test suite.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs the closure under test; handed to `bench_function` closures.
pub struct Bencher {
    _private: (),
}

const WARMUP_ITERS: u64 = 1;
const MEASURE_ITERS: u64 = 5;

impl Bencher {
    /// Time `f`, printing mean ns/iter over a few iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        let mean = start.elapsed() / MEASURE_ITERS as u32;
        println!("    {:>12} ns/iter (~{:.3?})", mean.as_nanos(), mean);
    }
}

/// A named group of benchmarks; the builder methods are accepted and
/// ignored (this shim does fixed-iteration timing).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Ignored (shim runs a fixed iteration count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored (shim runs a fixed iteration count).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ignored (shim runs a fixed iteration count).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench: {}/{}", self.name, id);
        f(&mut Bencher { _private: () });
        self
    }

    /// End the group (no-op).
    pub fn finish(self) {}
}

/// Entry point handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench: {id}");
        f(&mut Bencher { _private: () });
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` for a bench binary. Exits immediately under
/// `cargo test` (which passes `--test` to harness-less bench targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::args().any(|a| a == "--test" || a == "--list") {
                return;
            }
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure() {
        let mut calls = 0u64;
        Bencher { _private: () }.iter(|| calls += 1);
        assert_eq!(calls, WARMUP_ITERS + MEASURE_ITERS);
    }

    #[test]
    fn group_builder_chains() {
        let mut c = Criterion::default();
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(1))
                .bench_function("one", |b| b.iter(|| ran = true));
            g.finish();
        }
        assert!(ran);
    }
}
