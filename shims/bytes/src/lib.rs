//! Offline stand-in for the `bytes` crate (see `shims/README.md`).
//!
//! Backs [`Bytes`]/[`BytesMut`] with a plain `Vec<u8>` — no refcounted
//! zero-copy slicing, which the workspace's wire codec does not need.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (cheap to clone in the real crate; here a Vec).
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor (bytes 1.x subset, big-endian getters).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unread portion.
    fn chunk(&self) -> &[u8];

    /// Read a `u8`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access to a growable buffer (bytes 1.x subset, big-endian putters).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEADBEEF);
        buf.put_slice(&[1, 2, 3]);
        assert_eq!(buf.len(), 10);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.remaining(), 3);
        r.advance(3);
        assert!(r.is_empty());
    }

    #[test]
    fn index_mut_patches_in_place() {
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        buf[1] = 0xFF;
        assert_eq!(&buf[..], &[0, 0xFF, 0, 0]);
    }
}
