//! Offline stand-in for `serde_derive` (see `shims/README.md`).
//!
//! Hand-rolled token parsing (no `syn`/`quote` — the registry is
//! unreachable). Supports exactly the type shapes the workspace derives:
//! non-generic named-field structs, tuple structs, unit structs, and enums
//! with unit/tuple/struct variants, plus the container-level
//! `#[serde(untagged)]` attribute and the field-level
//! `#[serde(skip_serializing_if = "path")]` attribute. Anything else
//! panics at compile time with a clear message rather than silently
//! mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim data model: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item)
        .parse()
        .expect("serde_derive shim: generated code must parse")
}

/// Derive `serde::Deserialize`: a no-op marker (the workspace never
/// deserializes through serde), kept so `#[derive(Deserialize)]` compiles.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

struct Field {
    name: String,
    /// Predicate path from `#[serde(skip_serializing_if = "path")]`: when
    /// it returns true for the field's value, the key is omitted entirely.
    skip_if: Option<String>,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    untagged: bool,
    shape: Shape,
}

/// Skip a run of outer attributes; return whether any was `#[serde(untagged)]`.
fn skip_attrs(tokens: &[TokenTree], idx: &mut usize) -> bool {
    let mut untagged = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*idx) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*idx + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(name)) = inner.first() {
                if name.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        if args.stream().into_iter().any(
                            |t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "untagged"),
                        ) {
                            untagged = true;
                        } else {
                            panic!(
                                "serde_derive shim: unsupported #[serde(...)] attribute \
                                 (only `untagged` is implemented): {args}"
                            );
                        }
                    }
                }
            }
            *idx += 2;
        } else {
            break;
        }
    }
    untagged
}

/// Skip a run of field-level attributes; return the predicate path if one
/// of them was `#[serde(skip_serializing_if = "path")]`.
fn skip_field_attrs(tokens: &[TokenTree], idx: &mut usize) -> Option<String> {
    let mut skip_if = None;
    while let Some(TokenTree::Punct(p)) = tokens.get(*idx) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*idx + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(name)) = inner.first() {
                if name.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        skip_if = Some(parse_skip_serializing_if(args.stream()));
                    }
                }
            }
            *idx += 2;
        } else {
            break;
        }
    }
    skip_if
}

/// Parse `skip_serializing_if = "path"` — the only field-level serde
/// attribute the shim implements — and return the bare predicate path.
fn parse_skip_serializing_if(stream: TokenStream) -> String {
    let args: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (args.first(), args.get(1), args.get(2), args.len()) {
        (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(path)),
            3,
        ) if key.to_string() == "skip_serializing_if" && eq.as_char() == '=' => {
            path.to_string().trim_matches('"').to_string()
        }
        _ => panic!(
            "serde_derive shim: unsupported field #[serde(...)] attribute (only \
             `skip_serializing_if = \"...\"` is implemented): {stream}"
        ),
    }
}

/// Skip an optional `pub` / `pub(crate)` visibility.
fn skip_vis(tokens: &[TokenTree], idx: &mut usize) {
    if matches!(tokens.get(*idx), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *idx += 1;
        if matches!(tokens.get(*idx), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *idx += 1;
        }
    }
}

/// Count depth-0 fields of a tuple body (commas outside angle brackets).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut fields = 0usize;
    let mut any = false;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    fields += 1;
                    any = false;
                    continue;
                }
                _ => {}
            }
        }
        any = true;
    }
    if any {
        fields += 1;
    }
    fields
}

/// Parse the names (and per-field serde attributes) of named fields from
/// a brace-group body.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut idx = 0;
    let mut names = Vec::new();
    while idx < tokens.len() {
        let skip_if = skip_field_attrs(&tokens, &mut idx);
        skip_vis(&tokens, &mut idx);
        let name = match tokens.get(idx) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        idx += 1;
        match tokens.get(idx) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => idx += 1,
            other => {
                panic!("serde_derive shim: expected ':' after field `{name}`, found {other:?}")
            }
        }
        // Skip the type: consume until a depth-0 comma.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(idx) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            idx += 1;
        }
        idx += 1; // the comma (or past-the-end)
        names.push(Field { name, skip_if });
    }
    names
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut idx = 0;
    let mut variants = Vec::new();
    while idx < tokens.len() {
        skip_attrs(&tokens, &mut idx);
        let name = match tokens.get(idx) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, found {other:?}"),
        };
        idx += 1;
        let fields = match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                idx += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                idx += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        match tokens.get(idx) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => idx += 1,
            None => {}
            other => panic!(
                "serde_derive shim: expected ',' after variant `{name}` \
                 (discriminants are unsupported), found {other:?}"
            ),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut idx = 0;
    let untagged = skip_attrs(&tokens, &mut idx);
    skip_vis(&tokens, &mut idx);
    let kind = match tokens.get(idx) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, found {other:?}"),
    };
    idx += 1;
    let name = match tokens.get(idx) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    idx += 1;
    if matches!(tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("serde_derive shim: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive shim: `{other}` items are not supported"),
    };
    Item {
        name,
        untagged,
        shape,
    }
}

fn object_literal(pairs: &[(String, String)]) -> String {
    let fields: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!(
        "::serde::Value::Object(::std::vec::Vec::from([{}]))",
        fields.join(", ")
    )
}

fn array_literal(items: &[String]) -> String {
    format!(
        "::serde::Value::Array(::std::vec::Vec::from([{}]))",
        items.join(", ")
    )
}

/// Render a named-field object. `prefix` is how a field is reached
/// (`"&self."` for structs, `""` for enum-variant bindings, which are
/// already references under match ergonomics). Fields without `skip_if`
/// use the flat literal; any skipping field switches to a push-based
/// builder so omitted keys never appear.
fn named_object(fields: &[Field], prefix: &str) -> String {
    if fields.iter().all(|f| f.skip_if.is_none()) {
        let pairs: Vec<(String, String)> = fields
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    format!("::serde::Serialize::to_value({prefix}{})", f.name),
                )
            })
            .collect();
        return object_literal(&pairs);
    }
    let mut stmts = Vec::new();
    for f in fields {
        let name = &f.name;
        let push = format!(
            "__fields.push((::std::string::String::from(\"{name}\"), \
             ::serde::Serialize::to_value({prefix}{name})));"
        );
        match &f.skip_if {
            Some(pred) => stmts.push(format!("if !{pred}({prefix}{name}) {{ {push} }}")),
            None => stmts.push(push),
        }
    }
    format!(
        "{{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new(); {} ::serde::Value::Object(__fields) }}",
        stmts.join(" ")
    )
}

fn render_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => match fields {
            Fields::Unit => "::serde::Value::Null".to_string(),
            Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                array_literal(&items)
            }
            Fields::Named(fields) => named_object(fields, "&self."),
        },
        Shape::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                let (pattern, value) = match &v.fields {
                    Fields::Unit => (
                        format!("{name}::{vname}"),
                        if item.untagged {
                            "::serde::Value::Null".to_string()
                        } else {
                            format!("::serde::Value::Str(::std::string::String::from(\"{vname}\"))")
                        },
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pattern = format!("{name}::{vname}({})", binds.join(", "));
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            array_literal(&items)
                        };
                        let value = if item.untagged {
                            inner
                        } else {
                            object_literal(&[(vname.clone(), inner)])
                        };
                        (pattern, value)
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pattern = format!("{name}::{vname} {{ {} }}", binds.join(", "));
                        let inner = named_object(fields, "");
                        let value = if item.untagged {
                            inner
                        } else {
                            object_literal(&[(vname.clone(), inner)])
                        };
                        (pattern, value)
                    }
                };
                arms.push(format!("{pattern} => {value},"));
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}
