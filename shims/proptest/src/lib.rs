//! Offline stand-in for `proptest` (see `shims/README.md`).
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest!` test blocks (with optional `#![proptest_config(..)]`),
//! range/`Just`/`prop_oneof!`/`collection::vec`/`sample::subsequence`
//! strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Behavioural deviations from real proptest, by design:
//! - **Deterministic**: each test's RNG is seeded from a hash of the test
//!   name, so runs are reproducible with no failure-persistence files.
//! - **No shrinking**: a failing case reports the assertion directly.
//! - Default case count is 64 (proptest's is 256); override with the
//!   `PROPTEST_CASES` environment variable.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draw one value from this strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f` (no shrinking in this shim,
        /// so this is a plain post-map).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the strategy type, so differently-typed strategies (e.g.
        /// `prop_map` arms with distinct closures) can share a union.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy, as returned by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of its payload.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-typed strategies — the engine behind
    /// `prop_oneof!`. (Real proptest unifies heterogeneous arms; the shim
    /// requires one strategy type per union, which is all this workspace
    /// uses and keeps integer-literal inference working.)
    pub struct Union<S> {
        arms: Vec<S>,
    }

    impl<S> Union<S> {
        /// Build from one strategy per `prop_oneof!` arm.
        pub fn new(arms: Vec<S>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Weighted choice between same-typed strategies — the engine behind
    /// the `weight => strategy` form of `prop_oneof!`. Arms with distinct
    /// types (e.g. different `prop_map` closures) can be unified with
    /// [`Strategy::boxed`].
    pub struct WeightedUnion<S> {
        arms: Vec<(u32, S)>,
        total: u64,
    }

    impl<S> WeightedUnion<S> {
        /// Build from `(weight, strategy)` pairs; weights must sum > 0.
        pub fn new(arms: Vec<(u32, S)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(
                total > 0,
                "prop_oneof! weights must sum to a positive value"
            );
            WeightedUnion { arms, total }
        }
    }

    impl<S: Strategy> Strategy for WeightedUnion<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut r = rng.next_u64() % self.total;
            for (w, s) in &self.arms {
                if r < *w as u64 {
                    return s.generate(rng);
                }
                r -= *w as u64;
            }
            unreachable!("weighted draw exceeded total weight")
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as $wide, *self.end() as $wide);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $wide) as $t
                }
            }
        )*};
    }

    impl_int_range!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let unit = rng.unit_f64() as $t;
                    self.start + (self.end - self.start) * unit
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let unit = rng.unit_f64() as $t;
                    self.start() + (self.end() - self.start()) * unit
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric spread — good enough for invariants.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy yielding arbitrary values of `T` (see [`crate::prelude::any`]).
    pub struct Any<T>(pub ::std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec`](fn@crate::collection::vec); converts from `usize` (exact length) and
    /// `Range<usize>` (half-open), like proptest's `SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from an inner strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy `element` and length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`sample::subsequence`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding order-preserving subsequences of a base vector.
    pub struct Subsequence<T: Clone> {
        base: Vec<T>,
        size: usize,
    }

    /// Pick `size` distinct elements of `base`, preserving their order.
    pub fn subsequence<T: Clone>(base: Vec<T>, size: usize) -> Subsequence<T> {
        assert!(size <= base.len(), "subsequence size exceeds base length");
        Subsequence { base, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            // Partial Fisher–Yates over indices, then sort to preserve order.
            let mut idx: Vec<usize> = (0..self.base.len()).collect();
            for i in 0..self.size {
                let j = i + (rng.next_u64() % (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            let mut chosen = idx[..self.size].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.base[i].clone()).collect()
        }
    }
}

/// Test execution: RNG and configuration.
pub mod test_runner {
    /// Deterministic RNG for property tests (SplitMix64).
    ///
    /// Seeded from a hash of the test's name so each test draws an
    /// independent, reproducible stream.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a, then burn one output so similar names diverge.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = TestRng { state: h };
            rng.next_u64();
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-block configuration (`#![proptest_config(..)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
        /// Shrink-iteration ceiling. This shim never shrinks (it reports
        /// the first failing case as-is), but the field keeps
        /// `..ProptestConfig::default()` struct updates meaningful and
        /// source-compatible with real proptest configs.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig {
                cases,
                max_shrink_iters: 1024,
            }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }
}

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy::{
        Any, Arbitrary, BoxedStrategy, Just, Strategy, Union, WeightedUnion,
    };
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Canonical strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(::std::marker::PhantomData)
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a plain function that draws `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    { $body }
                }
            }
        )*
    };
}

/// Choice between strategies: uniform (`a, b, c`) or weighted
/// (`3 => a, 1 => b`). All arms must be the same strategy type; use
/// [`strategy::Strategy::boxed`] to unify differently-typed arms.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $w:expr => $arm:expr ),+ $(,)? ) => {
        $crate::strategy::WeightedUnion::new(::std::vec![$( ($w, $arm) ),+])
    };
    ( $( $arm:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(::std::vec![$($arm),+])
    };
}

/// Assert within a property (maps to `assert!`; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Assert equality within a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Assert inequality within a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(1usize..8), &mut rng);
            assert!((1..8).contains(&v));
            let w = Strategy::generate(&(1u64..1_000), &mut rng);
            assert!((1..1_000).contains(&w));
            let f = Strategy::generate(&(-1e6f64..1e6), &mut rng);
            assert!((-1e6..1e6).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn subsequence_is_sorted_subset() {
        let mut rng = TestRng::for_test("subsequence_is_sorted_subset");
        let base: Vec<u64> = (0..60).collect();
        let strat = sample::subsequence(base.clone(), 60);
        let v = Strategy::generate(&strat, &mut rng);
        assert_eq!(v, base);
        let strat = sample::subsequence(base, 10);
        let v = Strategy::generate(&strat, &mut rng);
        assert_eq!(v.len(), 10);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::for_test("vec_sizes");
        let exact = collection::vec(any::<bool>(), 100);
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 100);
        let ranged = collection::vec(0u64..10, 1..200);
        for _ in 0..200 {
            let v = Strategy::generate(&ranged, &mut rng);
            assert!((1..200).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 1u64..100, ys in collection::vec(0u8..10, 0..5)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(ys.len() < 5);
        }

        #[test]
        fn oneof_yields_only_arms(k in prop_oneof![Just(1u64), Just(2), Just(10)]) {
            prop_assert!(k == 1 || k == 2 || k == 10);
        }

        #[test]
        fn prop_map_applies(x in (0u64..10).prop_map(|v| v * 3)) {
            prop_assert!(x % 3 == 0 && x < 30);
        }

        #[test]
        fn weighted_oneof_draws_boxed_arms(
            k in prop_oneof![
                3 => (0u64..5).prop_map(|v| v as i64).boxed(),
                1 => Just(-1i64).boxed(),
            ],
        ) {
            prop_assert!(k == -1 || (0..5).contains(&k));
        }
    }

    #[test]
    fn weighted_union_respects_weights() {
        let mut rng = TestRng::for_test("weighted_union_respects_weights");
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..1000)
            .filter(|_| Strategy::generate(&strat, &mut rng))
            .count();
        // ~900 expected; wide tolerance keeps this robust to RNG details.
        assert!((700..=995).contains(&hits), "weight skew missing: {hits}");
    }
}
