//! Offline stand-in for the `serde` crate (see `shims/README.md`).
//!
//! Serialization here is a single-step conversion to a JSON-shaped
//! [`Value`] tree (rendered by the `serde_json` shim), rather than serde's
//! visitor architecture — all the workspace needs is `to_string` /
//! `to_string_pretty` over derived types.
//!
//! `derive(Serialize)` follows serde's data model for the shapes the
//! workspace uses: named-field structs become objects, newtype structs
//! serialize as their inner value, unit enum variants as strings, data
//! variants as externally-tagged single-key objects, and
//! `#[serde(untagged)]` variants as their bare contents.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree — the output of [`Serialize::to_value`].
///
/// Object fields keep declaration order (a `Vec`, not a map), so rendered
/// JSON is deterministic and matches the struct definition.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Render this value as a JSON object key (map keys must be strings).
    pub fn as_key(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Bool(b) => b.to_string(),
            other => panic!("unsupported map key type: {other:?}"),
        }
    }

    /// Look up a field of an object (`None` for other variants or missing
    /// keys) — mirrors real serde_json's `Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string inside [`Value::Str`], if that is what this is.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned or non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }
}

/// A type that can convert itself into a [`Value`] tree.
pub trait Serialize {
    /// Convert to a [`Value`].
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Marker trait paired with the no-op `derive(Deserialize)`.
///
/// The workspace never deserializes through serde (the sweep cache uses its
/// own checksummed codec), so this carries no methods.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Serialize for std::path::Path {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_value().as_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value().as_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
