//! Appendix A.1's cellular experiment: on a bandwidth-limited LTE uplink
//! the pacing bottleneck never appears, so BBR ≈ Cubic — the exception
//! that proves the paper's rule.
//!
//! ```bash
//! cargo run --release --example cellular
//! ```

use mobile_bbr::congestion::CcKind;
use mobile_bbr::cpu_model::{CpuConfig, DeviceProfile};
use mobile_bbr::netsim::media::MediaProfile;
use mobile_bbr::sim_core::time::SimDuration;
use mobile_bbr::tcp_sim::{SimConfig, StackSim};

fn main() {
    println!("LTE uplink (≤20 Mbps, ~50 ms RTT), Pixel 6 Low-End, 4 connections:\n");
    for cc in [CcKind::Cubic, CcKind::Bbr] {
        let cfg = SimConfig::builder(DeviceProfile::pixel6(), CpuConfig::LowEnd, cc, 4)
            .media(MediaProfile::Lte)
            .duration(SimDuration::from_secs(30))
            .warmup(SimDuration::from_secs(5))
            .build()
            .expect("valid config");
        let res = StackSim::new(cfg).run();
        println!(
            "  {cc:<6} goodput {:>5.1} Mbps   mean RTT {:>6.1} ms   retransmits {:>5}",
            res.goodput_mbps(),
            res.mean_rtt_ms,
            res.total_retx,
        );
    }
    println!();
    println!("Both algorithms saturate the radio link, not the CPU: \"the cellular");
    println!("uplink experiments are bandwidth-limited … and do not reach sufficient");
    println!("levels to hit a pacing bottleneck on the mobile devices.\" (A.1)");
}
