//! Figure 2 in miniature: sweep the Table 1 device configurations and
//! connection counts for BBR vs Cubic, using the experiments API with
//! multi-seed averaging.
//!
//! ```bash
//! cargo run --release --example device_sweep            # quick preset
//! cargo run --release --example device_sweep -- full    # full preset
//! ```

use mobile_bbr::experiments::{ExperimentId, Params};

fn main() {
    let params = match std::env::args().nth(1).as_deref() {
        Some("full") => Params::full(),
        _ => Params::quick(),
    };
    println!(
        "Running the Figure 2 sweep ({} seeds per point)…\n",
        params.seeds
    );
    let exp = ExperimentId::Fig2
        .run(&params)
        .expect("experiment completes");
    println!("{}", exp.render_text());
    if exp.all_pass() {
        println!("All of Figure 2's qualitative claims reproduce.");
    } else {
        println!("Some shape checks missed — see the scorecard above.");
    }
}
