//! Capture a short simulated run as a pcap file and verify it reads back —
//! open `bbr_run.pcap` in Wireshark to see the pacing cadence: BBR's evenly
//! spaced autosized buffers vs Cubic's 64 KB ACK-clocked bursts.
//!
//! ```bash
//! cargo run --release --example pcap_dump
//! wireshark bbr_run.pcap   # if you have it
//! ```

use mobile_bbr::congestion::CcKind;
use mobile_bbr::cpu_model::{CpuConfig, DeviceProfile};
use mobile_bbr::netsim::pcap::read_pcap;
use mobile_bbr::sim_core::time::SimDuration;
use mobile_bbr::tcp_sim::wire::{parse_frame, TcpHeader};
use mobile_bbr::tcp_sim::{SimConfig, StackSim};

fn main() {
    let path = std::env::temp_dir().join("bbr_run.pcap");
    let cfg = SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::LowEnd, CcKind::Bbr, 2)
        .duration(SimDuration::from_millis(300))
        .warmup(SimDuration::from_millis(100))
        .pcap(path.clone())
        .build()
        .expect("valid config");
    let res = StackSim::new(cfg).run();
    println!(
        "simulated 300 ms of 2-connection BBR upload: {:.1} Mbps",
        res.goodput_mbps()
    );

    let bytes = std::fs::read(&path).expect("pcap written");
    let (linktype, records) = read_pcap(&bytes[..]).expect("valid pcap");
    println!(
        "captured {} frames (linktype {linktype}) at {}",
        records.len(),
        path.display()
    );

    // Decode the first few frames to prove the wire format is sound.
    let mut data = 0u32;
    let mut acks = 0u32;
    for rec in &records {
        let (src, dst, tcp) = parse_frame(&rec.frame).expect("well-formed frame");
        let (header, payload) = TcpHeader::decode(src, dst, tcp).expect("checksums verify");
        if payload.is_empty() {
            acks += 1;
        } else {
            data += 1;
        }
        if data + acks <= 5 {
            println!(
                "  {} {}:{} -> {}:{} seq={} ack={} len={}",
                rec.at,
                src.0[3],
                header.src_port,
                dst.0[3],
                header.dst_port,
                header.seq.0,
                header.ack.0,
                payload.len()
            );
        }
    }
    println!("… {data} data packets, {acks} ACKs, all checksums valid.");
}
