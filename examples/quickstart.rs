//! Quickstart: one simulated iPerf3 run — BBR uploading from a Pixel 4
//! pinned to the Low-End (576 MHz) configuration over gigabit Ethernet —
//! and the same run with Cubic, reproducing the paper's headline contrast.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mobile_bbr::congestion::CcKind;
use mobile_bbr::cpu_model::{CpuConfig, DeviceProfile};
use mobile_bbr::sim_core::time::SimDuration;
use mobile_bbr::tcp_sim::{SimConfig, StackSim};

fn main() {
    println!("Are Mobiles Ready for BBR? — quickstart\n");
    println!("Pixel 4, Low-End CPU (576 MHz LITTLE), 20 parallel uploads, 1 Gbps Ethernet:\n");

    for cc in [CcKind::Cubic, CcKind::Bbr] {
        let cfg = SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::LowEnd, cc, 20)
            .duration(SimDuration::from_secs(6))
            .warmup(SimDuration::from_secs(1))
            .build()
            .expect("valid config");
        let res = StackSim::new(cfg).run();
        println!(
            "  {cc:<6} goodput {:>6.1} Mbps   mean RTT {:>5.2} ms   retransmits {:>5}   pacing timer fires {:>7}",
            res.goodput_mbps(),
            res.mean_rtt_ms,
            res.total_retx,
            res.counters.get("timer_fires"),
        );
    }

    println!();
    println!("The gap is the paper's finding: BBR's per-send pacing timers eat the");
    println!("slow core's cycle budget. Try `--example pacing_stride` for the fix.");
}
