//! The paper's fix in action: sweep the pacing stride (§6.2) on the
//! Low-End configuration and watch goodput rise to an interior optimum
//! while RTT stays low — then fall as the socket buffer saturates.
//!
//! ```bash
//! cargo run --release --example pacing_stride
//! cargo run --release --example pacing_stride -- 20   # choose connections
//! ```

use mobile_bbr::congestion::CcKind;
use mobile_bbr::cpu_model::{CpuConfig, DeviceProfile};
use mobile_bbr::sim_core::time::SimDuration;
use mobile_bbr::tcp_sim::{PacingConfig, SimConfig, StackSim};

fn main() {
    let conns: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    println!("Pacing-stride sweep — Pixel 4 Low-End, {conns} connections, Ethernet\n");
    println!(
        "{:>7}  {:>14}  {:>13}  {:>13}  {:>12}",
        "stride", "goodput (Mbps)", "mean RTT (ms)", "skb len (KB)", "timer fires"
    );

    let mut best = (0u64, 0.0f64);
    for stride in [1u64, 2, 5, 10, 20, 50] {
        let cfg = SimConfig::builder(
            DeviceProfile::pixel4(),
            CpuConfig::LowEnd,
            CcKind::Bbr,
            conns,
        )
        .duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(1))
        .pacing(PacingConfig::with_stride(stride))
        .build()
        .expect("valid config");
        let res = StackSim::new(cfg).run();
        if res.goodput_mbps() > best.1 {
            best = (stride, res.goodput_mbps());
        }
        println!(
            "{:>6}x  {:>14.1}  {:>13.2}  {:>13.1}  {:>12}",
            stride,
            res.goodput_mbps(),
            res.mean_rtt_ms,
            res.mean_skb_bytes / 1000.0,
            res.counters.get("timer_fires"),
        );
    }

    println!();
    println!(
        "Best stride: {}x at {:.0} Mbps — pacing less often with more data per \
         period amortises the timer overhead (paper §6.2); past the optimum the \
         socket-buffer cap limits each period's data and goodput falls as 1/stride \
         (Table 2).",
        best.0, best.1
    );
}
