//! The paper's §5 detective work, replayed: use the master-module knobs to
//! isolate *which* difference between BBR and Cubic causes the gap.
//!
//! ```bash
//! cargo run --release --example master_knobs
//! ```

use mobile_bbr::congestion::master::MasterConfig;
use mobile_bbr::congestion::CcKind;
use mobile_bbr::cpu_model::{CpuConfig, DeviceProfile};
use mobile_bbr::sim_core::time::SimDuration;
use mobile_bbr::sim_core::units::Bandwidth;
use mobile_bbr::tcp_sim::{SimConfig, StackSim};

fn run(label: &str, cc: CcKind, master: MasterConfig) -> f64 {
    let cfg = SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::LowEnd, cc, 20)
        .duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(1))
        .master(master)
        .build()
        .expect("valid config");
    let res = StackSim::new(cfg).run();
    println!("  {label:<46} {:>6.1} Mbps", res.goodput_mbps());
    res.goodput_mbps()
}

fn main() {
    println!("§5's isolation experiment — Low-End, 20 connections:\n");
    let cubic = run(
        "Cubic (reference)",
        CcKind::Cubic,
        MasterConfig::passthrough(),
    );
    run(
        "BBR stock (model + cwnd + pacing)",
        CcKind::Bbr,
        MasterConfig::passthrough(),
    );
    println!("\n  — is it BBR's model computation? (§5.1.1)");
    run(
        "BBR, cwnd pinned to 70, model disabled",
        CcKind::Bbr,
        MasterConfig::fixed_cwnd_no_model(70),
    );
    println!("  … still slow: not the model's CPU cost.\n");
    println!("  — is it the pacing rate being too low? (§5.1.2)");
    for mbps in [16u64, 140] {
        let master = MasterConfig {
            fixed_cwnd: Some(70),
            fixed_pacing_rate: Some(Bandwidth::from_mbps(mbps).as_bps()),
            force_pacing: Some(true),
            disable_model: true,
        };
        run(
            &format!("BBR, cwnd=70, pacing pinned at {mbps} Mbps/conn"),
            CcKind::Bbr,
            master,
        );
    }
    println!("  … only an effectively-unpaced 140 Mbps/conn reaches Cubic.\n");
    println!("  — so is pacing itself the problem, even for Cubic? (§5.2.2)");
    let paced_cubic = run(
        "Cubic with pacing forced on",
        CcKind::Cubic,
        MasterConfig::pacing_on(),
    );
    println!();
    println!(
        "Verdict: pacing costs Cubic {:.0}% too — \"TCP Pacing is not a\n\
         BBR-specific problem on mobiles.\"",
        (1.0 - paced_cubic / cubic) * 100.0
    );
}
