//! Watch a run unfold: the per-interval goodput timeline (iPerf3's
//! per-second lines) for BBR and for BBR with the §7.1.2 auto-stride
//! controller, rendered as terminal sparklines — the controller's climb is
//! visible in real time.
//!
//! ```bash
//! cargo run --release --example trace_run
//! ```

use mobile_bbr::congestion::CcKind;
use mobile_bbr::cpu_model::{CpuConfig, DeviceProfile};
use mobile_bbr::sim_core::time::SimDuration;
use mobile_bbr::tcp_sim::{PacingConfig, SimConfig, StackSim};

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(series: &[(f64, f64)], max: f64) -> String {
    series
        .iter()
        .map(|&(_, v)| {
            let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

fn run(label: &str, pacing: PacingConfig, max: f64) {
    let cfg = SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::LowEnd, CcKind::Bbr, 20)
        .duration(SimDuration::from_secs(12))
        .warmup(SimDuration::from_secs(1))
        .pacing(pacing)
        .sample_interval(Some(SimDuration::from_millis(500)))
        .build()
        .expect("valid config");
    let res = StackSim::new(cfg).run();
    println!(
        "  {label:<18} {}  {:>6.1} Mbps avg",
        sparkline(&res.timeline, max),
        res.goodput_mbps()
    );
}

fn main() {
    println!("Goodput over time — Pixel 4 Low-End, 20 BBR connections, 500 ms bins");
    println!("(each bar is one interval; scale 0–350 Mbps):\n");
    run("stock pacing (1x)", PacingConfig::default(), 350.0);
    run("stride 10x", PacingConfig::with_stride(10), 350.0);
    run("auto-stride", PacingConfig::auto(), 350.0);
    println!();
    println!("The auto-stride line starts at the stock level and climbs as the");
    println!("controller doubles the stride while the CPU stays saturated (§7.1.2).");
}
