//! §5.2.3's shallow-buffer experiment as a runnable scenario: why pacing
//! must not simply be disabled.
//!
//! A 10-packet droptail router buffer is "especially congestion-
//! susceptible": unpaced BBR bursts whole windows at line rate into it and
//! retransmissions explode; paced BBR trickles packets and loses almost
//! nothing — at the cost of the CPU overhead the rest of the paper
//! quantifies. The pacing stride keeps both properties.
//!
//! ```bash
//! cargo run --release --example shallow_buffer
//! ```

use mobile_bbr::congestion::master::MasterConfig;
use mobile_bbr::congestion::CcKind;
use mobile_bbr::cpu_model::{CpuConfig, DeviceProfile};
use mobile_bbr::netsim::media::MediaProfile;
use mobile_bbr::sim_core::time::SimDuration;
use mobile_bbr::tcp_sim::{PacingConfig, SimConfig, StackSim};

fn run(label: &str, master: MasterConfig, stride: u64) {
    let cfg = SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::LowEnd, CcKind::Bbr, 20)
        .duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(1))
        .master(master)
        .pacing(PacingConfig::with_stride(stride))
        .path(MediaProfile::Ethernet.path_config().with_queue_packets(10))
        .build()
        .expect("valid config");
    let res = StackSim::new(cfg).run();
    println!(
        "  {label:<22} goodput {:>6.1} Mbps   retransmits {:>7}   mean RTT {:>5.2} ms",
        res.goodput_mbps(),
        res.total_retx,
        res.mean_rtt_ms,
    );
}

fn main() {
    println!("10-packet shallow buffer, Pixel 4 Low-End, 20 BBR connections:\n");
    run("BBR paced (stock)", MasterConfig::passthrough(), 1);
    run("BBR unpaced", MasterConfig::pacing_off(), 1);
    run("BBR stride 10x", MasterConfig::passthrough(), 10);
    println!();
    println!("Unpacing buys goodput by bursting — and pays for it in mass");
    println!("retransmissions (the paper measured 37 → 13,500). The stride gets");
    println!("the goodput without the burst losses (§6.2).");
}
