//! Differential equivalence: a degenerate one-device fleet (no shared
//! uplink) must reduce *byte-identically* to the classic single-device
//! path, for any supported device tier × controller × medium × connection
//! count.
//!
//! Fleet mode reroutes everything the event loop touches — per-device CPU
//! models, per-device access links, per-device RNG splits, fleet-aware CC
//! construction, and the end-of-run aggregation. This test pins the
//! reduction argument those reroutes rely on: with one device and no
//! shared hop, every `match &cfg.fleet` arm must select exactly the
//! historical single-device code path (device 0 draws RNG splits 1/2/3,
//! CPU stats come straight from the one CPU, per-conn stats are
//! untouched). The only permitted difference in the output is the
//! `fleet` metrics block itself — strip it and the serialized
//! [`SimResult`]s must match byte for byte.

use mobile_bbr::congestion::CcKind;
use mobile_bbr::cpu_model::{CpuConfig, DeviceProfile};
use mobile_bbr::netsim::media::MediaProfile;
use mobile_bbr::sim_core::time::SimDuration;
use mobile_bbr::tcp_sim::fleet::DeviceSpec;
use mobile_bbr::tcp_sim::{FleetConfig, SimConfig, SimConfigBuilder, StackSim};
use proptest::prelude::*;
use test_support::{arb_cc, arb_cpu, arb_media};

/// The shared knobs of both runs; only `.fleet()` differs between them.
fn base(
    cpu: CpuConfig,
    cc: CcKind,
    media: MediaProfile,
    conns: usize,
    seed: u64,
) -> SimConfigBuilder {
    SimConfig::builder(DeviceProfile::pixel4(), cpu, cc, conns)
        .media(media)
        .duration(SimDuration::from_millis(700))
        .warmup(SimDuration::from_millis(250))
        .seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// One-device fleet == plain run, modulo the `fleet` block.
    #[test]
    fn one_device_fleet_reduces_to_single_device(
        cc in arb_cc(),
        cpu in arb_cpu(),
        media in arb_media(),
        conns in 1usize..6,
        seed in 1u64..1_000,
    ) {
        let plain_cfg = base(cpu, cc, media, conns, seed)
            .build()
            .expect("plain config is valid");
        let fleet_cfg = base(cpu, cc, media, conns, seed)
            .fleet(FleetConfig::uniform(
                1,
                DeviceSpec::new(cpu, cc, media).with_connections(conns),
            ))
            .build()
            .expect("degenerate fleet config is valid");

        let plain = StackSim::new(plain_cfg).run();
        let mut fleet = StackSim::new(fleet_cfg).run();

        // The fleet run must actually report fleet metrics, and they must
        // agree with the plain run's totals before being stripped.
        let block = fleet.fleet.take().expect("fleet config yields fleet metrics");
        prop_assert_eq!(block.devices, 1);
        prop_assert!(
            (block.aggregate_goodput_mbps - plain.goodput_mbps()).abs() < 1e-9,
            "aggregate {} vs plain {}",
            block.aggregate_goodput_mbps,
            plain.goodput_mbps()
        );

        // Everything else is byte-identical: `fleet` is serialized only
        // when present, so after the strip both results must serialize to
        // exactly the same JSON.
        let plain_json = serde_json::to_string(&plain).expect("plain serializes");
        let fleet_json = serde_json::to_string(&fleet).expect("fleet serializes");
        prop_assert_eq!(plain_json, fleet_json);
    }
}
