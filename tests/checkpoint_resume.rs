//! End-to-end checkpoint/resume determinism through the full experiment
//! pipeline: interrupt a sweep mid-grid, resume it from the checkpoint
//! file, and require the final scorecard JSON to be byte-identical to an
//! uninterrupted run — at `--jobs 1` and at `--jobs 4`.
//!
//! This is the workspace-level counterpart of `sim_core::sweep`'s unit
//! tests: it exercises the same engine through `experiments` → `iperf` →
//! `run_sweep_streaming`, exactly the path `repro --checkpoint --resume`
//! takes (minus the process boundary, which the CI resume-smoke job
//! covers with the real binary).

use mobile_bbr::prelude::*;
use mobile_bbr::sim_core;

/// Smoke parameters with a known seed count so the interrupt point lands
/// mid-grid (3 specs × 2 seeds = 6 cells).
fn base_params(jobs: usize) -> Params {
    let mut p = Params::smoke();
    p.seeds = 2;
    p.threads = jobs;
    p.cache_dir = None;
    p.progress = false;
    p
}

fn scorecard_json(exp: &mobile_bbr::experiments::Experiment) -> String {
    serde_json::to_string_pretty(&[exp]).expect("experiment serializes")
}

#[test]
fn interrupted_then_resumed_run_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("mobile-bbr-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");

    for jobs in [1usize, 4] {
        // Uninterrupted baseline: no checkpoint involved at all.
        let baseline = ExperimentId::Bbr2Wifi
            .run(&base_params(jobs))
            .expect("baseline completes");
        let want = scorecard_json(&baseline);

        let ckpt = dir.join(format!("bbr2wifi-jobs{jobs}.ck"));

        // Phase 1: interrupt mid-grid. max_inflight 2 keeps the claim
        // window from swallowing the whole 6-cell grid before the
        // cancel-after hook can latch.
        let mut interrupted = base_params(jobs);
        interrupted.checkpoint = Some(ckpt.clone());
        interrupted.max_inflight = 2;
        interrupted.cancel_after = Some(2);
        let err = ExperimentId::Bbr2Wifi
            .run(&interrupted)
            .expect_err("cancel_after must interrupt the sweep");
        match err {
            Error::Interrupted { completed, total } => {
                assert!(completed >= 2, "jobs={jobs}: at least 2 cells finished");
                assert!(completed < total, "jobs={jobs}: interrupt landed mid-grid");
            }
            other => panic!("jobs={jobs}: expected Interrupted, got {other}"),
        }
        assert!(ckpt.exists(), "interrupt finalizes the checkpoint file");

        // Phase 2: resume from the checkpoint, run to completion.
        let before = sim_core::sweep::totals().checkpoint_hits;
        let mut resumed = base_params(jobs);
        resumed.checkpoint = Some(ckpt.clone());
        let exp = ExperimentId::Bbr2Wifi
            .run(&resumed)
            .expect("resumed run completes");
        let hits = sim_core::sweep::totals().checkpoint_hits - before;
        assert!(
            hits >= 2,
            "jobs={jobs}: resume must serve the interrupted run's cells from the checkpoint, got {hits}"
        );
        assert_eq!(
            scorecard_json(&exp),
            want,
            "jobs={jobs}: resumed scorecard must be byte-identical to the uninterrupted run"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted checkpoint file degrades to recomputation — same bytes
/// out, never a panic or an error.
#[test]
fn corrupted_checkpoint_still_yields_identical_results() {
    let dir = std::env::temp_dir().join(format!("mobile-bbr-ckpt-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let baseline = ExperimentId::Bbr2Wifi
        .run(&base_params(2))
        .expect("baseline completes");
    let want = scorecard_json(&baseline);

    // Record a full checkpoint.
    let ckpt = dir.join("full.ck");
    let mut with_ckpt = base_params(2);
    with_ckpt.checkpoint = Some(ckpt.clone());
    ExperimentId::Bbr2Wifi
        .run(&with_ckpt)
        .expect("recording run completes");

    // Flip a byte in the middle of the record region and truncate the
    // tail; the tolerant loader keeps the valid prefix and the engine
    // recomputes the rest.
    let mut bytes = std::fs::read(&ckpt).expect("checkpoint readable");
    assert!(bytes.len() > 40, "checkpoint has records to corrupt");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    bytes.truncate(bytes.len() - 3);
    std::fs::write(&ckpt, &bytes).expect("rewrite corrupted checkpoint");

    let exp = ExperimentId::Bbr2Wifi
        .run(&with_ckpt)
        .expect("corrupted checkpoint must degrade to recomputation, not fail");
    assert_eq!(scorecard_json(&exp), want, "recomputed results identical");

    let _ = std::fs::remove_dir_all(&dir);
}
