//! Differential properties pinning the new CC-variant and qdisc axes to
//! their predecessors:
//!
//! * BBRv3 is a retuning of BBRv2, not a different algorithm — on a
//!   lossless deep-buffer path its goodput must land inside a band around
//!   BBRv2's, for any CPU tier and connection count.
//! * A single flow cannot tell FQ-CoDel from plain CoDel: with one bucket
//!   occupied, flow-queueing is pass-through and the two runs must
//!   serialize byte-identically.
//! * AQM earns its keep: on a deep-buffer path that Cubic fills, CoDel
//!   and FQ-CoDel both keep mean RTT visibly under the FIFO run's.

use mobile_bbr::congestion::CcKind;
use mobile_bbr::cpu_model::{CpuConfig, DeviceProfile};
use mobile_bbr::netsim::media::MediaProfile;
use mobile_bbr::netsim::Qdisc;
use mobile_bbr::sim_core::time::SimDuration;
use mobile_bbr::sim_core::units::Bandwidth;
use mobile_bbr::tcp_sim::{SimConfig, SimResult, StackSim};
use proptest::prelude::*;
use test_support::arb_cpu;

/// A run on an Ethernet path with the forward queue deepened to `queue`
/// packets, the forward rate set to `rate_mbps` (1000 = the profile's
/// native line rate), and the forward qdisc set explicitly. Fixed-rate
/// media only: on variable-rate links the virtual DRR clock inside
/// FQ-CoDel integrates the instantaneous rate while the analytic FIFO
/// tracks the channel exactly, so the two AQMs' sojourn estimates
/// diverge on the channel's coherence scale by design.
fn run_one(
    cc: CcKind,
    cpu: CpuConfig,
    qdisc: Qdisc,
    conns: usize,
    queue: usize,
    rate_mbps: u64,
    seed: u64,
) -> SimResult {
    let dur_ms = if rate_mbps < 1_000 { 6_000 } else { 1_500 };
    let mut path = MediaProfile::Ethernet
        .path_config()
        .with_queue_packets(queue);
    path.forward.rate = Bandwidth::from_mbps(rate_mbps);
    let cfg = SimConfig::builder(DeviceProfile::pixel4(), cpu, cc, conns)
        .path(path)
        .qdisc(qdisc)
        .duration(SimDuration::from_millis(dur_ms))
        .warmup(SimDuration::from_millis(dur_ms / 3))
        .seed(seed)
        .build()
        .expect("valid config");
    StackSim::new(cfg).run()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// BBRv3 goodput stays inside BBRv2's envelope on a lossless
    /// deep-buffer Ethernet path. The two share the model, the probe
    /// state machine, and the inflight bounds; v3's retuned gains and
    /// loss response have nothing to bite on without loss, so a large
    /// divergence here means a broken port, not a design difference.
    #[test]
    fn bbr3_tracks_bbr2_on_lossless_deep_buffers(
        cpu in arb_cpu(),
        conns in 1usize..6,
        seed in 1u64..500,
    ) {
        let v2 = run_one(CcKind::Bbr2, cpu, Qdisc::Fifo, conns, 512, 1_000, seed);
        let v3 = run_one(CcKind::Bbr3, cpu, Qdisc::Fifo, conns, 512, 1_000, seed);
        prop_assert!(v2.goodput_mbps() > 0.0, "BBRv2 makes progress");
        prop_assert!(v3.goodput_mbps() > 0.0, "BBRv3 makes progress");
        let ratio = v3.goodput_mbps() / v2.goodput_mbps();
        prop_assert!(
            (0.4..=2.5).contains(&ratio),
            "BBRv3/BBRv2 goodput ratio {ratio:.3} outside envelope \
             ({:.1} vs {:.1} Mbps, cpu {cpu:?}, {conns} conns, seed {seed})",
            v3.goodput_mbps(),
            v2.goodput_mbps()
        );
    }

    /// One flow occupies one FQ-CoDel bucket, whose CoDel state sees the
    /// exact drop-candidate sequence plain CoDel would: the two runs must
    /// be byte-identical, at every CPU tier and queue depth (fixed-rate
    /// path — see [`run_one`] on why variable-rate media are excluded).
    #[test]
    fn single_flow_cannot_tell_fq_codel_from_codel(
        cpu in arb_cpu(),
        queue in prop_oneof![Just(32usize), Just(64), Just(256)],
        seed in 1u64..500,
    ) {
        let codel = run_one(CcKind::Cubic, cpu, Qdisc::Codel, 1, queue, 50, seed);
        let fq = run_one(CcKind::Cubic, cpu, Qdisc::FqCodel, 1, queue, 50, seed);
        let codel_json = serde_json::to_string(&codel).expect("serializes");
        let fq_json = serde_json::to_string(&fq).expect("serializes");
        prop_assert_eq!(codel_json, fq_json);
    }
}

/// Cubic fills a deep buffer; CoDel and FQ-CoDel both drain the standing
/// queue that FIFO tolerates, so their mean RTTs must sit clearly below
/// the FIFO run's. The forward rate is capped at 50 Mbps so the 512-packet
/// queue is worth ~120 ms — two orders above the CoDel target — and the
/// standing queue actually forms within the run.
#[test]
fn aqm_bounds_the_standing_queue_fifo_tolerates() {
    let run = |qdisc| run_one(CcKind::Cubic, CpuConfig::HighEnd, qdisc, 6, 512, 50, 7);
    let fifo = run(Qdisc::Fifo);
    let codel = run(Qdisc::Codel);
    let fq = run(Qdisc::FqCodel);
    assert!(
        codel.mean_rtt_ms < fifo.mean_rtt_ms * 0.8,
        "CoDel RTT {:.2} ms not clearly under FIFO {:.2} ms",
        codel.mean_rtt_ms,
        fifo.mean_rtt_ms
    );
    assert!(
        fq.mean_rtt_ms < fifo.mean_rtt_ms * 0.8,
        "FQ-CoDel RTT {:.2} ms not clearly under FIFO {:.2} ms",
        fq.mean_rtt_ms,
        fifo.mean_rtt_ms
    );
}
