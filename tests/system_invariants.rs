//! Whole-system property tests: invariants that must hold for *any*
//! configuration of the simulator, checked over randomized configuration
//! draws (short runs keep this tractable under `cargo test`).

use mobile_bbr::congestion::CcKind;
use mobile_bbr::cpu_model::{CpuConfig, DeviceProfile};
use mobile_bbr::netsim::media::MediaProfile;
use mobile_bbr::sim_core::time::SimDuration;
use mobile_bbr::tcp_sim::{PacingConfig, SimConfig, SimResult, StackSim};
use proptest::prelude::*;
// Configuration-space strategies are shared with the simcheck fuzzer so
// new controllers/media enter both in one place.
use test_support::{arb_cc, arb_cpu, arb_media};

fn run_one(
    cc: CcKind,
    cpu: CpuConfig,
    media: MediaProfile,
    conns: usize,
    stride: u64,
    seed: u64,
) -> SimResult {
    let cfg = SimConfig::builder(DeviceProfile::pixel4(), cpu, cc, conns)
        .media(media)
        .duration(SimDuration::from_millis(700))
        .warmup(SimDuration::from_millis(250))
        .pacing(PacingConfig::with_stride(stride))
        .seed(seed)
        .build()
        .expect("valid config");
    StackSim::new(cfg).run()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Core conservation and sanity invariants.
    #[test]
    fn invariants_hold_for_any_configuration(
        cc in arb_cc(),
        cpu in arb_cpu(),
        media in arb_media(),
        conns in 1usize..8,
        stride in prop_oneof![Just(1u64), Just(2), Just(10)],
        seed in 1u64..1_000,
    ) {
        let res = run_one(cc, cpu, media, conns, stride, seed);

        // Goodput can never exceed the physical line rate.
        let line = media.path_config().bottleneck_rate().as_mbps_f64();
        // (variable-rate media may briefly exceed the *nominal* rate)
        prop_assert!(
            res.goodput_mbps() <= line * 1.4 + 1.0,
            "goodput {:.1} vs line {:.1} on {media}",
            res.goodput_mbps(),
            line
        );

        // Conservation: nothing delivered that was never sent.
        let sent = res.counters.get("pkts_sent");
        let delivered: u64 = res.per_conn.iter().map(|c| c.delivered_pkts).sum();
        prop_assert!(delivered <= sent, "delivered {delivered} > sent {sent}");

        // Retransmissions are bounded by transmissions.
        prop_assert!(res.total_retx <= sent);

        // Fairness is a valid Jain index.
        prop_assert!((0.0..=1.0 + 1e-9).contains(&res.fairness));

        // RTT statistics are physical: at least the base path RTT.
        if res.mean_rtt_ms > 0.0 {
            let base_ms = media.path_config().base_rtt().as_millis_f64();
            prop_assert!(
                res.mean_rtt_ms >= base_ms * 0.9,
                "mean RTT {:.3} below base {:.3}",
                res.mean_rtt_ms,
                base_ms
            );
        }

        // The CPU can't have been busy much longer than the run (work
        // charged near the horizon may nominally complete just past it —
        // bounded by the TSQ-limited device backlog).
        prop_assert!(
            res.cpu.busy_time <= SimDuration::from_millis(700) + SimDuration::from_millis(100),
            "busy {:?} vs 700 ms run",
            res.cpu.busy_time
        );

        // Categories partition total cycles.
        prop_assert_eq!(
            res.cpu.cycles_by_category.values().sum::<u64>(),
            res.cpu.total_cycles
        );

        // Determinism: same config, same result.
        let again = run_one(cc, cpu, media, conns, stride, seed);
        prop_assert_eq!(res.total_goodput, again.total_goodput);
        prop_assert_eq!(res.total_retx, again.total_retx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Paced senders never burst beyond their configured window: the
    /// pacing-timer count is consistent with the run length (no timer
    /// storms), and unpaced runs arm no pacing timers at all.
    #[test]
    fn pacing_timer_accounting(
        cpu in arb_cpu(),
        conns in 1usize..6,
        seed in 1u64..100,
    ) {
        let bbr = run_one(CcKind::Bbr, cpu, MediaProfile::Ethernet, conns, 1, seed);
        let fires = bbr.counters.get("timer_fires");
        let arms = bbr.counters.get("timer_arms");
        prop_assert!(fires > 0, "paced BBR must fire timers");
        // Every fire was armed; at most one arm can remain pending per conn.
        prop_assert!(fires <= arms + conns as u64);

        let cubic = run_one(CcKind::Cubic, cpu, MediaProfile::Ethernet, conns, 1, seed);
        prop_assert_eq!(cubic.counters.get("timer_arms"), 0);
        prop_assert_eq!(cubic.counters.get("timer_fires"), 0);
    }
}
