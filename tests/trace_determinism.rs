//! End-to-end guarantees of the `sim-trace` flight recorder:
//!
//! 1. **Tracing is invisible to results.** The scorecard numbers a traced
//!    run produces serialize to exactly the bytes of an untraced run —
//!    recording must observe the simulation, never perturb it.
//! 2. **Traced runs parallelize deterministically.** Running traced cells
//!    across 4 worker threads yields the same per-cell results *and* the
//!    same trace bytes as running them serially.
//! 3. **Trace exports are byte-stable.** Recording the same configuration
//!    twice writes identical JSONL and identical Chrome JSON.

use congestion::CcKind;
use cpu_model::CpuConfig;
use experiments::Params;
use sim_core::trace::{write_chrome, write_jsonl, TraceLog};
use tcp_sim::{SimConfig, StackSim};

/// The smoke-sized cells the tests trace: both CC families, mixed CPU
/// configs and connection counts.
fn cells() -> Vec<SimConfig> {
    let p = Params::smoke();
    let mut cells = Vec::new();
    for (cpu, cc, conns, seed) in [
        (CpuConfig::LowEnd, CcKind::Bbr, 4, 1),
        (CpuConfig::LowEnd, CcKind::Bbr, 4, 2),
        (CpuConfig::HighEnd, CcKind::Cubic, 2, 1),
        (CpuConfig::MidEnd, CcKind::Bbr2, 3, 7),
    ] {
        let mut cfg = p.pixel4(cpu, cc, conns);
        cfg.seed = seed;
        cells.push(cfg);
    }
    cells
}

/// The scorecard-relevant numbers of one run, as `repro --json` bytes.
fn result_json(cfg: SimConfig, traced: bool) -> String {
    let seed = cfg.seed;
    let res = if traced {
        StackSim::new(cfg).run_traced().0
    } else {
        StackSim::new(cfg).run()
    };
    serde_json::to_string(&iperf::SeedResult::from_sim(seed, &res)).unwrap()
}

fn jsonl_bytes(log: &TraceLog) -> Vec<u8> {
    let mut buf = Vec::new();
    write_jsonl(log, &mut buf).unwrap();
    buf
}

#[test]
fn traced_results_are_byte_identical_to_untraced() {
    for cfg in cells() {
        let plain = result_json(cfg.clone(), false);
        let traced = result_json(cfg.clone(), true);
        assert_eq!(
            plain, traced,
            "tracing must not perturb results (cc {:?}, seed {})",
            cfg.cc, cfg.seed
        );
    }
}

#[test]
fn traced_runs_are_identical_across_worker_counts() {
    let run_traced = |cfg: SimConfig| -> (String, Vec<u8>) {
        let seed = cfg.seed;
        let (res, log) = StackSim::new(cfg).run_traced();
        let json = serde_json::to_string(&iperf::SeedResult::from_sim(seed, &res)).unwrap();
        (json, jsonl_bytes(&log))
    };

    let serial: Vec<(String, Vec<u8>)> = cells().into_iter().map(run_traced).collect();

    // Fan the same cells over 4 threads, one chunk per thread, preserving
    // submission order in the collected output — the sweep engine's shape.
    let cfgs = cells();
    let chunk = cfgs.len().div_ceil(4);
    let parallel: Vec<(String, Vec<u8>)> = std::thread::scope(|s| {
        let handles: Vec<_> = cfgs
            .chunks(chunk)
            .map(|chunk| {
                let chunk = chunk.to_vec();
                s.spawn(move || chunk.into_iter().map(run_traced).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    assert_eq!(serial.len(), parallel.len());
    for (i, ((sj, st), (pj, pt))) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(sj, pj, "cell {i}: results differ across worker counts");
        assert_eq!(st, pt, "cell {i}: trace bytes differ across worker counts");
    }
}

#[test]
fn trace_exports_are_byte_stable_across_runs() {
    let cfg = &cells()[0];
    let (_, log_a) = StackSim::new(cfg.clone()).run_traced();
    let (_, log_b) = StackSim::new(cfg.clone()).run_traced();
    assert!(!log_a.events.is_empty(), "smoke run must produce events");
    assert_eq!(jsonl_bytes(&log_a), jsonl_bytes(&log_b), "JSONL unstable");

    let chrome = |log: &TraceLog| {
        let mut buf = Vec::new();
        write_chrome(log, &mut buf).unwrap();
        buf
    };
    let bytes = chrome(&log_a);
    assert_eq!(bytes, chrome(&log_b), "Chrome export unstable");
    // The export must be one parseable JSON document (Perfetto loads it).
    let text = String::from_utf8(bytes).unwrap();
    assert!(
        serde_json::from_str(&text).is_ok(),
        "Chrome export not JSON"
    );
}
