//! FLEET experiment determinism: the fleet scorecard must be byte-for-byte
//! reproducible across worker counts, and an interrupted fleet sweep must
//! resume from its checkpoint to exactly the bytes of an uninterrupted run.
//!
//! Fleet cells are the heaviest the sweep engine schedules (hundreds of
//! connections per cell at the full preset), which makes them the most
//! likely place for a worker-count-dependent interleaving or a stale
//! checkpoint entry to sneak into the output. Both tests run the real
//! [`ExperimentId::Fleet`] pipeline end to end — the same path
//! `repro --exp fleet` takes.

use mobile_bbr::prelude::*;

/// Smoke parameters with an explicit worker count and two seeds, so the
/// FLEET grid (3 fleets × 2 seeds = 6 cells) has a mid-grid to interrupt.
fn base_params(jobs: usize) -> Params {
    let mut p = Params::smoke();
    p.seeds = 2;
    p.threads = jobs;
    p.cache_dir = None;
    p.progress = false;
    p
}

fn scorecard_json(exp: &mobile_bbr::experiments::Experiment) -> String {
    serde_json::to_string_pretty(&[exp]).expect("experiment serializes")
}

#[test]
fn fleet_scorecard_is_byte_identical_across_worker_counts() {
    let serial = ExperimentId::Fleet
        .run(&base_params(1))
        .expect("serial FLEET run completes");
    let parallel = ExperimentId::Fleet
        .run(&base_params(4))
        .expect("parallel FLEET run completes");
    assert_eq!(
        scorecard_json(&serial),
        scorecard_json(&parallel),
        "FLEET output must not depend on the worker count"
    );
}

#[test]
fn interrupted_fleet_sweep_resumes_byte_identically() {
    let dir = std::env::temp_dir().join(format!("mobile-bbr-fleet-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let baseline = ExperimentId::Fleet
        .run(&base_params(4))
        .expect("baseline completes");
    let want = scorecard_json(&baseline);

    // Phase 1: interrupt mid-grid. max_inflight 2 keeps the claim window
    // from swallowing the whole 6-cell grid before the cancel-after hook
    // can latch.
    let ckpt = dir.join("fleet.ck");
    let mut interrupted = base_params(4);
    interrupted.checkpoint = Some(ckpt.clone());
    interrupted.max_inflight = 2;
    interrupted.cancel_after = Some(2);
    let err = ExperimentId::Fleet
        .run(&interrupted)
        .expect_err("cancel_after must interrupt the fleet sweep");
    match err {
        Error::Interrupted { completed, total } => {
            assert!(completed >= 2, "at least 2 fleet cells finished");
            assert!(completed < total, "interrupt landed mid-grid");
        }
        other => panic!("expected Interrupted, got {other}"),
    }
    assert!(ckpt.exists(), "interrupt finalizes the checkpoint file");

    // Phase 2: resume from the checkpoint and require the recovered
    // scorecard to match the uninterrupted bytes.
    let mut resumed = base_params(4);
    resumed.checkpoint = Some(ckpt);
    let exp = ExperimentId::Fleet
        .run(&resumed)
        .expect("resumed run completes");
    assert_eq!(
        scorecard_json(&exp),
        want,
        "resumed fleet scorecard must be byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
