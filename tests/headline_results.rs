//! End-to-end integration tests: the paper's headline findings, asserted
//! against the public API exactly as a downstream user would drive it.
//!
//! These use reduced (but not smoke-sized) parameters so they remain
//! meaningful; run them with `--release` for comfortable wall-clock times.

use mobile_bbr::congestion::master::MasterConfig;
use mobile_bbr::congestion::CcKind;
use mobile_bbr::cpu_model::{CpuConfig, DeviceProfile};
use mobile_bbr::netsim::media::MediaProfile;
use mobile_bbr::sim_core::time::SimDuration;
use mobile_bbr::tcp_sim::{PacingConfig, SimConfig, StackSim};

fn base(cc: CcKind, cpu: CpuConfig, conns: usize) -> SimConfig {
    SimConfig::builder(DeviceProfile::pixel4(), cpu, cc, conns)
        .duration(SimDuration::from_millis(3_500))
        .warmup(SimDuration::from_millis(800))
        .build()
        .expect("valid config")
}

fn goodput(cfg: SimConfig) -> f64 {
    StackSim::new(cfg).run().goodput_mbps()
}

/// §1: "BBR underperforms Cubic by at least 11 % in terms of goodput with
/// as little as 1 connection" (default/low configurations).
#[test]
fn headline_bbr_below_cubic_at_one_connection() {
    let cubic = goodput(base(CcKind::Cubic, CpuConfig::LowEnd, 1));
    let bbr = goodput(base(CcKind::Bbr, CpuConfig::LowEnd, 1));
    assert!(
        bbr < cubic * 0.95,
        "Low-End 1 conn: BBR {bbr:.0} should be well below Cubic {cubic:.0}"
    );
}

/// §1: "under a low-end device configuration with 20 parallel connections,
/// BBR's goodput is 55 % that of Cubic" — we accept a generous band.
#[test]
fn headline_bbr_collapse_at_twenty_connections() {
    let cubic = goodput(base(CcKind::Cubic, CpuConfig::LowEnd, 20));
    let bbr = goodput(base(CcKind::Bbr, CpuConfig::LowEnd, 20));
    let ratio = bbr / cubic;
    assert!(
        (0.25..0.70).contains(&ratio),
        "Low-End 20 conns: BBR/Cubic = {ratio:.2} (paper: 0.45)"
    );
}

/// §4.1: "Both BBR and Cubic under High-End device configurations are able
/// to achieve at least 915 Mbps goodput."
#[test]
fn headline_high_end_reaches_line_rate() {
    for cc in [CcKind::Cubic, CcKind::Bbr] {
        let g = goodput(base(cc, CpuConfig::HighEnd, 1));
        assert!(
            g > 850.0,
            "{cc} on High-End should near line rate, got {g:.0}"
        );
    }
}

/// §5.2.1 / Fig. 4: disabling pacing multiplies Low-End BBR goodput.
#[test]
fn headline_pacing_is_the_bottleneck() {
    let paced = goodput(base(CcKind::Bbr, CpuConfig::LowEnd, 20));
    let mut cfg = base(CcKind::Bbr, CpuConfig::LowEnd, 20);
    cfg.master = MasterConfig::pacing_off();
    let unpaced = goodput(cfg);
    assert!(
        unpaced > 1.5 * paced,
        "unpacing should multiply goodput: {unpaced:.0} vs {paced:.0} (paper: 2.7x)"
    );
}

/// §5.2.2 / Fig. 6: pacing hurts Cubic too — TCP pacing, not BBR, is the
/// mobile-specific problem.
#[test]
fn headline_pacing_is_not_bbr_specific() {
    let unpaced = goodput(base(CcKind::Cubic, CpuConfig::LowEnd, 20));
    let mut cfg = base(CcKind::Cubic, CpuConfig::LowEnd, 20);
    cfg.master = MasterConfig::pacing_on();
    let paced = goodput(cfg);
    assert!(
        paced < unpaced * 0.9,
        "paced Cubic {paced:.0} should fall below unpaced {unpaced:.0}"
    );
}

/// §5.2.3 / Fig. 7: pacing's benefit — without it, RTT at least doubles
/// under load.
#[test]
fn headline_pacing_keeps_rtt_low() {
    let paced = StackSim::new(base(CcKind::Bbr, CpuConfig::LowEnd, 20)).run();
    let mut cfg = base(CcKind::Bbr, CpuConfig::LowEnd, 20);
    cfg.master = MasterConfig::pacing_off();
    let unpaced = StackSim::new(cfg).run();
    assert!(
        unpaced.mean_rtt_ms > 1.6 * paced.mean_rtt_ms,
        "unpaced RTT {:.2} ms should dwarf paced {:.2} ms",
        unpaced.mean_rtt_ms,
        paced.mean_rtt_ms
    );
}

/// §5.2.3: the shallow-buffer retransmission explosion.
#[test]
fn headline_shallow_buffer_retransmissions() {
    let shallow = MediaProfile::Ethernet.path_config().with_queue_packets(10);
    let mut paced_cfg = base(CcKind::Bbr, CpuConfig::LowEnd, 20);
    paced_cfg.path = shallow.clone();
    let mut unpaced_cfg = base(CcKind::Bbr, CpuConfig::LowEnd, 20);
    unpaced_cfg.path = shallow;
    unpaced_cfg.master = MasterConfig::pacing_off();
    let paced = StackSim::new(paced_cfg).run();
    let unpaced = StackSim::new(unpaced_cfg).run();
    assert!(
        unpaced.total_retx > 10 * paced.total_retx.max(1),
        "retransmissions should explode: {} vs {}",
        unpaced.total_retx,
        paced.total_retx
    );
}

/// §6.2 / Fig. 8: the pacing stride recovers goodput, with an interior
/// optimum, while keeping retransmissions negligible.
#[test]
fn headline_stride_recovers_goodput() {
    let stock = StackSim::new(base(CcKind::Bbr, CpuConfig::LowEnd, 20)).run();
    let mut best = (1u64, stock.goodput_mbps());
    let mut at50 = 0.0;
    for stride in [5u64, 10, 50] {
        let mut cfg = base(CcKind::Bbr, CpuConfig::LowEnd, 20);
        cfg.pacing = PacingConfig::with_stride(stride);
        let res = StackSim::new(cfg).run();
        if res.goodput_mbps() > best.1 {
            best = (stride, res.goodput_mbps());
        }
        if stride == 50 {
            at50 = res.goodput_mbps();
        }
        assert!(
            res.total_retx < 1_000,
            "striding must not cause loss storms"
        );
    }
    assert!(
        best.1 > 1.25 * stock.goodput_mbps(),
        "best stride {}x should beat stock by ≥25%: {:.0} vs {:.0}",
        best.0,
        best.1,
        stock.goodput_mbps()
    );
    assert!(
        best.0 != 50 && at50 < best.1,
        "the optimum is interior (Table 2)"
    );
}

/// Appendix A.1 / Fig. 9: LTE is bandwidth-limited — BBR ≈ Cubic.
#[test]
fn headline_lte_parity() {
    let mut results = Vec::new();
    for cc in [CcKind::Cubic, CcKind::Bbr] {
        let cfg = SimConfig::builder(DeviceProfile::pixel6(), CpuConfig::LowEnd, cc, 4)
            .media(MediaProfile::Lte)
            .duration(SimDuration::from_secs(25))
            .warmup(SimDuration::from_secs(5))
            .build()
            .expect("valid config");
        results.push(goodput(cfg));
    }
    let ratio = results[1] / results[0];
    assert!(
        (0.8..1.25).contains(&ratio),
        "LTE: BBR {:.1} vs Cubic {:.1} should be close",
        results[1],
        results[0]
    );
    assert!(
        results.iter().all(|&g| g < 22.0),
        "LTE stays under ~20 Mbps"
    );
}

/// Determinism across the whole stack: identical configs give identical
/// results, bit for bit.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let mut cfg = base(CcKind::Bbr, CpuConfig::MidEnd, 5);
        cfg.seed = 42;
        let r = StackSim::new(cfg).run();
        (
            r.total_goodput,
            r.total_retx,
            r.counters.get("skbs_sent"),
            r.counters.get("timer_fires"),
        )
    };
    assert_eq!(run(), run());
}
