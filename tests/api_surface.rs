//! Integration tests of the public API surface: the pieces a downstream
//! user composes — device profiles, media, master-module knobs, experiment
//! runners — behave as documented when wired together.

use mobile_bbr::congestion::master::{Master, MasterConfig};
use mobile_bbr::congestion::{AckSample, CcKind, CongestionControl};
use mobile_bbr::cpu_model::{CostModel, CpuConfig, DeviceProfile};
use mobile_bbr::experiments::{ExperimentId, Params};
use mobile_bbr::iperf::{run_averaged, RunSpec};
use mobile_bbr::netsim::media::MediaProfile;
use mobile_bbr::sim_core::time::{SimDuration, SimTime};
use mobile_bbr::sim_core::units::Bandwidth;
use mobile_bbr::tcp_sim::{PacingConfig, SimConfig, StackSim};

#[test]
fn table1_configurations_scale_goodput_monotonically() {
    // More CPU never hurts: Low ≤ Mid ≤ High for both algorithms.
    for cc in [CcKind::Cubic, CcKind::Bbr] {
        let g = |cpu| {
            let cfg = SimConfig::builder(DeviceProfile::pixel4(), cpu, cc, 4)
                .duration(SimDuration::from_millis(2_000))
                .warmup(SimDuration::from_millis(500))
                .build()
                .expect("valid config");
            StackSim::new(cfg).run().goodput_mbps()
        };
        let low = g(CpuConfig::LowEnd);
        let mid = g(CpuConfig::MidEnd);
        let high = g(CpuConfig::HighEnd);
        assert!(low < mid, "{cc}: Low {low:.0} < Mid {mid:.0}");
        assert!(mid <= high * 1.02, "{cc}: Mid {mid:.0} ≤ High {high:.0}");
    }
}

#[test]
fn all_media_profiles_run_all_algorithms() {
    for media in [
        MediaProfile::Ethernet,
        MediaProfile::Wifi,
        MediaProfile::Lte,
    ] {
        for cc in [CcKind::Cubic, CcKind::Bbr, CcKind::Bbr2, CcKind::Reno] {
            let cfg = SimConfig::builder(DeviceProfile::pixel6(), CpuConfig::MidEnd, cc, 2)
                .media(media)
                .duration(SimDuration::from_millis(1_500))
                .warmup(SimDuration::from_millis(500))
                .build()
                .expect("valid config");
            let res = StackSim::new(cfg).run();
            assert!(
                res.goodput_mbps() > 0.5,
                "{cc} on {media} produced no goodput"
            );
        }
    }
}

#[test]
fn master_module_knobs_compose() {
    // Fixed cwnd + fixed rate + model off, all at once (§5.1's setup).
    let master = MasterConfig {
        fixed_cwnd: Some(70),
        fixed_pacing_rate: Some(Bandwidth::from_mbps(40).as_bps()),
        force_pacing: Some(true),
        disable_model: true,
    };
    let mut m = Master::new(CcKind::Bbr.build(1448), master);
    assert_eq!(m.cwnd(), 70);
    assert_eq!(m.pacing_rate(), Some(Bandwidth::from_mbps(40)));
    assert_eq!(m.model_cost_cycles(), 0);
    // Feeding acks changes nothing.
    m.on_ack(&AckSample {
        now: SimTime::from_millis(10),
        rtt: SimDuration::from_millis(1),
        delivery_rate: Bandwidth::from_mbps(500),
        delivered: 100,
        prior_delivered: 0,
        acked: 100,
        lost: 0,
        inflight: 0,
        app_limited: false,
        in_recovery: false,
    });
    assert_eq!(m.cwnd(), 70);
    assert_eq!(m.bandwidth_estimate(), None);
}

#[test]
fn custom_cost_model_changes_outcomes() {
    // Free timers (the §7.1.4 hardware-pacing hypothetical) must help
    // paced BBR on a slow core.
    let stock = SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::LowEnd, CcKind::Bbr, 20)
        .duration(SimDuration::from_millis(2_500))
        .warmup(SimDuration::from_millis(600))
        .build()
        .expect("valid config");
    let mut free = stock.clone();
    free.cost = CostModel::mobile_default().with_free_timers();
    let stock_g = StackSim::new(stock).run().goodput_mbps();
    let free_g = StackSim::new(free).run().goodput_mbps();
    assert!(
        free_g > stock_g * 1.05,
        "free hardware pacing should help: {free_g:.0} vs {stock_g:.0}"
    );
}

#[test]
fn stride_config_flows_through_runner() {
    let cfg = SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::LowEnd, CcKind::Bbr, 10)
        .duration(SimDuration::from_millis(1_500))
        .warmup(SimDuration::from_millis(500))
        .pacing(PacingConfig::with_stride(10))
        .build()
        .expect("valid config");
    let rep = run_averaged(&RunSpec::new("stride10", cfg, 2));
    assert_eq!(rep.seeds.len(), 2);
    assert!(rep.goodput_mbps > 0.0);
    assert!(rep.mean_idle_ms > 0.0, "paced run reports idle time");
}

#[test]
fn experiment_ids_run_from_the_umbrella_crate() {
    // Smoke-run one cheap experiment through the full public pipeline.
    let exp = ExperimentId::Bbr2Wifi
        .run(&Params::smoke())
        .expect("experiment completes");
    assert_eq!(exp.table.rows.len(), 3);
    let md = exp.render_markdown();
    assert!(md.contains("BBR2"));
    let json = serde_json::to_string(&exp).expect("serializes");
    assert!(json.contains("checks"));
}

#[test]
fn fixed_rate_pacing_is_precise_end_to_end() {
    // Closed-form check: 4 flows pinned at 50 Mbps each through an idle
    // gigabit path on an unconstrained CPU must deliver ~200 Mbps — the
    // EDT pacer is exact, so the only slack is warmup/rounding.
    let cfg = SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::HighEnd, CcKind::Bbr, 4)
        .duration(SimDuration::from_secs(3))
        .warmup(SimDuration::from_secs(1))
        .master(MasterConfig {
            fixed_cwnd: Some(500),
            fixed_pacing_rate: Some(Bandwidth::from_mbps(50).as_bps()),
            force_pacing: Some(true),
            disable_model: true,
        })
        .build()
        .expect("valid config");
    let res = StackSim::new(cfg).run();
    let got = res.goodput_mbps();
    assert!(
        (got - 200.0).abs() < 12.0,
        "4 × 50 Mbps pinned pacing should deliver ~200 Mbps, got {got:.1}"
    );
    assert!(res.total_retx == 0, "paced well below line rate: no loss");
}

#[test]
fn seeds_vary_results_but_not_structure() {
    let mk = |seed| {
        let cfg = SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::MidEnd, CcKind::Bbr, 3)
            .duration(SimDuration::from_millis(1_500))
            .warmup(SimDuration::from_millis(500))
            .seed(seed)
            .media(MediaProfile::Wifi) // seed-sensitive medium
            .build()
            .expect("valid config");
        StackSim::new(cfg).run()
    };
    let a = mk(1);
    let b = mk(2);
    assert_eq!(a.per_conn.len(), b.per_conn.len());
    assert_ne!(
        a.total_goodput, b.total_goodput,
        "different seeds should differ on a variable medium"
    );
}
