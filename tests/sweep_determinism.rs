//! End-to-end guarantees of the sweep engine (`sim_core::sweep`):
//!
//! 1. **Parallel == serial, byte for byte.** The full experiment scorecard
//!    rendered to JSON with `--jobs 1` equals the same render with many
//!    workers — the engine's headline determinism contract.
//! 2. **The run cache is transparent.** A warm rerun serves every cell
//!    from cache (100% hits), returns identical results, and is far
//!    cheaper than the cold run.

use experiments::{Experiment, ExperimentId, Params};
use iperf::{RunSpec, SeedCell};
use sim_core::sweep::{run_sweep, SweepOptions};

/// Smoke-sized parameters with an explicit worker count and no cache.
fn smoke_with_jobs(jobs: usize) -> Params {
    let mut p = Params::smoke();
    p.threads = jobs;
    p.cache_dir = None;
    p.progress = false;
    p
}

fn run_all(params: &Params) -> Vec<Experiment> {
    ExperimentId::ALL
        .iter()
        .map(|id| id.run(params).expect("uncancelled experiment completes"))
        .collect()
}

/// The exact bytes `repro --json` writes.
fn to_json(experiments: &[Experiment]) -> String {
    serde_json::to_string_pretty(experiments).unwrap()
}

#[test]
fn parallel_sweep_json_is_byte_identical_to_serial() {
    let serial = run_all(&smoke_with_jobs(1));
    let parallel = run_all(&smoke_with_jobs(8));
    assert_eq!(
        to_json(&serial),
        to_json(&parallel),
        "jobs=8 must reproduce jobs=1 byte for byte"
    );
}

#[test]
fn warm_cache_rerun_is_complete_and_identical() {
    let cache = std::env::temp_dir().join(format!("mobile-bbr-warm-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);

    // A representative slice of the scorecard's cells: two CPU configs,
    // three seeds each, built exactly as the experiments build them.
    let params = Params::smoke();
    let specs = [
        RunSpec::new(
            "warm-low",
            params.pixel4(cpu_model::CpuConfig::LowEnd, congestion::CcKind::Bbr, 4),
            3,
        ),
        RunSpec::new(
            "warm-high",
            params.pixel4(cpu_model::CpuConfig::HighEnd, congestion::CcKind::Cubic, 4),
            3,
        ),
    ];
    let mut cells = Vec::new();
    for spec in &specs {
        for &seed in &spec.seeds {
            let mut config = spec.config.clone();
            config.seed = seed;
            cells.push(SeedCell {
                label: spec.label.clone(),
                config: std::sync::Arc::new(config),
            });
        }
    }

    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(cache.clone()),
        ..SweepOptions::default()
    };
    let cold = run_sweep(&cells, &opts);
    assert_eq!(cold.cache_hits(), 0, "first run computes everything");

    let warm = run_sweep(&cells, &opts);
    assert_eq!(
        warm.cache_hits(),
        cells.len(),
        "warm rerun must be 100% cache hits"
    );
    for (c, w) in cold.outputs.iter().zip(&warm.outputs) {
        assert_eq!(c.seed, w.seed);
        assert_eq!(c.goodput_mbps.to_bits(), w.goodput_mbps.to_bits());
        assert_eq!(c.mean_rtt_ms.to_bits(), w.mean_rtt_ms.to_bits());
        assert_eq!(c.retx, w.retx);
        assert_eq!(c.timer_fires, w.timer_fires);
    }
    // The full-binary warm/cold ratio is far below 10%; in-process we only
    // assert the conservative half to keep the test robust on loaded CI.
    assert!(
        warm.elapsed < cold.elapsed / 2,
        "warm rerun should be much cheaper: cold {:?}, warm {:?}",
        cold.elapsed,
        warm.elapsed
    );

    let _ = std::fs::remove_dir_all(&cache);
}
