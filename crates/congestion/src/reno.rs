//! Classic Reno AIMD — the simplest baseline in the framework.
//!
//! Not part of the paper's measurement matrix (Android ships Cubic), but a
//! loss-based reference point for the fairness and ablation benches, and a
//! sanity anchor for the framework's tests: anything Cubic does, Reno must
//! do more conservatively.

use crate::{AckSample, CongestionControl, LossEvent, INIT_CWND, MIN_CWND};
use sim_core::time::SimTime;
use sim_core::units::Bandwidth;

/// Reno: slow start + congestion avoidance (1 packet per RTT) + halving.
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: f64,
    ssthresh: u64,
    in_recovery: bool,
}

impl Reno {
    /// A fresh Reno instance at the initial window.
    pub fn new() -> Self {
        Reno {
            cwnd: INIT_CWND as f64,
            ssthresh: u64::MAX,
            in_recovery: false,
        }
    }
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn phase(&self) -> &'static str {
        if self.in_recovery {
            "recovery"
        } else if (self.cwnd as u64) < self.ssthresh {
            "slow_start"
        } else {
            "avoidance"
        }
    }

    fn on_ack(&mut self, sample: &AckSample) {
        if self.in_recovery {
            return; // window frozen during fast recovery
        }
        if (self.cwnd as u64) < self.ssthresh {
            // Slow start: one packet per acked packet.
            self.cwnd += sample.acked as f64;
        } else {
            // Congestion avoidance: one packet per window per RTT.
            self.cwnd += sample.acked as f64 / self.cwnd;
        }
    }

    fn on_loss_event(&mut self, _event: &LossEvent) {
        if self.in_recovery {
            return; // one reduction per recovery episode
        }
        self.in_recovery = true;
        self.ssthresh = ((self.cwnd / 2.0) as u64).max(MIN_CWND);
        self.cwnd = self.ssthresh as f64;
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        self.in_recovery = false;
    }

    fn on_rto(&mut self, _now: SimTime, _inflight: u64) {
        self.ssthresh = ((self.cwnd / 2.0) as u64).max(MIN_CWND);
        self.cwnd = 1.0;
        self.in_recovery = false;
    }

    fn cwnd(&self) -> u64 {
        (self.cwnd as u64).max(1)
    }

    fn wants_pacing(&self) -> bool {
        false
    }

    fn pacing_rate(&self) -> Option<Bandwidth> {
        None
    }

    fn model_cost_cycles(&self) -> u64 {
        400
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sample;

    #[test]
    fn starts_at_initial_window() {
        assert_eq!(Reno::new().cwnd(), INIT_CWND);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = Reno::new();
        // Acking a full window in slow start doubles it.
        let w0 = r.cwnd();
        r.on_ack(&sample(10, 10, 100, w0, w0, 0));
        assert_eq!(r.cwnd(), 2 * w0);
    }

    #[test]
    fn congestion_avoidance_adds_one_per_rtt() {
        let mut r = Reno::new();
        r.on_loss_event(&LossEvent {
            now: SimTime::from_millis(1),
            inflight: 10,
            lost: 1,
        });
        r.on_recovery_exit(SimTime::from_millis(2));
        let w = r.cwnd();
        // Ack one full window's worth of packets: +1 packet total.
        r.on_ack(&sample(10, 10, 100, w, w, 0));
        assert_eq!(r.cwnd(), w + 1);
    }

    #[test]
    fn loss_halves_window_once_per_episode() {
        let mut r = Reno::new();
        // Grow a bit first.
        for i in 0..5 {
            let w = r.cwnd();
            r.on_ack(&sample(i, 10, 100, w, w, 0));
        }
        let before = r.cwnd();
        r.on_loss_event(&LossEvent {
            now: SimTime::from_millis(50),
            inflight: before,
            lost: 1,
        });
        assert_eq!(r.cwnd(), (before / 2).max(MIN_CWND));
        let after_first = r.cwnd();
        // A second loss within the same recovery must not halve again.
        r.on_loss_event(&LossEvent {
            now: SimTime::from_millis(51),
            inflight: before,
            lost: 1,
        });
        assert_eq!(r.cwnd(), after_first);
    }

    #[test]
    fn window_frozen_during_recovery() {
        let mut r = Reno::new();
        r.on_loss_event(&LossEvent {
            now: SimTime::from_millis(1),
            inflight: 10,
            lost: 1,
        });
        let w = r.cwnd();
        r.on_ack(&sample(2, 10, 100, 20, 5, 5));
        assert_eq!(r.cwnd(), w);
    }

    #[test]
    fn rto_collapses_to_one() {
        let mut r = Reno::new();
        r.on_rto(SimTime::from_millis(100), 10);
        assert_eq!(r.cwnd(), 1);
        assert_eq!(r.ssthresh(), (INIT_CWND / 2).max(MIN_CWND));
    }

    #[test]
    fn never_paces() {
        let r = Reno::new();
        assert!(!r.wants_pacing());
        assert_eq!(r.pacing_rate(), None);
    }
}
