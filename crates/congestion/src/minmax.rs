//! Windowed min/max filters, after Linux's `lib/win_minmax.c`.
//!
//! BBR's two model inputs are a **windowed max** of delivery-rate samples
//! (bottleneck bandwidth over the last 10 packet-timed rounds) and a
//! **windowed min** of RTT samples (propagation delay over the last 10
//! seconds). The kernel tracks each with just three timestamped samples —
//! the best, second-best and third-best seen within the window — which is
//! O(1) per update and exact for the "best in window" query.
//!
//! The filter is generic over the time axis: BBR's bandwidth filter runs on
//! *round counts*, the RTT filter on *nanoseconds*, so the window type is a
//! plain `u64`.

/// One timestamped sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sample {
    t: u64,
    v: u64,
}

/// Windowed maximum of `u64` samples over a `u64`-typed sliding window.
#[derive(Debug, Clone)]
pub struct MaxFilter {
    window: u64,
    s: [Sample; 3],
}

impl MaxFilter {
    /// A filter over the trailing `window` (same unit as the `t` passed to
    /// [`MaxFilter::update`]).
    pub fn new(window: u64) -> Self {
        MaxFilter {
            window,
            s: [Sample { t: 0, v: 0 }; 3],
        }
    }

    /// Best (largest) sample currently in window.
    pub fn get(&self) -> u64 {
        self.s[0].v
    }

    /// Reset the filter to a single sample.
    pub fn reset(&mut self, t: u64, v: u64) {
        self.s = [Sample { t, v }; 3];
    }

    /// Offer a new sample at time `t`; returns the new windowed max.
    ///
    /// Port of `minmax_running_max`.
    pub fn update(&mut self, t: u64, v: u64) -> u64 {
        let dt = t.wrapping_sub(self.s[2].t);
        if v >= self.s[0].v || dt > self.window {
            // New best, or the whole pipeline has aged out.
            self.reset(t, v);
            return self.get();
        }
        if v >= self.s[1].v {
            self.s[2] = Sample { t, v };
            self.s[1] = self.s[2];
        } else if v >= self.s[2].v {
            self.s[2] = Sample { t, v };
        }
        self.subwin_update(t, v)
    }

    /// Age out expired best samples (shared tail of the kernel algorithm).
    fn subwin_update(&mut self, t: u64, v: u64) -> u64 {
        if t.wrapping_sub(self.s[0].t) > self.window {
            // Best expired: promote and record the new sample in slot 2.
            self.s[0] = self.s[1];
            self.s[1] = self.s[2];
            self.s[2] = Sample { t, v };
            if t.wrapping_sub(self.s[0].t) > self.window {
                self.s[0] = self.s[1];
                self.s[1] = self.s[2];
            }
        } else if self.s[1].t == self.s[0].t && t.wrapping_sub(self.s[1].t) > self.window / 4 {
            // s[1] is a duplicate of s[0]: refresh it so we have a fallback
            // from the most recent quarter-window.
            self.s[2] = Sample { t, v };
            self.s[1] = self.s[2];
        } else if self.s[2].t == self.s[1].t && t.wrapping_sub(self.s[2].t) > self.window / 2 {
            self.s[2] = Sample { t, v };
        }
        self.get()
    }
}

/// Windowed minimum of `u64` samples (BBR's min-RTT filter).
///
/// Implemented by negation over [`MaxFilter`] to keep one tested core.
#[derive(Debug, Clone)]
pub struct MinFilter {
    inner: MaxFilter,
}

impl MinFilter {
    /// A filter over the trailing `window`.
    pub fn new(window: u64) -> Self {
        MinFilter {
            inner: MaxFilter::new(window),
        }
    }

    /// Smallest sample in window (`u64::MAX` before any update).
    pub fn get(&self) -> u64 {
        let raw = self.inner.get();
        if raw == 0 {
            u64::MAX
        } else {
            u64::MAX - raw
        }
    }

    /// Reset to a single sample.
    pub fn reset(&mut self, t: u64, v: u64) {
        self.inner.reset(t, u64::MAX - v);
    }

    /// Offer a sample; returns the new windowed min.
    pub fn update(&mut self, t: u64, v: u64) -> u64 {
        u64::MAX - self.inner.update(t, u64::MAX - v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn max_tracks_rising_samples() {
        let mut f = MaxFilter::new(10);
        assert_eq!(f.update(0, 5), 5);
        assert_eq!(f.update(1, 7), 7);
        assert_eq!(f.update(2, 6), 7);
        assert_eq!(f.update(3, 9), 9);
    }

    #[test]
    fn max_expires_after_window() {
        let mut f = MaxFilter::new(10);
        f.update(0, 100);
        for t in 1..=10 {
            f.update(t, 10);
        }
        assert_eq!(f.get(), 100, "still in window at t=10");
        let got = f.update(11, 10);
        assert_eq!(got, 10, "100 aged out of the 10-wide window");
    }

    #[test]
    fn max_promotes_second_best_on_expiry() {
        let mut f = MaxFilter::new(10);
        f.update(0, 100);
        f.update(5, 60); // second best, mid-window
        for t in 6..=10 {
            f.update(t, 10);
        }
        // At t=11 the 100 expires; the best remaining in-window sample is 60.
        assert_eq!(f.update(11, 10), 60);
    }

    #[test]
    fn min_tracks_falling_samples() {
        let mut f = MinFilter::new(100);
        assert_eq!(f.update(0, 50), 50);
        assert_eq!(f.update(1, 30), 30);
        assert_eq!(f.update(2, 40), 30);
        assert_eq!(f.update(3, 10), 10);
    }

    #[test]
    fn min_expires_after_window() {
        // BBR's 10-second min-RTT window in miniature.
        let mut f = MinFilter::new(10);
        f.update(0, 1); // a transiently empty queue
        for t in 1..=10 {
            f.update(t, 5);
        }
        assert_eq!(f.get(), 1);
        assert_eq!(f.update(11, 5), 5, "old min must age out");
    }

    #[test]
    fn reset_discards_history() {
        let mut f = MaxFilter::new(10);
        f.update(0, 100);
        f.reset(5, 3);
        assert_eq!(f.get(), 3);
    }

    /// Brute-force oracle: max over samples within the window.
    fn oracle_max(samples: &[(u64, u64)], now: u64, window: u64) -> u64 {
        samples
            .iter()
            .filter(|(t, _)| now - t <= window)
            .map(|&(_, v)| v)
            .max()
            .unwrap_or(0)
    }

    proptest! {
        /// The 3-sample filter never *underestimates* relative to the exact
        /// windowed max restricted to its retained candidates, and never
        /// exceeds the all-time max; moreover it is exact whenever the true
        /// max is still in window (the property BBR relies on: the filter
        /// may briefly *overestimate* after expiry, never underestimate the
        /// current sample).
        #[test]
        fn prop_filter_bounds(
            values in proptest::collection::vec(1u64..1000, 1..200),
            window in 1u64..50,
        ) {
            let mut f = MaxFilter::new(window);
            let mut history: Vec<(u64, u64)> = Vec::new();
            for (t, &v) in values.iter().enumerate() {
                let t = t as u64;
                history.push((t, v));
                let got = f.update(t, v);
                let exact = oracle_max(&history, t, window);
                // Never below the newest sample, never below exact when the
                // exact max is the current global max in window.
                prop_assert!(got >= v);
                prop_assert!(got >= exact || got >= v, "got {got} exact {exact}");
                // Never above the all-time max.
                let all_time = history.iter().map(|&(_, x)| x).max().unwrap();
                prop_assert!(got <= all_time);
            }
        }

        /// Min filter mirrors max filter through negation.
        #[test]
        fn prop_min_is_negated_max(
            values in proptest::collection::vec(1u64..1000, 1..100),
            window in 1u64..50,
        ) {
            let mut minf = MinFilter::new(window);
            let mut maxf = MaxFilter::new(window);
            for (t, &v) in values.iter().enumerate() {
                let m1 = minf.update(t as u64, v);
                let m2 = maxf.update(t as u64, u64::MAX - v);
                prop_assert_eq!(m1, u64::MAX - m2);
            }
        }

        /// Monotone non-increasing inputs make the min filter exact.
        #[test]
        fn prop_min_exact_on_decreasing(start in 100u64..10_000, n in 1u64..100) {
            let mut f = MinFilter::new(1_000_000);
            for i in 0..n {
                let v = start - i;
                prop_assert_eq!(f.update(i, v), v);
            }
        }
    }
}
