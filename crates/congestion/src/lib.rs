//! # congestion
//!
//! The congestion-control framework of the *"Are Mobiles Ready for BBR?"*
//! reproduction, mirroring the shape of Linux's `tcp_congestion_ops`.
//!
//! A [`CongestionControl`] consumes per-ACK [`AckSample`]s (which carry the
//! delivery-rate sample Linux's `tcp_rate.c` would compute) and exposes the
//! two outputs the paper's §5 manipulates:
//!
//! * a congestion window ([`CongestionControl::cwnd`], packets), and
//! * a pacing decision ([`CongestionControl::wants_pacing`] +
//!   [`CongestionControl::pacing_rate`]).
//!
//! Five algorithms are provided:
//!
//! * [`reno::Reno`] — classic AIMD, as the simplest baseline;
//! * [`cubic::Cubic`] — RFC 8312 Cubic with HyStart, Android's default
//!   ("the Cubic congestion control for Android is the same as the Cubic
//!   implementation in the corresponding Linux kernel", §3). Cubic does
//!   **not** pace by default;
//! * [`bbr::Bbr`] — BBR v1 after Linux's `tcp_bbr.c`: STARTUP/DRAIN/
//!   PROBE_BW/PROBE_RTT, a 10-round windowed-max bandwidth filter, a 10 s
//!   min-RTT filter, and pacing at `gain × btl_bw`;
//! * [`bbr2::Bbr2`] — BBR v2 per the IETF-104/105/106 iccrg decks the paper
//!   cites: adds loss-bounded `inflight_hi`/`inflight_lo` and the
//!   DOWN/CRUISE/REFILL/UP probing cycle;
//! * [`bbr3::Bbr3`] — BBR v3 per the IETF-117/119 iccrg updates: shallower
//!   DOWN probe, round-bounded cruise, and a per-episode loss response
//!   anchored at measured inflight. Not in the paper's matrix (see
//!   [`CcKind::PAPER`]); it serves the AQM/fairness follow-up experiments.
//!
//! [`master::Master`] wraps any of them with the paper's §5 "master BBR
//! kernel module" knobs: disable the model computation, fix the cwnd, fix
//! the pacing rate, or force pacing on/off.
//!
//! Each algorithm also reports [`CongestionControl::model_cost_cycles`] —
//! the CPU cost of its per-ACK computation — so the CPU model can charge
//! BBR's heavier model ("BBR recomputes a large part of its model … on
//! every acknowledged packet", §5) and the master module can zero it out
//! for the §5.1.1 experiment.

#![warn(missing_docs)]

pub mod bbr;
pub mod bbr2;
pub mod bbr3;
pub mod cubic;
pub mod group;
pub mod master;
pub mod minmax;
pub mod reno;

use serde::{Deserialize, Serialize};
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;

/// Default initial congestion window (Linux `TCP_INIT_CWND`), packets.
pub const INIT_CWND: u64 = 10;

/// Floor for any congestion window, packets.
pub const MIN_CWND: u64 = 4;

/// One ACK's worth of information, as Linux's rate sampler would deliver it.
#[derive(Debug, Clone, Copy)]
pub struct AckSample {
    /// Arrival time of the ACK at the sender.
    pub now: SimTime,
    /// RTT sample carried by this ACK (send → ack of the newest acked pkt).
    pub rtt: SimDuration,
    /// Delivery-rate sample: delivered bytes over the sampling interval
    /// (`tcp_rate.c` semantics: `max(send interval, ack interval)`).
    pub delivery_rate: Bandwidth,
    /// Total packets delivered on this connection up to and including this
    /// ACK (the `delivered` count).
    pub delivered: u64,
    /// `delivered` as of when the just-acked packet was *sent* — BBR uses
    /// this for packet-timed round trips.
    pub prior_delivered: u64,
    /// Packets newly acknowledged (cumulative + selective) by this ACK.
    pub acked: u64,
    /// Packets newly marked lost while processing this ACK.
    pub lost: u64,
    /// Packets left in flight after processing this ACK.
    pub inflight: u64,
    /// True if the rate sample was taken while application-limited
    /// (sender had no data to send — rare in the paper's bulk uploads).
    pub app_limited: bool,
    /// True if the connection is currently in fast-recovery.
    pub in_recovery: bool,
}

/// A loss notification (entry into fast recovery).
#[derive(Debug, Clone, Copy)]
pub struct LossEvent {
    /// When recovery was entered.
    pub now: SimTime,
    /// Packets in flight at the time.
    pub inflight: u64,
    /// Packets declared lost so far in this event.
    pub lost: u64,
}

/// The interface every congestion-control algorithm implements.
pub trait CongestionControl: Send {
    /// Algorithm name, e.g. `"bbr"` (matches Linux module naming).
    fn name(&self) -> &'static str;

    /// Process one acknowledgement.
    fn on_ack(&mut self, sample: &AckSample);

    /// A loss event was detected (dup-ACK / RACK fast recovery entry).
    fn on_loss_event(&mut self, event: &LossEvent);

    /// Fast recovery completed (all lost data repaired).
    fn on_recovery_exit(&mut self, now: SimTime);

    /// A retransmission timeout fired.
    fn on_rto(&mut self, now: SimTime, inflight: u64);

    /// Current congestion window, in packets.
    fn cwnd(&self) -> u64;

    /// Whether this algorithm asks the stack to pace ("BBR and BBR2 enable
    /// TCP packet pacing", §5; Cubic "does not use packet pacing by
    /// default").
    fn wants_pacing(&self) -> bool;

    /// The pacing rate this algorithm sets, if it computes one. Algorithms
    /// that want pacing but return `None` get TCP's internal fallback rate
    /// (`mss × cwnd / srtt`, §5.2.2) from the stack.
    fn pacing_rate(&self) -> Option<Bandwidth>;

    /// CPU cycles this algorithm's model update costs per processed ACK
    /// (charged by the CPU model on top of generic ACK processing).
    fn model_cost_cycles(&self) -> u64;

    /// Expose the algorithm's bandwidth estimate for instrumentation
    /// (`None` for loss-based algorithms with no such estimate).
    fn bandwidth_estimate(&self) -> Option<Bandwidth> {
        None
    }

    /// Current slow-start threshold in packets, for instrumentation.
    fn ssthresh(&self) -> u64 {
        u64::MAX
    }

    /// Current state-machine phase as a stable identifier, for sim-trace
    /// phase-transition records: BBR reports `"startup"`/`"drain"`/
    /// `"probe_bw"`/`"probe_rtt"` (v2 adds the ProbeBW sub-phases),
    /// loss-based algorithms report `"slow_start"`/`"avoidance"`/
    /// `"recovery"`. The default is `""` (no state machine to report).
    fn phase(&self) -> &'static str {
        ""
    }
}

/// Which congestion control to instantiate — the experiment matrix axis.
///
/// ```
/// use congestion::CcKind;
///
/// let bbr = CcKind::Bbr.build(1448);
/// assert!(bbr.wants_pacing());
/// let cubic = CcKind::Cubic.build(1448);
/// assert!(!cubic.wants_pacing()); // Android's default doesn't pace
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CcKind {
    /// Classic Reno AIMD.
    Reno,
    /// Cubic (Android default).
    Cubic,
    /// BBR v1.
    Bbr,
    /// BBR v2.
    Bbr2,
    /// BBR v3.
    Bbr3,
}

impl CcKind {
    /// All algorithms the paper measures. Reno is excluded (our extra
    /// baseline, not part of the paper's matrix) and so is BBRv3 (it
    /// post-dates the paper; the fairness/AQM follow-up experiments use it
    /// via [`CcKind::ALL`]).
    pub const PAPER: [CcKind; 3] = [CcKind::Cubic, CcKind::Bbr, CcKind::Bbr2];

    /// Every implemented algorithm — the single source of truth for code
    /// that enumerates the CC axis (re-exported as `test_support::ALL_CC`).
    pub const ALL: [CcKind; 5] = [
        CcKind::Reno,
        CcKind::Cubic,
        CcKind::Bbr,
        CcKind::Bbr2,
        CcKind::Bbr3,
    ];

    /// Instantiate the algorithm with `mss`-byte segments.
    pub fn build(self, mss: u64) -> Box<dyn CongestionControl> {
        match self {
            CcKind::Reno => Box::new(reno::Reno::new()),
            CcKind::Cubic => Box::new(cubic::Cubic::new()),
            CcKind::Bbr => Box::new(bbr::Bbr::new(mss)),
            CcKind::Bbr2 => Box::new(bbr2::Bbr2::new(mss)),
            CcKind::Bbr3 => Box::new(bbr3::Bbr3::new(mss)),
        }
    }
}

impl std::fmt::Display for CcKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcKind::Reno => write!(f, "Reno"),
            CcKind::Cubic => write!(f, "Cubic"),
            CcKind::Bbr => write!(f, "BBR"),
            CcKind::Bbr2 => write!(f, "BBR2"),
            CcKind::Bbr3 => write!(f, "BBR3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Helper shared by the per-algorithm test modules.
    pub(crate) fn sample(
        now_ms: u64,
        rtt_ms: u64,
        rate_mbps: u64,
        delivered: u64,
        acked: u64,
        inflight: u64,
    ) -> AckSample {
        AckSample {
            now: SimTime::from_millis(now_ms),
            rtt: SimDuration::from_millis(rtt_ms),
            delivery_rate: Bandwidth::from_mbps(rate_mbps),
            delivered,
            prior_delivered: delivered.saturating_sub(acked + inflight),
            acked,
            lost: 0,
            inflight,
            app_limited: false,
            in_recovery: false,
        }
    }

    #[test]
    fn all_kinds_build() {
        for kind in CcKind::ALL {
            let cc = kind.build(1448);
            assert!(cc.cwnd() >= MIN_CWND);
            assert!(!cc.name().is_empty());
        }
    }

    #[test]
    fn paper_matrix_is_a_strict_subset_of_all() {
        for kind in CcKind::PAPER {
            assert!(CcKind::ALL.contains(&kind));
        }
        assert!(!CcKind::PAPER.contains(&CcKind::Reno));
        assert!(!CcKind::PAPER.contains(&CcKind::Bbr3));
    }

    #[test]
    fn pacing_defaults_match_paper_section5() {
        // "BBR and BBR2 enable TCP packet pacing… Cubic… does not use
        // packet pacing by default."
        assert!(CcKind::Bbr.build(1448).wants_pacing());
        assert!(CcKind::Bbr2.build(1448).wants_pacing());
        assert!(CcKind::Bbr3.build(1448).wants_pacing());
        assert!(!CcKind::Cubic.build(1448).wants_pacing());
        assert!(!CcKind::Reno.build(1448).wants_pacing());
    }

    #[test]
    fn bbr_model_is_costlier_than_cubic() {
        // §5: "BBR recomputes a large part of its model … on every
        // acknowledged packet" vs Cubic's "simple AIMD logic".
        let bbr = CcKind::Bbr.build(1448);
        let cubic = CcKind::Cubic.build(1448);
        let reno = CcKind::Reno.build(1448);
        assert!(bbr.model_cost_cycles() > 3 * cubic.model_cost_cycles());
        assert!(cubic.model_cost_cycles() >= reno.model_cost_cycles());
    }

    #[test]
    fn display_names() {
        assert_eq!(CcKind::Bbr.to_string(), "BBR");
        assert_eq!(CcKind::Cubic.to_string(), "Cubic");
        assert_eq!(CcKind::Bbr2.to_string(), "BBR2");
        assert_eq!(CcKind::Bbr3.to_string(), "BBR3");
        assert_eq!(CcKind::Reno.to_string(), "Reno");
    }
}
