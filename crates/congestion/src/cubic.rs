//! Cubic congestion control (RFC 8312) with HyStart, after Linux's
//! `tcp_cubic.c` — Android's default algorithm.
//!
//! §3 of the paper: "We find that the Cubic congestion control for Android
//! is the same as the Cubic implementation in the corresponding Linux
//! kernel." The pieces that matter to the reproduction:
//!
//! * **no pacing by default** — Cubic rides the ACK clock, which is exactly
//!   why it dodges the per-send timer overhead BBR pays (§5.2.2);
//! * the cubic window growth `W(t) = C(t−K)³ + W_max` with β = 0.7 and
//!   C = 0.4, plus the TCP-friendly region;
//! * **HyStart** delay-based slow-start exit, which keeps Cubic's startup
//!   from overshooting the 1 Gbps testbed queue;
//! * fast convergence (release buffer share to newer flows).
//!
//! The implementation uses floating-point windows rather than the kernel's
//! fixed-point `cnt/cwnd_cnt` scheme; the trajectories agree to well under
//! one segment per RTT, and floats keep the property tests readable.

use crate::{AckSample, CongestionControl, LossEvent, INIT_CWND, MIN_CWND};
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;

/// RFC 8312 multiplicative decrease factor.
const BETA: f64 = 0.7;
/// RFC 8312 cubic scaling constant (window in packets, time in seconds).
const C: f64 = 0.4;

/// HyStart: minimum delay-increase threshold.
const HYSTART_DELAY_MIN: SimDuration = SimDuration::from_millis(4);
/// HyStart: maximum delay-increase threshold.
const HYSTART_DELAY_MAX: SimDuration = SimDuration::from_millis(16);
/// HyStart: RTT samples per round used for the current-round minimum.
const HYSTART_MIN_SAMPLES: u32 = 8;
/// HyStart only arms above this window (Linux `hystart_low_window`).
const HYSTART_LOW_WINDOW: u64 = 16;

/// Cubic with HyStart.
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: u64,
    in_recovery: bool,
    // Cubic epoch state.
    epoch_start: Option<SimTime>,
    w_max: f64,
    k: f64, // seconds
    // TCP-friendly region estimate.
    w_est: f64,
    ack_cnt: f64,
    // Connection-lifetime minimum RTT (HyStart baseline).
    delay_min: SimDuration,
    // HyStart per-round state.
    hystart_found: bool,
    round_start_delivered: u64,
    curr_round_min_rtt: SimDuration,
    rtt_sample_cnt: u32,
}

impl Cubic {
    /// A fresh Cubic instance.
    pub fn new() -> Self {
        Cubic {
            cwnd: INIT_CWND as f64,
            ssthresh: u64::MAX,
            in_recovery: false,
            epoch_start: None,
            w_max: 0.0,
            k: 0.0,
            w_est: 0.0,
            ack_cnt: 0.0,
            delay_min: SimDuration::MAX,
            hystart_found: false,
            round_start_delivered: 0,
            curr_round_min_rtt: SimDuration::MAX,
            rtt_sample_cnt: 0,
        }
    }

    fn in_slow_start(&self) -> bool {
        (self.cwnd as u64) < self.ssthresh
    }

    /// HyStart's delay threshold: clamp(delay_min / 8, 4 ms, 16 ms).
    fn hystart_delay_thresh(&self) -> SimDuration {
        let eighth = self.delay_min / 8;
        eighth.max(HYSTART_DELAY_MIN).min(HYSTART_DELAY_MAX)
    }

    fn hystart_update(&mut self, sample: &AckSample) {
        if self.hystart_found || (self.cwnd as u64) < HYSTART_LOW_WINDOW {
            return;
        }
        // Round boundary: the first packet of this round has been delivered.
        if sample.prior_delivered >= self.round_start_delivered {
            self.round_start_delivered = sample.delivered;
            self.curr_round_min_rtt = SimDuration::MAX;
            self.rtt_sample_cnt = 0;
        }
        if self.rtt_sample_cnt < HYSTART_MIN_SAMPLES {
            self.curr_round_min_rtt = self.curr_round_min_rtt.min(sample.rtt);
            self.rtt_sample_cnt += 1;
            if self.rtt_sample_cnt == HYSTART_MIN_SAMPLES
                && self.delay_min != SimDuration::MAX
                && self.curr_round_min_rtt >= self.delay_min + self.hystart_delay_thresh()
            {
                // Queue is building: leave slow start at the current window.
                self.hystart_found = true;
                self.ssthresh = self.cwnd as u64;
            }
        }
    }

    /// RFC 8312 window update; returns the per-ack additive increment.
    fn cubic_increment(&mut self, now: SimTime, rtt: SimDuration, acked: u64) -> f64 {
        let epoch = *self.epoch_start.get_or_insert_with(|| {
            // New epoch: position the cubic origin.
            if self.w_max <= self.cwnd {
                self.k = 0.0;
                self.w_max = self.cwnd;
            } else {
                self.k = ((self.w_max - self.cwnd) / C).cbrt();
            }
            self.ack_cnt = 0.0;
            self.w_est = self.cwnd;
            now
        });

        // Time since epoch, biased by delay_min as in the kernel (predicts
        // the window one RTT ahead so growth is not systematically late).
        let mut t = now.saturating_since(epoch).as_secs_f64();
        if self.delay_min != SimDuration::MAX {
            t += self.delay_min.as_secs_f64();
        }
        let w_cubic = C * (t - self.k).powi(3) + self.w_max;

        // TCP-friendly region (RFC 8312 §4.2): emulate Reno's growth.
        self.ack_cnt += acked as f64;
        let rtt_s = rtt.as_secs_f64().max(1e-6);
        let reno_slope = 3.0 * (1.0 - BETA) / (1.0 + BETA); // packets per RTT
        while self.ack_cnt >= self.w_est / reno_slope.max(1e-9) && self.ack_cnt >= 1.0 {
            // Approximate: W_est += reno_slope per W_est acks.
            self.ack_cnt -= self.w_est / reno_slope.max(1e-9);
            self.w_est += 1.0;
        }
        let _ = rtt_s;

        let target = w_cubic.max(self.w_est);
        if target > self.cwnd {
            // Close the gap over roughly one RTT's worth of acks.
            (target - self.cwnd) * acked as f64 / self.cwnd
        } else {
            // Flat region: token growth (kernel: 1 packet per 100 acks).
            acked as f64 * 0.01
        }
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn phase(&self) -> &'static str {
        if self.in_recovery {
            "recovery"
        } else if self.in_slow_start() {
            "slow_start"
        } else {
            "avoidance"
        }
    }

    fn on_ack(&mut self, sample: &AckSample) {
        if !sample.rtt.is_zero() {
            self.delay_min = self.delay_min.min(sample.rtt);
        }
        if self.in_recovery {
            return;
        }
        if self.in_slow_start() {
            self.hystart_update(sample);
            if self.in_slow_start() {
                self.cwnd += sample.acked as f64;
                return;
            }
        }
        let inc = self.cubic_increment(sample.now, sample.rtt, sample.acked);
        self.cwnd += inc;
    }

    fn on_loss_event(&mut self, _event: &LossEvent) {
        if self.in_recovery {
            return;
        }
        self.in_recovery = true;
        self.epoch_start = None;
        // Fast convergence: if we are reducing from below the previous
        // W_max, shrink W_max further to release share.
        if self.cwnd < self.w_max {
            self.w_max = self.cwnd * (2.0 - BETA) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.ssthresh = ((self.cwnd * BETA) as u64).max(MIN_CWND);
        self.cwnd = self.ssthresh as f64;
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        self.in_recovery = false;
    }

    fn on_rto(&mut self, _now: SimTime, _inflight: u64) {
        self.epoch_start = None;
        self.w_max = self.cwnd;
        self.ssthresh = ((self.cwnd * BETA) as u64).max(MIN_CWND);
        self.cwnd = 1.0;
        self.in_recovery = false;
        // Reset HyStart so the post-RTO slow start can exit again.
        self.hystart_found = false;
    }

    fn cwnd(&self) -> u64 {
        (self.cwnd as u64).max(1)
    }

    fn wants_pacing(&self) -> bool {
        false // The pacing-enabled Cubic of Fig. 6 is built via `Master`.
    }

    fn pacing_rate(&self) -> Option<Bandwidth> {
        None
    }

    fn model_cost_cycles(&self) -> u64 {
        700
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sample;
    use crate::AckSample;
    use sim_core::units::Bandwidth;

    fn drive_acks(c: &mut Cubic, start_ms: u64, n: u64, rtt_ms: u64) -> u64 {
        // Ack one window per RTT, n RTTs.
        let mut delivered = 0u64;
        for i in 0..n {
            let w = c.cwnd();
            delivered += w;
            c.on_ack(&AckSample {
                prior_delivered: delivered.saturating_sub(w),
                ..sample(start_ms + i * rtt_ms, rtt_ms, 500, delivered, w, 0)
            });
        }
        c.cwnd()
    }

    #[test]
    fn slow_start_doubles() {
        let mut c = Cubic::new();
        let w0 = c.cwnd();
        c.on_ack(&sample(10, 10, 100, w0, w0, 0));
        assert_eq!(c.cwnd(), 2 * w0);
    }

    #[test]
    fn loss_reduces_by_beta() {
        let mut c = Cubic::new();
        drive_acks(&mut c, 0, 4, 10);
        let before = c.cwnd();
        c.on_loss_event(&LossEvent {
            now: SimTime::from_millis(100),
            inflight: before,
            lost: 1,
        });
        let after = c.cwnd();
        assert_eq!(after, ((before as f64 * BETA) as u64).max(MIN_CWND));
        assert!(after < before);
    }

    #[test]
    fn one_reduction_per_recovery_episode() {
        let mut c = Cubic::new();
        drive_acks(&mut c, 0, 5, 10);
        c.on_loss_event(&LossEvent {
            now: SimTime::from_millis(100),
            inflight: 100,
            lost: 1,
        });
        let w = c.cwnd();
        c.on_loss_event(&LossEvent {
            now: SimTime::from_millis(101),
            inflight: 100,
            lost: 3,
        });
        assert_eq!(c.cwnd(), w);
    }

    #[test]
    fn cubic_growth_is_concave_then_convex() {
        // After a loss, growth should first decelerate towards W_max then
        // accelerate past it — the defining cubic shape. With W_max ≈ 160,
        // K = ((W_max − 0.7·W_max)/0.4)^⅓ ≈ 4.9 s, so sample 16 s of
        // 100 ms RTTs to see both sides of the inflection.
        let mut c = Cubic::new();
        drive_acks(&mut c, 0, 4, 10); // grow to 160
        let peak = c.cwnd();
        c.on_loss_event(&LossEvent {
            now: SimTime::from_millis(100),
            inflight: peak,
            lost: 1,
        });
        c.on_recovery_exit(SimTime::from_millis(110));

        // Sample the window every RTT for a while.
        let mut windows = Vec::new();
        let mut delivered = 10_000u64;
        for i in 0..160 {
            let w = c.cwnd();
            delivered += w;
            c.on_ack(&AckSample {
                prior_delivered: delivered - w,
                ..sample(120 + i * 100, 100, 500, delivered, w, 0)
            });
            windows.push(c.cwnd());
        }
        // Recovers towards the old peak...
        assert!(
            *windows.last().unwrap() > peak,
            "should eventually exceed W_max"
        );
        // ...and the early growth rate shrinks before it grows again
        // (concave → convex inflection near W_max).
        let early_growth = windows[5].saturating_sub(windows[0]);
        let late_growth = windows
            .last()
            .unwrap()
            .saturating_sub(windows[windows.len() - 6]);
        assert!(
            late_growth > early_growth,
            "convex tail {late_growth} vs concave head {early_growth}"
        );
    }

    #[test]
    fn hystart_exits_slow_start_on_delay_increase() {
        let mut c = Cubic::new();
        // Establish a baseline RTT of 10 ms.
        let mut delivered = 0u64;
        for i in 0..2 {
            let w = c.cwnd();
            delivered += w;
            c.on_ack(&AckSample {
                prior_delivered: delivered - w,
                ..sample(i * 10, 10, 500, delivered, w, 0)
            });
        }
        assert!(c.in_slow_start());
        // Now RTT jumps to 25 ms (queue building). HyStart needs 8 RTT
        // samples within one packet-timed round; emulate a 30-packet pipe
        // (round boundary every 30 acks) so a clean all-25 ms round occurs.
        for i in 0..90 {
            delivered += 1;
            c.on_ack(&AckSample {
                prior_delivered: delivered.saturating_sub(30),
                ..sample(100 + i, 25, 500, delivered, 1, 30)
            });
            if !c.in_slow_start() {
                break;
            }
        }
        assert!(!c.in_slow_start(), "HyStart should have exited slow start");
        // And the exit was HyStart, not loss: cwnd == ssthresh.
        assert_eq!(c.cwnd(), c.ssthresh());
    }

    #[test]
    fn hystart_does_not_fire_below_low_window() {
        let mut c = Cubic::new();
        // cwnd = 10 < 16: even a big delay jump must not exit slow start.
        let mut delivered = 0;
        for i in 0..10 {
            delivered += 1;
            c.on_ack(&AckSample {
                prior_delivered: delivered - 1,
                ..sample(i, if i == 0 { 10 } else { 50 }, 100, delivered, 1, 5)
            });
        }
        assert!(c.in_slow_start());
    }

    #[test]
    fn rto_resets_to_one_and_rearms_hystart() {
        let mut c = Cubic::new();
        drive_acks(&mut c, 0, 5, 10);
        c.on_rto(SimTime::from_millis(200), 50);
        assert_eq!(c.cwnd(), 1);
        assert!(c.in_slow_start());
        assert!(!c.hystart_found);
    }

    #[test]
    fn fast_convergence_shrinks_wmax_on_consecutive_losses() {
        let mut c = Cubic::new();
        drive_acks(&mut c, 0, 6, 10);
        c.on_loss_event(&LossEvent {
            now: SimTime::from_millis(100),
            inflight: 100,
            lost: 1,
        });
        c.on_recovery_exit(SimTime::from_millis(110));
        let w_max_1 = c.w_max;
        // Lose again before regaining the previous W_max.
        c.on_loss_event(&LossEvent {
            now: SimTime::from_millis(120),
            inflight: 50,
            lost: 1,
        });
        assert!(c.w_max < w_max_1, "fast convergence must shrink W_max");
    }

    #[test]
    fn no_pacing_and_modest_model_cost() {
        let c = Cubic::new();
        assert!(!c.wants_pacing());
        assert_eq!(c.pacing_rate(), None);
        assert!(c.model_cost_cycles() < 1_000);
        assert_eq!(c.bandwidth_estimate(), None::<Bandwidth>);
    }
}
