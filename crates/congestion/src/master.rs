//! The paper's "master BBR kernel module" (§5).
//!
//! > "we create a master BBR kernel module that allows us to control each
//! > of these three aspects. Our module lets us disable computation
//! > performed by the BBR model, set a custom cwnd value, enable/disable
//! > packet pacing, and set specific packet pacing rates."
//!
//! [`Master`] wraps any [`CongestionControl`] and applies exactly those
//! four knobs. The §5 experiments are all instances:
//!
//! * §5.1.1 — `fixed_cwnd: Some(70)`, `disable_model: true` over BBR;
//! * §5.1.2 — `fixed_pacing_rate: Some(…)` swept from 16 to 140 Mbps;
//! * §5.2.1 / Fig. 4–5 — `force_pacing: Some(false)` over BBR;
//! * §5.2.2 / Fig. 6 — `force_pacing: Some(true)` (+ optional fixed rate)
//!   over Cubic, which otherwise never paces.

use crate::{AckSample, CongestionControl, LossEvent};
use serde::{Deserialize, Serialize};
use sim_core::time::SimTime;
use sim_core::units::Bandwidth;

/// The master module's knobs. `Default` is a transparent pass-through.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MasterConfig {
    /// Pin the congestion window to this many packets.
    pub fixed_cwnd: Option<u64>,
    /// Pin the pacing rate (implies pacing on unless `force_pacing` says
    /// otherwise).
    pub fixed_pacing_rate: Option<u64>, // bps; Option<Bandwidth> is not Copy-friendly in serde
    /// Override the pacing decision: `Some(true)` forces pacing even for
    /// Cubic, `Some(false)` disables it even for BBR.
    pub force_pacing: Option<bool>,
    /// Disable the inner algorithm's model computation entirely: no state
    /// updates and zero per-ACK model cost (§5.1.1: "BBR does not run its
    /// main code logic").
    pub disable_model: bool,
}

impl MasterConfig {
    /// Transparent pass-through.
    pub fn passthrough() -> Self {
        Self::default()
    }

    /// §5.1.1: fixed cwnd with the model disabled.
    pub fn fixed_cwnd_no_model(cwnd: u64) -> Self {
        MasterConfig {
            fixed_cwnd: Some(cwnd),
            disable_model: true,
            ..Default::default()
        }
    }

    /// §5.1.2: fixed per-connection pacing rate.
    pub fn fixed_rate(rate: Bandwidth) -> Self {
        MasterConfig {
            fixed_pacing_rate: Some(rate.as_bps()),
            ..Default::default()
        }
    }

    /// §5.2.1: pacing disabled (cwnd-only control).
    pub fn pacing_off() -> Self {
        MasterConfig {
            force_pacing: Some(false),
            ..Default::default()
        }
    }

    /// §5.2.2: pacing force-enabled (for Cubic).
    pub fn pacing_on() -> Self {
        MasterConfig {
            force_pacing: Some(true),
            ..Default::default()
        }
    }

    /// §5.2.2 variant with a fixed rate (Fig. 6's 20/140 Mbps bars).
    pub fn pacing_on_at(rate: Bandwidth) -> Self {
        MasterConfig {
            force_pacing: Some(true),
            fixed_pacing_rate: Some(rate.as_bps()),
            ..Default::default()
        }
    }

    /// True if every knob is neutral.
    pub fn is_passthrough(&self) -> bool {
        *self == Self::default()
    }
}

/// A [`CongestionControl`] wrapped with [`MasterConfig`] overrides.
pub struct Master {
    inner: Box<dyn CongestionControl>,
    config: MasterConfig,
}

impl Master {
    /// Wrap `inner` with the given knobs.
    pub fn new(inner: Box<dyn CongestionControl>, config: MasterConfig) -> Self {
        Master { inner, config }
    }

    /// The active knob configuration.
    pub fn config(&self) -> &MasterConfig {
        &self.config
    }
}

impl CongestionControl for Master {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn phase(&self) -> &'static str {
        self.inner.phase()
    }

    fn on_ack(&mut self, sample: &AckSample) {
        if !self.config.disable_model {
            self.inner.on_ack(sample);
        }
    }

    fn on_loss_event(&mut self, event: &LossEvent) {
        if !self.config.disable_model {
            self.inner.on_loss_event(event);
        }
    }

    fn on_recovery_exit(&mut self, now: SimTime) {
        if !self.config.disable_model {
            self.inner.on_recovery_exit(now);
        }
    }

    fn on_rto(&mut self, now: SimTime, inflight: u64) {
        if !self.config.disable_model {
            self.inner.on_rto(now, inflight);
        }
    }

    fn cwnd(&self) -> u64 {
        self.config.fixed_cwnd.unwrap_or_else(|| self.inner.cwnd())
    }

    fn wants_pacing(&self) -> bool {
        self.config
            .force_pacing
            .unwrap_or_else(|| self.config.fixed_pacing_rate.is_some() || self.inner.wants_pacing())
    }

    fn pacing_rate(&self) -> Option<Bandwidth> {
        if !self.wants_pacing() {
            return None;
        }
        if let Some(bps) = self.config.fixed_pacing_rate {
            return Some(Bandwidth::from_bps(bps));
        }
        self.inner.pacing_rate()
    }

    fn model_cost_cycles(&self) -> u64 {
        if self.config.disable_model {
            0
        } else {
            self.inner.model_cost_cycles()
        }
    }

    fn bandwidth_estimate(&self) -> Option<Bandwidth> {
        self.inner.bandwidth_estimate()
    }

    fn ssthresh(&self) -> u64 {
        self.inner.ssthresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sample;
    use crate::CcKind;

    #[test]
    fn passthrough_is_transparent() {
        let mut m = Master::new(CcKind::Bbr.build(1448), MasterConfig::passthrough());
        let mut plain = CcKind::Bbr.build(1448);
        for i in 0..20 {
            let s = sample(i * 10, 10, 100, (i + 1) * 10, 10, 0);
            m.on_ack(&s);
            plain.on_ack(&s);
        }
        assert_eq!(m.cwnd(), plain.cwnd());
        assert_eq!(m.pacing_rate(), plain.pacing_rate());
        assert_eq!(m.model_cost_cycles(), plain.model_cost_cycles());
        assert_eq!(m.name(), "bbr");
    }

    #[test]
    fn fixed_cwnd_pins_window() {
        // §5.1: "We fix a cwnd value of 70 packets, similar to Cubic's
        // average cwnd for similar iPerf experiments".
        let mut m = Master::new(
            CcKind::Bbr.build(1448),
            MasterConfig::fixed_cwnd_no_model(70),
        );
        assert_eq!(m.cwnd(), 70);
        for i in 0..50 {
            m.on_ack(&sample(i * 10, 10, 100, (i + 1) * 100, 100, 0));
        }
        assert_eq!(m.cwnd(), 70, "cwnd immovable with the knob set");
    }

    #[test]
    fn disable_model_zeroes_cost_and_freezes_inner() {
        let mut m = Master::new(
            CcKind::Bbr.build(1448),
            MasterConfig::fixed_cwnd_no_model(70),
        );
        assert_eq!(m.model_cost_cycles(), 0, "§5.1.1: no compute when disabled");
        for i in 0..50 {
            m.on_ack(&sample(i * 10, 10, 100, (i + 1) * 100, 100, 0));
        }
        assert_eq!(m.bandwidth_estimate(), None, "inner model never ran");
    }

    #[test]
    fn fixed_rate_overrides_bbr_rate() {
        let rate = Bandwidth::from_mbps(140); // §5.1.2's parity point
        let mut m = Master::new(CcKind::Bbr.build(1448), MasterConfig::fixed_rate(rate));
        m.on_ack(&sample(10, 10, 100, 10, 10, 0));
        assert!(m.wants_pacing());
        assert_eq!(m.pacing_rate(), Some(rate));
    }

    #[test]
    fn pacing_off_silences_bbr_pacing() {
        let mut m = Master::new(CcKind::Bbr.build(1448), MasterConfig::pacing_off());
        m.on_ack(&sample(10, 10, 100, 10, 10, 0));
        assert!(!m.wants_pacing(), "Fig. 4: BBR with pacing disabled");
        assert_eq!(m.pacing_rate(), None);
        // The model still runs: cwnd control remains BBR's.
        assert!(m.bandwidth_estimate().is_some());
    }

    #[test]
    fn pacing_on_gives_cubic_internal_pacing() {
        let m = Master::new(CcKind::Cubic.build(1448), MasterConfig::pacing_on());
        assert!(m.wants_pacing(), "Fig. 6: Cubic with pacing enabled");
        // Cubic computes no rate; the stack will fall back to
        // mss·cwnd/srtt per §5.2.2.
        assert_eq!(m.pacing_rate(), None);
    }

    #[test]
    fn pacing_on_at_rate_pins_cubic_rate() {
        let rate = Bandwidth::from_mbps(20);
        let m = Master::new(CcKind::Cubic.build(1448), MasterConfig::pacing_on_at(rate));
        assert!(m.wants_pacing());
        assert_eq!(m.pacing_rate(), Some(rate));
    }

    #[test]
    fn fixed_rate_alone_implies_pacing() {
        let m = Master::new(
            CcKind::Cubic.build(1448),
            MasterConfig::fixed_rate(Bandwidth::from_mbps(20)),
        );
        assert!(
            m.wants_pacing(),
            "setting a rate without force_pacing still paces"
        );
    }

    #[test]
    fn knobs_can_be_lifted_mid_run() {
        // The §5.1.2 rate sweep re-creates connections per rate, but the
        // wrapper also behaves sanely if knobs change semantics: a fixed
        // rate must win over the inner rate even after the inner model has
        // converged.
        let mut m = Master::new(CcKind::Bbr.build(1448), MasterConfig::passthrough());
        for i in 1..40 {
            m.on_ack(&sample(i * 10, 10, 300, i * 50, 50, 0));
        }
        let inner_rate = m.pacing_rate().expect("bbr sets a rate");
        let pinned = Master::new(
            CcKind::Bbr.build(1448),
            MasterConfig::fixed_rate(Bandwidth::from_mbps(20)),
        );
        assert_eq!(pinned.pacing_rate(), Some(Bandwidth::from_mbps(20)));
        assert_ne!(inner_rate, Bandwidth::from_mbps(20));
    }

    #[test]
    fn disable_model_also_silences_loss_and_rto_paths() {
        use crate::LossEvent;
        use sim_core::time::SimTime;
        let mut m = Master::new(
            CcKind::Cubic.build(1448),
            MasterConfig::fixed_cwnd_no_model(70),
        );
        m.on_loss_event(&LossEvent {
            now: SimTime::from_millis(1),
            inflight: 50,
            lost: 10,
        });
        m.on_rto(SimTime::from_millis(2), 50);
        m.on_recovery_exit(SimTime::from_millis(3));
        assert_eq!(m.cwnd(), 70, "no knob-bypassing state change");
        assert_eq!(m.ssthresh(), u64::MAX, "inner ssthresh untouched");
    }

    #[test]
    fn passthrough_detection() {
        assert!(MasterConfig::passthrough().is_passthrough());
        assert!(!MasterConfig::pacing_off().is_passthrough());
        assert!(!MasterConfig::fixed_cwnd_no_model(70).is_passthrough());
    }
}
