//! BBR v3, per the IETF-117/119 iccrg updates — the revision Google
//! upstreamed as the successor of the `tcp_bbr2` alpha the paper's authors
//! backported (§3.1). Not part of the paper's measurement matrix (see
//! [`crate::CcKind::PAPER`]); it extends the reproduction toward the
//! follow-up question the related AQM/WiFi studies ask: does v3 fix v2's
//! rough edges against Cubic and under FQ-CoDel?
//!
//! v3 keeps v2's model (windowed-max bandwidth, windowed-min RTT, loss as a
//! bounding signal) and adjusts the knobs that measurement found to be
//! mis-tuned:
//!
//! * **shallower DOWN probe** — pacing gain 0.9 instead of 0.75: v2 drained
//!   far more than one round's worth of queue, giving away throughput on
//!   every cycle;
//! * **higher ProbeBW cwnd gain** — 2.25 instead of 2.0, letting the probe
//!   actually fill the raised ceiling it is testing;
//! * **bounded cruise** — CRUISE also ends after `CRUISE_MAX_ROUNDS` (62)
//!   rounds (not only on wall-clock), so short-RTT flows re-probe on a
//!   round timescale comparable to Reno/Cubic's and coexist instead of
//!   camping on a stale share;
//! * **measured loss response** — one ceiling adjustment per recovery
//!   episode, anchored at the inflight actually observed at the loss
//!   (`hi ← min(hi, max(measured, β·hi))`) rather than v2's unconditional
//!   β-cut on every loss event, which compounded within a single episode.
//!
//! Phase names are reported in v3's spelling (`probe_bw_down`, …), which is
//! how flight-data samples distinguish the variants.

use crate::minmax::MaxFilter;
use crate::{AckSample, CongestionControl, LossEvent, INIT_CWND, MIN_CWND};
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;

/// STARTUP pacing gain (unchanged from v2).
const STARTUP_GAIN: f64 = 2.77;
/// Loss rate that bounds a probe (2 %).
const LOSS_THRESH: f64 = 0.02;
/// Multiplicative floor of a per-episode ceiling adjustment.
const BETA: f64 = 0.7;
/// Fraction of `inflight_hi` used while cruising.
const HEADROOM: f64 = 0.85;
/// Bandwidth filter window, in rounds.
const BW_WINDOW_ROUNDS: u64 = 10;
/// Min-RTT window.
const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(5);
/// PROBE_RTT dwell.
const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);
/// Time between bandwidth probes while cruising.
const BW_PROBE_WAIT_BASE: SimDuration = SimDuration::from_secs(2);
/// STARTUP: rounds of ≥ LOSS_THRESH loss that force an exit.
const STARTUP_LOSS_ROUNDS: u32 = 3;
/// Cap on the UP phase, in rounds.
const PROBE_UP_ROUNDS: u64 = 4;
/// v3: CRUISE also ends after this many rounds, so short-RTT flows
/// re-probe on a Reno-comparable timescale (`bbr_bw_probe_max_rounds`).
const CRUISE_MAX_ROUNDS: u64 = 62;
/// v3's shallower DOWN probe.
const PROBE_DOWN_GAIN: f64 = 0.9;
/// v3's ProbeBW cwnd gain.
const PROBE_BW_CWND_GAIN: f64 = 2.25;

/// v3 state machine modes (same shape as v2's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Exponential search.
    Startup,
    /// Queue drain after startup.
    Drain,
    /// Pull inflight below the estimated BDP/ceiling.
    ProbeDown,
    /// Steady cruising with headroom.
    ProbeCruise,
    /// Refill the pipe at 1.0 gain before probing up.
    ProbeRefill,
    /// Probe for more bandwidth at 1.25 gain.
    ProbeUp,
    /// Re-measure propagation delay.
    ProbeRtt,
}

/// BBR v3.
pub struct Bbr3 {
    mss: u64,
    mode: Mode,
    // Model.
    bw_filter: MaxFilter,
    round_count: u64,
    next_rtt_delivered: u64,
    round_start: bool,
    min_rtt: SimDuration,
    min_rtt_stamp: SimTime,
    // Startup.
    full_bw: u64,
    full_bw_cnt: u32,
    full_bw_reached: bool,
    startup_loss_rounds: u32,
    // Loss bounds.
    inflight_hi: u64,
    /// v3: has the ceiling already been adjusted in this recovery episode?
    loss_in_episode: bool,
    // Per-round loss accounting.
    round_lost: u64,
    round_delivered: u64,
    // Probe scheduling.
    phase_stamp: SimTime,
    probe_wait: SimDuration,
    probe_up_rounds: u64,
    /// Round count at CRUISE entry (for the round-bounded cruise exit).
    cruise_round_mark: u64,
    // Probe RTT.
    probe_rtt_done_stamp: Option<SimTime>,
    // Outputs.
    pacing_rate: Bandwidth,
    cwnd: u64,
    prior_cwnd: u64,
    in_recovery: bool,
    packet_conservation: bool,
}

impl Bbr3 {
    /// A fresh BBR3 instance for `mss`-byte segments.
    pub fn new(mss: u64) -> Self {
        assert!(mss > 0, "mss must be positive");
        Bbr3 {
            mss,
            mode: Mode::Startup,
            bw_filter: MaxFilter::new(BW_WINDOW_ROUNDS),
            round_count: 0,
            next_rtt_delivered: 0,
            round_start: false,
            min_rtt: SimDuration::MAX,
            min_rtt_stamp: SimTime::ZERO,
            full_bw: 0,
            full_bw_cnt: 0,
            full_bw_reached: false,
            startup_loss_rounds: 0,
            inflight_hi: u64::MAX,
            loss_in_episode: false,
            round_lost: 0,
            round_delivered: 0,
            phase_stamp: SimTime::ZERO,
            probe_wait: BW_PROBE_WAIT_BASE,
            probe_up_rounds: 0,
            cruise_round_mark: 0,
            probe_rtt_done_stamp: None,
            pacing_rate: Bandwidth::ZERO,
            cwnd: INIT_CWND,
            prior_cwnd: 0,
            in_recovery: false,
            packet_conservation: false,
        }
    }

    /// Stagger the probe schedule across flows (deterministic analogue of
    /// the kernel's randomised 2–3 s wait).
    pub fn with_probe_offset(mut self, offset: usize) -> Self {
        let jitter_ms = (offset as u64 % 16) * 64; // 0..1024 ms
        self.probe_wait = BW_PROBE_WAIT_BASE + SimDuration::from_millis(jitter_ms);
        self
    }

    /// Current mode, for instrumentation and tests.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Loss-learned inflight ceiling (`None` until a probe hits loss).
    pub fn inflight_hi(&self) -> Option<u64> {
        (self.inflight_hi != u64::MAX).then_some(self.inflight_hi)
    }

    fn bw(&self) -> Bandwidth {
        Bandwidth::from_bps(self.bw_filter.get())
    }

    fn pacing_gain(&self) -> f64 {
        match self.mode {
            Mode::Startup => STARTUP_GAIN,
            Mode::Drain => 1.0 / STARTUP_GAIN,
            Mode::ProbeDown => PROBE_DOWN_GAIN,
            Mode::ProbeCruise | Mode::ProbeRefill => 1.0,
            Mode::ProbeUp => 1.25,
            Mode::ProbeRtt => 1.0,
        }
    }

    fn cwnd_gain(&self) -> f64 {
        match self.mode {
            Mode::Startup | Mode::Drain => 2.0,
            Mode::ProbeRtt => 0.5,
            // v3: ProbeBW runs the higher 2.25 gain so an UP probe can
            // actually fill the ceiling it raises.
            _ => PROBE_BW_CWND_GAIN,
        }
    }

    /// BDP target with the kernel's 3 × TSO-goal quantization slack (see
    /// `bbr::Bbr::target_cwnd`).
    fn bdp_packets(&self, gain: f64) -> u64 {
        if self.min_rtt == SimDuration::MAX || self.bw().is_zero() {
            return INIT_CWND;
        }
        let bdp_bytes = self.bw().bytes_in(self.min_rtt);
        ((bdp_bytes as f64 * gain / self.mss as f64).ceil() as u64 + 6).max(MIN_CWND)
    }

    fn update_round(&mut self, sample: &AckSample) {
        self.round_lost += sample.lost;
        self.round_delivered += sample.acked;
        if sample.prior_delivered >= self.next_rtt_delivered {
            self.next_rtt_delivered = sample.delivered;
            self.round_count += 1;
            self.round_start = true;
            self.packet_conservation = false;
        } else {
            self.round_start = false;
        }
    }

    /// Loss rate of the just-completed round, evaluated at round start.
    fn round_loss_rate(&self) -> f64 {
        let total = self.round_lost + self.round_delivered;
        if total == 0 {
            0.0
        } else {
            self.round_lost as f64 / total as f64
        }
    }

    fn reset_round_loss(&mut self) {
        self.round_lost = 0;
        self.round_delivered = 0;
    }

    fn update_bw(&mut self, sample: &AckSample) {
        if !sample.app_limited || sample.delivery_rate.as_bps() >= self.bw_filter.get() {
            self.bw_filter
                .update(self.round_count, sample.delivery_rate.as_bps());
        }
    }

    fn check_startup_done(&mut self, sample: &AckSample) {
        if self.full_bw_reached || self.mode != Mode::Startup {
            return;
        }
        if self.round_start && !sample.app_limited {
            // Bandwidth-plateau exit, as v1/v2.
            let thresh = (self.full_bw as f64 * 1.25) as u64;
            if self.bw_filter.get() >= thresh {
                self.full_bw = self.bw_filter.get();
                self.full_bw_cnt = 0;
            } else {
                self.full_bw_cnt += 1;
            }
            // Persistent-loss exit.
            if self.round_loss_rate() >= LOSS_THRESH {
                self.startup_loss_rounds += 1;
            } else {
                self.startup_loss_rounds = 0;
            }
            if self.full_bw_cnt >= 3 || self.startup_loss_rounds >= STARTUP_LOSS_ROUNDS {
                self.full_bw_reached = true;
                if self.startup_loss_rounds >= STARTUP_LOSS_ROUNDS {
                    // Loss-bounded exit also seeds the inflight ceiling.
                    self.inflight_hi = self.inflight_hi.min(sample.inflight.max(MIN_CWND));
                }
            }
        }
    }

    fn advance_state(&mut self, sample: &AckSample) {
        let now = sample.now;
        match self.mode {
            Mode::Startup => {
                if self.full_bw_reached {
                    self.mode = Mode::Drain;
                    self.phase_stamp = now;
                }
            }
            Mode::Drain => {
                if sample.inflight <= self.bdp_packets(1.0) {
                    self.enter_phase(Mode::ProbeDown, now);
                }
            }
            Mode::ProbeDown => {
                let target = self.cruise_cap();
                if sample.inflight <= target {
                    self.enter_phase(Mode::ProbeCruise, now);
                    self.cruise_round_mark = self.round_count;
                }
            }
            Mode::ProbeCruise => {
                // v3: re-probe on wall-clock *or* after 62 rounds, so a
                // short-RTT flow competing with Reno/Cubic probes on a
                // comparable round timescale.
                if now.saturating_since(self.phase_stamp) >= self.probe_wait
                    || self.round_count >= self.cruise_round_mark + CRUISE_MAX_ROUNDS
                {
                    self.enter_phase(Mode::ProbeRefill, now);
                    self.probe_up_rounds = self.round_count;
                }
            }
            Mode::ProbeRefill => {
                if self.round_start && self.round_count > self.probe_up_rounds {
                    self.enter_phase(Mode::ProbeUp, now);
                    self.probe_up_rounds = self.round_count;
                    // A new probe may raise the ceiling: allow growth.
                    self.reset_round_loss();
                }
            }
            Mode::ProbeUp => {
                if self.round_start {
                    if self.round_loss_rate() >= LOSS_THRESH {
                        // Loss bounded the probe: learn the ceiling and back off.
                        self.inflight_hi = sample.inflight.max(MIN_CWND);
                        self.enter_phase(Mode::ProbeDown, now);
                    } else if self.round_count >= self.probe_up_rounds + PROBE_UP_ROUNDS {
                        // Probe long enough without loss: raise the ceiling.
                        if self.inflight_hi != u64::MAX {
                            self.inflight_hi = ((self.inflight_hi as f64) * 1.25).ceil() as u64;
                        }
                        self.enter_phase(Mode::ProbeDown, now);
                    }
                }
            }
            Mode::ProbeRtt => { /* handled in check_probe_rtt */ }
        }
    }

    fn enter_phase(&mut self, mode: Mode, now: SimTime) {
        self.mode = mode;
        self.phase_stamp = now;
        if mode == Mode::ProbeDown || mode == Mode::ProbeUp {
            self.reset_round_loss();
        }
    }

    /// The inflight cap while cruising: 15 % headroom below the ceiling.
    fn cruise_cap(&self) -> u64 {
        if self.inflight_hi == u64::MAX {
            self.bdp_packets(1.0)
        } else {
            (((self.inflight_hi as f64) * HEADROOM) as u64).max(MIN_CWND)
        }
    }

    /// As in v1/v2 (and the kernel): the expiry decision is taken once,
    /// before the filter refresh, and drives both the refresh and
    /// PROBE_RTT entry.
    fn update_min_rtt_and_probe_rtt(&mut self, sample: &AckSample) {
        let expired = sample.now.saturating_since(self.min_rtt_stamp) > MIN_RTT_WINDOW;
        if !sample.rtt.is_zero() && (sample.rtt <= self.min_rtt || expired) {
            self.min_rtt = sample.rtt;
            self.min_rtt_stamp = sample.now;
        }
        self.check_probe_rtt(sample, expired);
    }

    fn check_probe_rtt(&mut self, sample: &AckSample, expired: bool) {
        if self.mode != Mode::ProbeRtt && expired {
            self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
            self.mode = Mode::ProbeRtt;
            self.probe_rtt_done_stamp = None;
        }
        if self.mode == Mode::ProbeRtt {
            let clamp = self.bdp_packets(0.5);
            match self.probe_rtt_done_stamp {
                None => {
                    if sample.inflight <= clamp {
                        self.probe_rtt_done_stamp = Some(sample.now + PROBE_RTT_DURATION);
                    }
                }
                Some(done) => {
                    if sample.now > done {
                        self.min_rtt_stamp = sample.now;
                        self.cwnd = self.cwnd.max(self.prior_cwnd);
                        self.enter_phase(Mode::ProbeDown, sample.now);
                    }
                }
            }
        }
    }

    fn set_pacing_rate(&mut self, sample: &AckSample) {
        let gain = self.pacing_gain();
        let rate = if self.bw().is_zero() {
            let rtt = if sample.rtt.is_zero() {
                SimDuration::from_millis(1)
            } else {
                sample.rtt
            };
            Bandwidth::from_bytes_over(self.cwnd * self.mss, rtt).mul_f64(gain)
        } else {
            self.bw().mul_f64(gain)
        };
        if self.full_bw_reached || rate > self.pacing_rate {
            self.pacing_rate = rate;
        }
    }

    fn set_cwnd(&mut self, sample: &AckSample) {
        let mut target = self.bdp_packets(self.cwnd_gain());
        // Loss-learned ceiling applies everywhere except the UP probe
        // itself (which is how the ceiling gets re-tested).
        let cap = match self.mode {
            Mode::ProbeUp | Mode::ProbeRefill => self.inflight_hi,
            Mode::ProbeRtt => self.bdp_packets(0.5),
            _ => self.cruise_cap().max(MIN_CWND),
        };
        if self.inflight_hi != u64::MAX || self.mode == Mode::ProbeRtt {
            target = target.min(cap);
        }
        if self.packet_conservation {
            self.cwnd = self.cwnd.max(sample.inflight + sample.acked);
        } else if self.full_bw_reached {
            self.cwnd = (self.cwnd + sample.acked).min(target);
        } else if self.cwnd < target || sample.delivered < INIT_CWND {
            self.cwnd += sample.acked;
        }
        self.cwnd = self.cwnd.max(MIN_CWND);
        if self.mode == Mode::ProbeRtt {
            self.cwnd = self.cwnd.min(self.bdp_packets(0.5));
        }
    }
}

impl CongestionControl for Bbr3 {
    fn name(&self) -> &'static str {
        "bbr3"
    }

    fn phase(&self) -> &'static str {
        match self.mode {
            Mode::Startup => "startup",
            Mode::Drain => "drain",
            Mode::ProbeDown => "probe_bw_down",
            Mode::ProbeCruise => "probe_bw_cruise",
            Mode::ProbeRefill => "probe_bw_refill",
            Mode::ProbeUp => "probe_bw_up",
            Mode::ProbeRtt => "probe_rtt",
        }
    }

    fn on_ack(&mut self, sample: &AckSample) {
        self.update_round(sample);
        self.update_bw(sample);
        self.check_startup_done(sample);
        self.advance_state(sample);
        self.update_min_rtt_and_probe_rtt(sample);
        self.set_pacing_rate(sample);
        self.set_cwnd(sample);
        if self.round_start {
            self.reset_round_loss();
        }
    }

    fn on_loss_event(&mut self, event: &LossEvent) {
        if !self.in_recovery {
            self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
            self.in_recovery = true;
            self.packet_conservation = true;
            self.loss_in_episode = false;
            self.cwnd = (event.inflight + 1).max(MIN_CWND);
        }
        // v3 loss response: one ceiling adjustment per recovery episode,
        // anchored at the inflight actually measured at the loss. v2's
        // per-event β-cut compounded within an episode and routinely
        // undershot the real ceiling.
        if !self.loss_in_episode && self.full_bw_reached {
            let measured = event.inflight.max(MIN_CWND);
            self.inflight_hi = if self.inflight_hi == u64::MAX {
                measured
            } else {
                self.inflight_hi
                    .min(measured.max(((self.inflight_hi as f64) * BETA) as u64))
                    .max(MIN_CWND)
            };
            self.loss_in_episode = true;
        }
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        if self.in_recovery {
            self.in_recovery = false;
            self.packet_conservation = false;
            self.loss_in_episode = false;
            self.cwnd = self
                .cwnd
                .max(self.prior_cwnd)
                .min(if self.inflight_hi == u64::MAX {
                    u64::MAX
                } else {
                    self.inflight_hi
                });
        }
    }

    fn on_rto(&mut self, _now: SimTime, _inflight: u64) {
        self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
        self.cwnd = MIN_CWND;
        self.packet_conservation = false;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn wants_pacing(&self) -> bool {
        true
    }

    fn pacing_rate(&self) -> Option<Bandwidth> {
        (!self.pacing_rate.is_zero()).then_some(self.pacing_rate)
    }

    fn model_cost_cycles(&self) -> u64 {
        // v3 adds episode tracking and the round-bounded cruise check on
        // top of v2's 4500-cycle model.
        4_800
    }

    fn bandwidth_estimate(&self) -> Option<Bandwidth> {
        (!self.bw().is_zero()).then_some(self.bw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AckSample;

    #[allow(clippy::too_many_arguments)]
    fn pipe_sample(
        now_ms: u64,
        rtt_ms: u64,
        rate_mbps: u64,
        delivered: u64,
        prior: u64,
        acked: u64,
        lost: u64,
        inflight: u64,
    ) -> AckSample {
        AckSample {
            now: SimTime::from_millis(now_ms),
            rtt: SimDuration::from_millis(rtt_ms),
            delivery_rate: Bandwidth::from_mbps(rate_mbps),
            delivered,
            prior_delivered: prior,
            acked,
            lost,
            inflight,
            app_limited: false,
            in_recovery: false,
        }
    }

    fn drive(b: &mut Bbr3, bw_mbps: u64, rtt_ms: u64, rounds: u64, start_ms: u64) -> (u64, u64) {
        let mut delivered = 0u64;
        let mut now = start_ms;
        for _ in 0..rounds {
            let w = b.cwnd();
            let prior = delivered;
            delivered += w;
            let offered = Bandwidth::from_bytes_over(w * 1448, SimDuration::from_millis(rtt_ms));
            let rate = offered.as_bps().min(Bandwidth::from_mbps(bw_mbps).as_bps()) / 1_000_000;
            b.on_ack(&pipe_sample(
                now,
                rtt_ms,
                rate.max(1),
                delivered,
                prior,
                w,
                0,
                0,
            ));
            now += rtt_ms;
        }
        (delivered, now)
    }

    #[test]
    fn startup_exits_on_plateau() {
        let mut b = Bbr3::new(1448);
        assert_eq!(b.mode(), Mode::Startup);
        drive(&mut b, 100, 20, 30, 0);
        assert_ne!(b.mode(), Mode::Startup);
        assert!(b.full_bw_reached);
    }

    #[test]
    fn converges_to_pipe_bandwidth() {
        let mut b = Bbr3::new(1448);
        drive(&mut b, 100, 20, 40, 0);
        let est = b.bandwidth_estimate().unwrap().as_mbps_f64();
        assert!((70.0..140.0).contains(&est), "estimate {est} Mbps");
    }

    #[test]
    fn v3_phase_names_are_reported() {
        let mut b = Bbr3::new(1448);
        assert_eq!(b.phase(), "startup");
        drive(&mut b, 100, 20, 40, 0);
        let mut seen = std::collections::BTreeSet::new();
        let mut delivered = 1_000_000u64;
        for i in 0..400 {
            let w = b.cwnd();
            let prior = delivered;
            delivered += w;
            b.on_ack(&pipe_sample(
                1_000 + i * 20,
                20,
                100,
                delivered,
                prior,
                w,
                0,
                w / 2,
            ));
            seen.insert(b.phase());
        }
        for phase in [
            "probe_bw_down",
            "probe_bw_cruise",
            "probe_bw_refill",
            "probe_bw_up",
        ] {
            assert!(
                seen.contains(phase),
                "ProbeBW cycle must visit {phase}: {seen:?}"
            );
        }
    }

    #[test]
    fn loss_response_anchors_at_measured_inflight() {
        // The defining v3 change: two separate recovery episodes with
        // losses at inflight 200 then 180 leave the ceiling at 180 — v2's
        // per-event β-cut would have compounded it down to 140.
        let mut b = Bbr3::new(1448);
        drive(&mut b, 100, 20, 40, 0);
        assert_eq!(b.inflight_hi(), None);
        b.on_loss_event(&LossEvent {
            now: SimTime::from_secs(2),
            inflight: 200,
            lost: 5,
        });
        assert_eq!(
            b.inflight_hi(),
            Some(200),
            "first episode seeds at measured"
        );
        b.on_recovery_exit(SimTime::from_secs(2));
        b.on_loss_event(&LossEvent {
            now: SimTime::from_secs(3),
            inflight: 180,
            lost: 5,
        });
        assert_eq!(
            b.inflight_hi(),
            Some(180),
            "second episode anchors at measured inflight, not β-compounded"
        );
    }

    #[test]
    fn loss_response_is_once_per_episode_and_beta_bounded() {
        let mut b = Bbr3::new(1448);
        drive(&mut b, 100, 20, 40, 0);
        b.on_loss_event(&LossEvent {
            now: SimTime::from_secs(2),
            inflight: 200,
            lost: 5,
        });
        // More losses within the same episode must not move the ceiling.
        b.on_loss_event(&LossEvent {
            now: SimTime::from_millis(2_010),
            inflight: 100,
            lost: 5,
        });
        assert_eq!(b.inflight_hi(), Some(200), "one adjustment per episode");
        b.on_recovery_exit(SimTime::from_millis(2_020));
        // A collapse to tiny inflight in the next episode is floored at
        // β × hi, not taken at face value.
        b.on_loss_event(&LossEvent {
            now: SimTime::from_secs(3),
            inflight: 10,
            lost: 5,
        });
        assert_eq!(
            b.inflight_hi(),
            Some(140),
            "cut floored at β=0.7 per episode"
        );
    }

    #[test]
    fn cruise_ends_after_round_cap_even_when_wall_clock_is_short() {
        // 1 ms RTT: 62 rounds elapse in 62 ms, far below the 2 s
        // wall-clock probe wait — only the v3 round cap can end CRUISE.
        let mut b = Bbr3::new(1448);
        drive(&mut b, 100, 1, 40, 0);
        b.on_loss_event(&LossEvent {
            now: SimTime::from_millis(50),
            inflight: 200,
            lost: 2,
        });
        b.on_recovery_exit(SimTime::from_millis(51));
        let mut saw_refill_at = None;
        let mut delivered = 1_000_000u64;
        let mut streak = 0u64;
        let mut longest_cruise = 0u64;
        for i in 0..200u64 {
            let w = b.cwnd();
            let prior = delivered;
            delivered += w;
            b.on_ack(&pipe_sample(60 + i, 1, 100, delivered, prior, w, 0, w / 2));
            if b.mode() == Mode::ProbeCruise {
                streak += 1;
                longest_cruise = longest_cruise.max(streak);
            } else {
                streak = 0;
            }
            if b.mode() == Mode::ProbeRefill && saw_refill_at.is_none() {
                saw_refill_at = Some(i);
            }
        }
        assert!(
            saw_refill_at.is_some(),
            "round-capped cruise must hand over to REFILL within 200 ms"
        );
        assert!(
            longest_cruise <= CRUISE_MAX_ROUNDS + 2,
            "one cruise held for {longest_cruise} rounds, cap is {CRUISE_MAX_ROUNDS}"
        );
    }

    #[test]
    fn probe_down_is_shallower_than_v2() {
        // Walk into ProbeBW and check the DOWN pacing gain: 0.9 × bw, where
        // v2 paces 0.75 × bw.
        let mut b = Bbr3::new(1448);
        drive(&mut b, 100, 20, 40, 0);
        let mut delivered = 1_000_000u64;
        for i in 0..400 {
            let w = b.cwnd();
            let prior = delivered;
            delivered += w;
            b.on_ack(&pipe_sample(
                1_000 + i * 20,
                20,
                100,
                delivered,
                prior,
                w,
                0,
                w,
            ));
            if b.mode() == Mode::ProbeDown {
                break;
            }
        }
        assert_eq!(b.mode(), Mode::ProbeDown, "must reach the DOWN probe");
        let bw = b.bandwidth_estimate().unwrap().as_bps() as f64;
        let pace = b.pacing_rate().unwrap().as_bps() as f64;
        let gain = pace / bw;
        assert!(
            (0.88..=0.92).contains(&gain),
            "v3 DOWN gain must be ~0.9, got {gain:.3}"
        );
    }

    #[test]
    fn cruise_keeps_headroom_below_ceiling() {
        let mut b = Bbr3::new(1448);
        drive(&mut b, 100, 20, 40, 0);
        b.on_loss_event(&LossEvent {
            now: SimTime::from_secs(2),
            inflight: 200,
            lost: 5,
        });
        b.on_recovery_exit(SimTime::from_secs(2));
        assert_eq!(b.cruise_cap(), 170, "85% of 200");
        drive(&mut b, 100, 20, 20, 3_000);
        if matches!(b.mode(), Mode::ProbeCruise | Mode::ProbeDown) {
            assert!(b.cwnd() <= 170, "cwnd {} must respect cruise cap", b.cwnd());
        }
    }

    #[test]
    fn probe_cycle_reaches_up_phase_and_raises_ceiling() {
        let mut b = Bbr3::new(1448);
        drive(&mut b, 100, 20, 40, 0);
        b.on_loss_event(&LossEvent {
            now: SimTime::from_secs(2),
            inflight: 200,
            lost: 2,
        });
        b.on_recovery_exit(SimTime::from_secs(2));
        let hi_before = b.inflight_hi().unwrap();
        let mut saw_up = false;
        let mut delivered = 1_000_000u64;
        for i in 0..400 {
            let w = b.cwnd();
            let prior = delivered;
            delivered += w;
            b.on_ack(&pipe_sample(
                2_100 + i * 20,
                20,
                100,
                delivered,
                prior,
                w,
                0,
                w / 2,
            ));
            if b.mode() == Mode::ProbeUp {
                saw_up = true;
            }
        }
        assert!(saw_up, "should have probed up within 8 s of cruising");
        assert!(
            b.inflight_hi().unwrap() > hi_before,
            "lossless UP probe should raise the ceiling: {:?} vs {hi_before}",
            b.inflight_hi()
        );
    }

    #[test]
    fn probe_rtt_visits_every_five_seconds() {
        let mut b = Bbr3::new(1448);
        drive(&mut b, 100, 20, 40, 0);
        let mut saw = false;
        let mut delivered = 1_000_000u64;
        for i in 0..400 {
            let prior = delivered;
            delivered += 10;
            b.on_ack(&pipe_sample(
                1_000 + i * 25,
                25,
                100,
                delivered,
                prior,
                10,
                0,
                2,
            ));
            if b.mode() == Mode::ProbeRtt {
                saw = true;
            }
        }
        assert!(
            saw,
            "min-RTT window is 5 s; a 10 s run must visit PROBE_RTT"
        );
    }

    #[test]
    fn ceiling_never_falls_below_min_cwnd() {
        let mut b = Bbr3::new(1448);
        drive(&mut b, 100, 20, 40, 0);
        for i in 0..50 {
            b.on_loss_event(&LossEvent {
                now: SimTime::from_millis(3_000 + i),
                inflight: 1,
                lost: 2,
            });
            b.on_recovery_exit(SimTime::from_millis(3_001 + i));
        }
        assert!(
            b.inflight_hi().unwrap() >= MIN_CWND,
            "episode cuts floor at MIN_CWND"
        );
        assert!(b.cwnd() >= MIN_CWND);
    }

    #[test]
    fn paces_and_costs_more_than_v2() {
        let b = Bbr3::new(1448);
        assert!(b.wants_pacing());
        assert!(b.model_cost_cycles() > crate::bbr2::Bbr2::new(1448).model_cost_cycles());
    }

    #[test]
    fn rto_floors_cwnd() {
        let mut b = Bbr3::new(1448);
        drive(&mut b, 100, 20, 40, 0);
        b.on_rto(SimTime::from_secs(2), 50);
        assert_eq!(b.cwnd(), MIN_CWND);
    }
}
