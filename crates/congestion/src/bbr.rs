//! BBR v1, after Linux's `tcp_bbr.c` (Cardwell et al., 2016).
//!
//! BBR estimates the path's bottleneck bandwidth (windowed max of delivery
//! rate over the last 10 packet-timed round trips) and propagation delay
//! (windowed min RTT over the last 10 s), and drives both a pacing rate
//! (`pacing_gain × btl_bw`) and a cwnd (`cwnd_gain × BDP`). §2 of the
//! paper summarises exactly this structure.
//!
//! The four-mode state machine matches the kernel module:
//!
//! * **STARTUP** — 2/ln 2 ≈ 2.885 gain until bandwidth stops growing
//!   (three rounds with < 25 % growth);
//! * **DRAIN** — inverse gain until inflight ≤ BDP;
//! * **PROBE_BW** — the eight-phase gain cycle `[1.25, 0.75, 1 × 6]`, one
//!   phase per min-RTT;
//! * **PROBE_RTT** — every 10 s, cwnd clamped to 4 packets for 200 ms to
//!   re-measure the propagation delay.
//!
//! Loss handling is v1's: losses do not feed the model; recovery applies
//! one round of packet conservation and then restores the prior cwnd —
//! the behaviour whose fairness problems motivated BBR2.

use crate::minmax::MaxFilter;
use crate::{AckSample, CongestionControl, LossEvent, INIT_CWND, MIN_CWND};
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;

/// STARTUP/DRAIN gain: 2/ln(2).
pub const HIGH_GAIN: f64 = 2.885;
/// DRAIN pacing gain.
pub const DRAIN_GAIN: f64 = 1.0 / HIGH_GAIN;
/// cwnd gain outside STARTUP.
pub const CWND_GAIN: f64 = 2.0;
/// The PROBE_BW pacing-gain cycle.
pub const PACING_GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Bandwidth filter window, in packet-timed rounds.
const BW_WINDOW_ROUNDS: u64 = 10;
/// Min-RTT filter window.
const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);
/// PROBE_RTT dwell time.
const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);
/// PROBE_RTT cwnd clamp, packets.
const PROBE_RTT_CWND: u64 = 4;
/// STARTUP exits when bw grows less than this factor…
const FULL_BW_THRESH: f64 = 1.25;
/// …for this many consecutive rounds.
const FULL_BW_CNT: u32 = 3;

/// The BBR state machine's mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Exponential bandwidth probing.
    Startup,
    /// Draining the startup queue.
    Drain,
    /// Steady-state bandwidth probing.
    ProbeBw,
    /// Propagation-delay re-measurement.
    ProbeRtt,
}

/// BBR v1.
pub struct Bbr {
    mss: u64,
    mode: Mode,
    // --- model ---
    bw_filter: MaxFilter, // bps keyed by round count
    round_count: u64,
    next_rtt_delivered: u64,
    round_start: bool,
    min_rtt: SimDuration,
    min_rtt_stamp: SimTime,
    // --- startup ---
    full_bw: u64,
    full_bw_cnt: u32,
    full_bw_reached: bool,
    // --- probe_bw ---
    cycle_idx: usize,
    cycle_stamp: SimTime,
    // --- probe_rtt ---
    probe_rtt_done_stamp: Option<SimTime>,
    probe_rtt_round_done: bool,
    // --- outputs ---
    pacing_rate: Bandwidth,
    cwnd: u64,
    // --- recovery ---
    prior_cwnd: u64,
    packet_conservation: bool,
    in_recovery: bool,
    // --- hot-path memos ---
    /// `(bw_bps, min_rtt_ns, gain bits) -> target_cwnd` memo. The model's
    /// inputs change once per round at most while the target is recomputed
    /// on every ACK; entries hold the exact integer result of the same
    /// 128-bit + float computation, so hits are bit-identical to a recompute.
    target_memo: (u64, u64, u64, u64),
    /// `(bw_bps, gain bits) -> paced rate bps` memo for the steady-state
    /// branch of `set_pacing_rate` (same exactness argument).
    pace_memo: (u64, u64, u64),
}

impl Bbr {
    /// A fresh BBR instance for `mss`-byte segments.
    pub fn new(mss: u64) -> Self {
        assert!(mss > 0, "mss must be positive");
        Bbr {
            mss,
            mode: Mode::Startup,
            bw_filter: MaxFilter::new(BW_WINDOW_ROUNDS),
            round_count: 0,
            next_rtt_delivered: 0,
            round_start: false,
            min_rtt: SimDuration::MAX,
            min_rtt_stamp: SimTime::ZERO,
            full_bw: 0,
            full_bw_cnt: 0,
            full_bw_reached: false,
            cycle_idx: 0,
            cycle_stamp: SimTime::ZERO,
            probe_rtt_done_stamp: None,
            probe_rtt_round_done: false,
            pacing_rate: Bandwidth::ZERO,
            cwnd: INIT_CWND,
            prior_cwnd: 0,
            packet_conservation: false,
            in_recovery: false,
            target_memo: (u64::MAX, 0, 0, 0),
            pace_memo: (u64::MAX, 0, 0),
        }
    }

    /// Stagger the PROBE_BW gain cycle's starting phase (the kernel
    /// randomises it so concurrent flows don't probe in lock-step; the
    /// iperf runner passes the flow index).
    pub fn with_cycle_offset(mut self, offset: usize) -> Self {
        self.cycle_idx = 2 + offset % (PACING_GAIN_CYCLE.len() - 2);
        self
    }

    /// Current mode, for instrumentation and tests.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Current windowed-max bandwidth estimate.
    fn bw(&self) -> Bandwidth {
        Bandwidth::from_bps(self.bw_filter.get())
    }

    /// Current min-RTT estimate (`None` before the first sample).
    pub fn min_rtt(&self) -> Option<SimDuration> {
        (self.min_rtt != SimDuration::MAX).then_some(self.min_rtt)
    }

    fn pacing_gain(&self) -> f64 {
        match self.mode {
            Mode::Startup => HIGH_GAIN,
            Mode::Drain => DRAIN_GAIN,
            Mode::ProbeBw => PACING_GAIN_CYCLE[self.cycle_idx],
            Mode::ProbeRtt => 1.0,
        }
    }

    fn cwnd_gain(&self) -> f64 {
        match self.mode {
            Mode::Startup | Mode::Drain => HIGH_GAIN,
            Mode::ProbeBw => CWND_GAIN,
            Mode::ProbeRtt => 1.0,
        }
    }

    /// BDP in packets under `gain`, or the initial window before the model
    /// has both a bandwidth and an RTT sample.
    ///
    /// As in `bbr_target_cwnd`, a slack of 3 × TSO-goal segments is added
    /// on top of the BDP: without it, ack/segment quantization at small
    /// BDPs caps inflight below the pacing rate and the flow wedges below
    /// its fair share.
    fn target_cwnd(&mut self, gain: f64) -> u64 {
        if self.min_rtt == SimDuration::MAX || self.bw().is_zero() {
            return INIT_CWND;
        }
        let key = (
            self.bw_filter.get(),
            self.min_rtt.as_nanos(),
            gain.to_bits(),
        );
        if (self.target_memo.0, self.target_memo.1, self.target_memo.2) == key {
            return self.target_memo.3;
        }
        let bdp_bytes = self.bw().bytes_in(self.min_rtt);
        let packets = (bdp_bytes as f64 * gain / self.mss as f64).ceil() as u64;
        let target = (packets + 6).max(MIN_CWND);
        self.target_memo = (key.0, key.1, key.2, target);
        target
    }

    fn update_round(&mut self, sample: &AckSample) {
        if sample.prior_delivered >= self.next_rtt_delivered {
            self.next_rtt_delivered = sample.delivered;
            self.round_count += 1;
            self.round_start = true;
            self.packet_conservation = false;
        } else {
            self.round_start = false;
        }
    }

    fn update_bw(&mut self, sample: &AckSample) {
        // App-limited samples only count if they beat the current max
        // (they prove at least that much capacity exists).
        if !sample.app_limited || sample.delivery_rate.as_bps() >= self.bw_filter.get() {
            self.bw_filter
                .update(self.round_count, sample.delivery_rate.as_bps());
        }
    }

    fn check_full_bw_reached(&mut self, sample: &AckSample) {
        if self.full_bw_reached || !self.round_start || sample.app_limited {
            return;
        }
        let thresh = (self.full_bw as f64 * FULL_BW_THRESH) as u64;
        if self.bw_filter.get() >= thresh {
            self.full_bw = self.bw_filter.get();
            self.full_bw_cnt = 0;
            return;
        }
        self.full_bw_cnt += 1;
        self.full_bw_reached = self.full_bw_cnt >= FULL_BW_CNT;
    }

    fn check_drain(&mut self, sample: &AckSample) {
        if self.mode == Mode::Startup && self.full_bw_reached {
            self.mode = Mode::Drain;
        }
        if self.mode == Mode::Drain && sample.inflight <= self.target_cwnd(1.0) {
            self.enter_probe_bw(sample.now);
        }
    }

    fn enter_probe_bw(&mut self, now: SimTime) {
        self.mode = Mode::ProbeBw;
        self.cycle_stamp = now;
        // Kernel picks a random phase excluding 0.75; we keep whatever
        // `with_cycle_offset` established, skipping the DOWN phase.
        if self.cycle_idx == 1 {
            self.cycle_idx = 2;
        }
    }

    fn update_cycle_phase(&mut self, sample: &AckSample) {
        if self.mode != Mode::ProbeBw {
            return;
        }
        let gain = PACING_GAIN_CYCLE[self.cycle_idx];
        let min_rtt = if self.min_rtt == SimDuration::MAX {
            SimDuration::from_millis(10)
        } else {
            self.min_rtt
        };
        let elapsed = sample.now.saturating_since(self.cycle_stamp) > min_rtt;
        let advance = if gain > 1.0 {
            // Keep probing until we've actually filled the pipe (or lost).
            elapsed && (sample.lost > 0 || sample.inflight >= self.target_cwnd(gain))
        } else if gain < 1.0 {
            // Leave the drain phase early once the queue is gone.
            elapsed || sample.inflight <= self.target_cwnd(1.0)
        } else {
            elapsed
        };
        if advance {
            self.cycle_idx = (self.cycle_idx + 1) % PACING_GAIN_CYCLE.len();
            self.cycle_stamp = sample.now;
        }
    }

    /// Kernel `bbr_update_min_rtt`: the expiry decision is taken *once*,
    /// before the filter refresh, and drives both the refresh and the
    /// PROBE_RTT entry (refreshing first would mask the expiry forever).
    fn update_min_rtt_and_probe_rtt(&mut self, sample: &AckSample) {
        let expired = sample.now.saturating_since(self.min_rtt_stamp) > MIN_RTT_WINDOW;
        if !sample.rtt.is_zero() && (sample.rtt <= self.min_rtt || expired) {
            self.min_rtt = sample.rtt;
            self.min_rtt_stamp = sample.now;
        }
        self.check_probe_rtt(sample, expired);
    }

    fn check_probe_rtt(&mut self, sample: &AckSample, expired: bool) {
        if self.mode != Mode::ProbeRtt && expired {
            self.mode = Mode::ProbeRtt;
            self.save_cwnd();
            self.probe_rtt_done_stamp = None;
        }
        if self.mode == Mode::ProbeRtt {
            self.handle_probe_rtt(sample);
        }
    }

    fn handle_probe_rtt(&mut self, sample: &AckSample) {
        match self.probe_rtt_done_stamp {
            None => {
                if sample.inflight <= PROBE_RTT_CWND {
                    self.probe_rtt_done_stamp = Some(sample.now + PROBE_RTT_DURATION);
                    self.probe_rtt_round_done = false;
                    self.next_rtt_delivered = sample.delivered;
                }
            }
            Some(done) => {
                if self.round_start {
                    self.probe_rtt_round_done = true;
                }
                if self.probe_rtt_round_done && sample.now > done {
                    self.min_rtt_stamp = sample.now;
                    self.restore_cwnd();
                    self.mode = if self.full_bw_reached {
                        self.enter_probe_bw(sample.now);
                        Mode::ProbeBw
                    } else {
                        Mode::Startup
                    };
                }
            }
        }
    }

    fn set_pacing_rate(&mut self, sample: &AckSample) {
        let gain = self.pacing_gain();
        let rate = if self.bw().is_zero() {
            // Before the first bandwidth sample: pace from cwnd/RTT (kernel
            // `bbr_init_pacing_rate_from_rtt`).
            let rtt = if sample.rtt.is_zero() {
                SimDuration::from_millis(1)
            } else {
                sample.rtt
            };
            Bandwidth::from_bytes_over(self.cwnd * self.mss, rtt).mul_f64(gain)
        } else {
            let key = (self.bw_filter.get(), gain.to_bits());
            if (self.pace_memo.0, self.pace_memo.1) == key {
                Bandwidth::from_bps(self.pace_memo.2)
            } else {
                let rate = self.bw().mul_f64(gain);
                self.pace_memo = (key.0, key.1, rate.as_bps());
                rate
            }
        };
        // Never decrease the rate before the pipe is known full (kernel
        // keeps startup's rate floor until `full_bw_reached`).
        if self.full_bw_reached || rate > self.pacing_rate {
            self.pacing_rate = rate;
        }
    }

    fn save_cwnd(&mut self) {
        self.prior_cwnd = if !self.in_recovery && self.mode != Mode::ProbeRtt {
            self.cwnd
        } else {
            self.prior_cwnd.max(self.cwnd)
        };
    }

    fn restore_cwnd(&mut self) {
        self.cwnd = self.cwnd.max(self.prior_cwnd);
    }

    fn set_cwnd(&mut self, sample: &AckSample) {
        let target = self.target_cwnd(self.cwnd_gain());
        if self.packet_conservation {
            // First round of recovery: hold inflight constant.
            self.cwnd = self.cwnd.max(sample.inflight + sample.acked);
        } else if self.full_bw_reached {
            self.cwnd = (self.cwnd + sample.acked).min(target);
        } else if self.cwnd < target || sample.delivered < INIT_CWND {
            self.cwnd += sample.acked;
        }
        self.cwnd = self.cwnd.max(MIN_CWND);
        if self.mode == Mode::ProbeRtt {
            self.cwnd = self.cwnd.min(PROBE_RTT_CWND);
        }
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn phase(&self) -> &'static str {
        match self.mode {
            Mode::Startup => "startup",
            Mode::Drain => "drain",
            Mode::ProbeBw => "probe_bw",
            Mode::ProbeRtt => "probe_rtt",
        }
    }

    fn on_ack(&mut self, sample: &AckSample) {
        self.update_round(sample);
        self.update_bw(sample);
        self.check_full_bw_reached(sample);
        self.check_drain(sample);
        self.update_cycle_phase(sample);
        self.update_min_rtt_and_probe_rtt(sample);
        self.set_pacing_rate(sample);
        self.set_cwnd(sample);
    }

    fn on_loss_event(&mut self, event: &LossEvent) {
        if !self.in_recovery {
            self.save_cwnd();
            self.in_recovery = true;
            // Packet conservation for the rest of this round; `update_round`
            // clears the flag at the next round start (kernel behaviour).
            self.packet_conservation = true;
            self.cwnd = (event.inflight + 1).max(MIN_CWND);
        }
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        if self.in_recovery {
            self.in_recovery = false;
            self.packet_conservation = false;
            self.restore_cwnd();
        }
    }

    fn on_rto(&mut self, _now: SimTime, _inflight: u64) {
        self.save_cwnd();
        self.cwnd = MIN_CWND;
        self.packet_conservation = false;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn wants_pacing(&self) -> bool {
        true
    }

    fn pacing_rate(&self) -> Option<Bandwidth> {
        (!self.pacing_rate.is_zero()).then_some(self.pacing_rate)
    }

    fn model_cost_cycles(&self) -> u64 {
        3_800
    }

    fn bandwidth_estimate(&self) -> Option<Bandwidth> {
        (!self.bw().is_zero()).then_some(self.bw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AckSample;

    /// Drive BBR against an ideal fixed-capacity pipe: `bw_mbps` capacity,
    /// `rtt_ms` propagation, acking one cwnd per RTT. Returns the instance.
    fn drive_ideal_pipe(
        bbr: &mut Bbr,
        bw_mbps: u64,
        rtt_ms: u64,
        rounds: u64,
        start_ms: u64,
    ) -> u64 {
        let mut delivered = 0u64;
        let mut now_ms = start_ms;
        for _ in 0..rounds {
            let w = bbr.cwnd();
            let prior = delivered;
            delivered += w;
            // The pipe delivers at most its capacity; delivery rate is
            // min(send rate, capacity). Send rate ≈ cwnd/rtt.
            let offered = Bandwidth::from_bytes_over(w * 1448, SimDuration::from_millis(rtt_ms));
            let rate = offered.as_bps().min(Bandwidth::from_mbps(bw_mbps).as_bps());
            // Queue builds if offered > capacity → RTT inflates.
            let rtt_actual = if offered.as_bps() > rate {
                rtt_ms + (rtt_ms * (offered.as_bps() - rate)) / rate.max(1)
            } else {
                rtt_ms
            };
            bbr.on_ack(&AckSample {
                now: SimTime::from_millis(now_ms),
                rtt: SimDuration::from_millis(rtt_actual),
                delivery_rate: Bandwidth::from_bps(rate),
                delivered,
                prior_delivered: prior,
                acked: w,
                lost: 0,
                inflight: 0,
                app_limited: false,
                in_recovery: false,
            });
            now_ms += rtt_actual.max(1);
        }
        now_ms
    }

    #[test]
    fn starts_in_startup_with_high_gain() {
        let bbr = Bbr::new(1448);
        assert_eq!(bbr.mode(), Mode::Startup);
        assert!((bbr.pacing_gain() - HIGH_GAIN).abs() < 1e-9);
        assert_eq!(bbr.cwnd(), INIT_CWND);
    }

    #[test]
    fn startup_exits_when_bw_plateaus() {
        let mut bbr = Bbr::new(1448);
        drive_ideal_pipe(&mut bbr, 100, 20, 25, 0);
        assert_ne!(bbr.mode(), Mode::Startup, "should have left startup");
        assert!(bbr.full_bw_reached);
    }

    #[test]
    fn converges_to_pipe_bandwidth() {
        let mut bbr = Bbr::new(1448);
        drive_ideal_pipe(&mut bbr, 100, 20, 40, 0);
        let est = bbr
            .bandwidth_estimate()
            .expect("has estimate")
            .as_mbps_f64();
        assert!(
            (80.0..130.0).contains(&est),
            "bw estimate {est} Mbps, want ~100"
        );
    }

    #[test]
    fn min_rtt_tracks_propagation_delay() {
        let mut bbr = Bbr::new(1448);
        drive_ideal_pipe(&mut bbr, 100, 20, 40, 0);
        let mrtt = bbr.min_rtt().expect("has min rtt");
        assert_eq!(mrtt, SimDuration::from_millis(20));
    }

    #[test]
    fn probe_bw_cwnd_is_about_two_bdp() {
        let mut bbr = Bbr::new(1448);
        drive_ideal_pipe(&mut bbr, 100, 20, 60, 0);
        assert_eq!(bbr.mode(), Mode::ProbeBw);
        // BDP = 100 Mbps × 20 ms = 250 KB ≈ 172 packets; cwnd_gain 2 → ~345.
        let bdp_packets = 100_000_000u64 / 8 * 20 / 1000 / 1448;
        let cwnd = bbr.cwnd();
        assert!(
            cwnd >= bdp_packets && cwnd <= 3 * bdp_packets,
            "cwnd {cwnd} vs bdp {bdp_packets}"
        );
    }

    #[test]
    fn pacing_rate_tracks_gain_cycle() {
        let mut bbr = Bbr::new(1448);
        drive_ideal_pipe(&mut bbr, 100, 20, 60, 0);
        assert_eq!(bbr.mode(), Mode::ProbeBw);
        let bw = bbr.bandwidth_estimate().unwrap();
        let rate = bbr.pacing_rate().unwrap();
        let gain = rate.as_bps() as f64 / bw.as_bps() as f64;
        assert!(
            (0.7..=1.3).contains(&gain),
            "pacing gain {gain} outside cycle range"
        );
    }

    #[test]
    fn probe_rtt_entered_after_min_rtt_window() {
        let mut bbr = Bbr::new(1448);
        // Converge, then run past the 10 s window with a *higher* RTT so
        // the min never refreshes.
        drive_ideal_pipe(&mut bbr, 100, 20, 40, 0);
        let mut saw_probe_rtt = false;
        let mut delivered = 100_000u64;
        for i in 0..600 {
            let now = SimTime::from_millis(1_000 + i * 25);
            let prior = delivered;
            delivered += bbr.cwnd().max(1);
            bbr.on_ack(&AckSample {
                now,
                rtt: SimDuration::from_millis(25),
                delivery_rate: Bandwidth::from_mbps(100),
                delivered,
                prior_delivered: prior,
                acked: bbr.cwnd().max(1),
                lost: 0,
                inflight: 2, // low inflight so PROBE_RTT can begin its dwell
                app_limited: false,
                in_recovery: false,
            });
            if bbr.mode() == Mode::ProbeRtt {
                saw_probe_rtt = true;
                assert!(bbr.cwnd() <= PROBE_RTT_CWND, "cwnd must clamp in PROBE_RTT");
            }
        }
        assert!(saw_probe_rtt, "should enter PROBE_RTT after 10 s");
        assert_ne!(bbr.mode(), Mode::ProbeRtt, "and leave it after 200 ms");
    }

    #[test]
    fn loss_event_conserves_then_restores() {
        let mut bbr = Bbr::new(1448);
        drive_ideal_pipe(&mut bbr, 100, 20, 60, 0);
        let before = bbr.cwnd();
        bbr.on_loss_event(&LossEvent {
            now: SimTime::from_secs(3),
            inflight: before / 2,
            lost: 3,
        });
        assert!(
            bbr.cwnd() <= before / 2 + 1,
            "conservation cuts to inflight+1"
        );
        bbr.on_recovery_exit(SimTime::from_secs(4));
        assert_eq!(bbr.cwnd(), before, "prior cwnd restored after recovery");
    }

    #[test]
    fn loss_does_not_change_bandwidth_model() {
        // v1's defining behaviour: the bw estimate ignores loss.
        let mut bbr = Bbr::new(1448);
        drive_ideal_pipe(&mut bbr, 100, 20, 60, 0);
        let bw_before = bbr.bandwidth_estimate().unwrap();
        bbr.on_loss_event(&LossEvent {
            now: SimTime::from_secs(3),
            inflight: 100,
            lost: 50,
        });
        assert_eq!(bbr.bandwidth_estimate().unwrap(), bw_before);
    }

    #[test]
    fn rto_floors_cwnd() {
        let mut bbr = Bbr::new(1448);
        drive_ideal_pipe(&mut bbr, 100, 20, 60, 0);
        bbr.on_rto(SimTime::from_secs(3), 10);
        assert_eq!(bbr.cwnd(), MIN_CWND);
    }

    #[test]
    fn app_limited_samples_cannot_deflate_model() {
        let mut bbr = Bbr::new(1448);
        drive_ideal_pipe(&mut bbr, 100, 20, 40, 0);
        let bw_before = bbr.bandwidth_estimate().unwrap();
        // A slow app-limited sample must be ignored…
        let mut s = AckSample {
            now: SimTime::from_secs(2),
            rtt: SimDuration::from_millis(20),
            delivery_rate: Bandwidth::from_mbps(1),
            delivered: 200_000,
            prior_delivered: 199_000,
            acked: 10,
            lost: 0,
            inflight: 10,
            app_limited: true,
            in_recovery: false,
        };
        bbr.on_ack(&s);
        assert!(bbr.bandwidth_estimate().unwrap() >= bw_before);
        // …but a *fast* app-limited sample still counts.
        s.delivery_rate = Bandwidth::from_mbps(500);
        s.delivered += 10;
        s.prior_delivered += 10;
        bbr.on_ack(&s);
        assert_eq!(bbr.bandwidth_estimate().unwrap(), Bandwidth::from_mbps(500));
    }

    #[test]
    fn gain_cycle_visits_probe_and_drain_phases() {
        let mut bbr = Bbr::new(1448);
        let end = drive_ideal_pipe(&mut bbr, 100, 20, 60, 0);
        assert_eq!(bbr.mode(), Mode::ProbeBw);
        // Walk several cycles; record distinct gains.
        let mut gains = std::collections::BTreeSet::new();
        let mut delivered = 1_000_000u64;
        for i in 0..64 {
            let prior = delivered;
            delivered += 100;
            let inflight = bbr.target_cwnd(1.3); // enough to satisfy the 1.25 phase
            bbr.on_ack(&AckSample {
                now: SimTime::from_millis(end + i * 21),
                rtt: SimDuration::from_millis(20),
                delivery_rate: Bandwidth::from_mbps(100),
                delivered,
                prior_delivered: prior,
                acked: 100,
                lost: 0,
                inflight,
                app_limited: false,
                in_recovery: false,
            });
            gains.insert((bbr.pacing_gain() * 100.0) as u64);
        }
        assert!(
            gains.contains(&125),
            "must visit the 1.25 probe phase: {gains:?}"
        );
        assert!(
            gains.contains(&75),
            "must visit the 0.75 drain phase: {gains:?}"
        );
        assert!(gains.contains(&100), "must cruise at 1.0: {gains:?}");
    }

    #[test]
    fn cycle_offset_staggers_flows() {
        let a = Bbr::new(1448).with_cycle_offset(0);
        let b = Bbr::new(1448).with_cycle_offset(3);
        assert_ne!(a.cycle_idx, b.cycle_idx);
        // Offsets never start a flow in the 0.75 drain phase.
        for k in 0..16 {
            let c = Bbr::new(1448).with_cycle_offset(k);
            assert_ne!(c.cycle_idx, 1);
        }
    }

    #[test]
    fn initial_pacing_rate_derived_from_first_rtt() {
        let mut bbr = Bbr::new(1448);
        assert_eq!(bbr.pacing_rate(), None, "no rate before any sample");
        bbr.on_ack(&AckSample {
            now: SimTime::from_millis(20),
            rtt: SimDuration::from_millis(20),
            delivery_rate: Bandwidth::from_mbps(5),
            delivered: 10,
            prior_delivered: 0,
            acked: 10,
            lost: 0,
            inflight: 0,
            app_limited: false,
            in_recovery: false,
        });
        let rate = bbr.pacing_rate().expect("rate set after first ack");
        assert!(
            rate >= Bandwidth::from_mbps(5),
            "at least the measured bw, got {rate}"
        );
    }
}
