//! Per-algorithm share accounting for multi-CC fleets.
//!
//! When heterogeneous congestion controls compete on one bottleneck
//! (*Should BBR be the default TCP Congestion Control Protocol?* frames CC
//! choice as exactly this population question), "is the outcome fair?" has
//! to be asked twice: within each algorithm's cohort, and between cohorts.
//! [`GroupShares`] collects per-member rates keyed by [`CcKind`] and hands
//! them back in a fixed algorithm order, so fairness indices computed over
//! the groups are independent of the order devices were recorded in.

use crate::CcKind;

/// Fixed reporting order for CC groups — [`CcKind::ALL`], the declaration
/// order, so group output is stable no matter how a fleet is shuffled and
/// new controllers join the accounting automatically.
pub const GROUP_ORDER: [CcKind; 5] = CcKind::ALL;

/// Accumulates one rate per fleet member, grouped by congestion control.
///
/// ```
/// use congestion::group::GroupShares;
/// use congestion::CcKind;
///
/// let mut shares = GroupShares::new();
/// shares.record(CcKind::Bbr, 10.0);
/// shares.record(CcKind::Cubic, 4.0);
/// shares.record(CcKind::Bbr, 12.0);
/// let groups: Vec<_> = shares.groups().collect();
/// assert_eq!(groups[0].0, CcKind::Cubic); // fixed order, not insertion
/// assert_eq!(groups[1].1, &[10.0, 12.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GroupShares {
    buckets: [Vec<f64>; GROUP_ORDER.len()],
}

impl GroupShares {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one member's rate under its algorithm's group.
    pub fn record(&mut self, cc: CcKind, rate: f64) {
        self.buckets[Self::slot(cc)].push(rate);
    }

    /// Iterate non-empty groups in [`GROUP_ORDER`]; within a group, rates
    /// keep their recording order (per-device order in fleet runs).
    pub fn groups(&self) -> impl Iterator<Item = (CcKind, &[f64])> + '_ {
        GROUP_ORDER
            .iter()
            .zip(&self.buckets)
            .filter(|(_, rates)| !rates.is_empty())
            .map(|(&cc, rates)| (cc, rates.as_slice()))
    }

    /// Members recorded across all groups.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }

    fn slot(cc: CcKind) -> usize {
        GROUP_ORDER
            .iter()
            .position(|&k| k == cc)
            .expect("GROUP_ORDER covers every CcKind")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_come_back_in_fixed_order() {
        let mut shares = GroupShares::new();
        shares.record(CcKind::Bbr2, 1.0);
        shares.record(CcKind::Reno, 2.0);
        shares.record(CcKind::Bbr2, 3.0);
        let kinds: Vec<CcKind> = shares.groups().map(|(cc, _)| cc).collect();
        assert_eq!(kinds, vec![CcKind::Reno, CcKind::Bbr2]);
        assert_eq!(shares.len(), 3);
    }

    #[test]
    fn insertion_order_within_group_is_preserved() {
        let mut shares = GroupShares::new();
        for (i, rate) in [5.0, 1.0, 9.0].into_iter().enumerate() {
            shares.record(CcKind::Cubic, rate);
            assert_eq!(shares.len(), i + 1);
        }
        let (_, rates) = shares.groups().next().expect("one group");
        assert_eq!(rates, &[5.0, 1.0, 9.0]);
    }

    #[test]
    fn empty_reports_no_groups() {
        let shares = GroupShares::new();
        assert!(shares.is_empty());
        assert_eq!(shares.groups().count(), 0);
    }
}
