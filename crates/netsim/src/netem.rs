//! `tc netem`-style impairments.
//!
//! The paper's testbed sets network conditions on the OpenWRT router with
//! Linux traffic control (§3.2: "Our network setup also allows network
//! conditions to be set on the OpenWRT router using Linux traffic control
//! (tc)"). This module reproduces the knobs the paper uses or implies:
//! i.i.d. packet loss, added delay with jitter, a rate limiter, and simple
//! reordering. Impairments are evaluated *before* the bottleneck queue,
//! matching a qdisc stacked in front of the device.

use serde::{Deserialize, Serialize};
use sim_core::rng::SimRng;
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;

/// Configuration mirroring `tc qdisc add ... netem ...`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NetemConfig {
    /// i.i.d. drop probability (`loss p%`).
    pub loss: f64,
    /// Fixed extra one-way delay (`delay T`).
    pub delay: SimDuration,
    /// Uniform jitter amplitude: actual extra delay is
    /// `delay ± U(0, jitter)` clamped at zero (`delay T J`).
    pub jitter: SimDuration,
    /// Optional token-bucket rate limit (`rate R`): packets are additionally
    /// delayed so the long-run rate through the netem stage is ≤ R.
    pub rate_limit: Option<Bandwidth>,
    /// Probability a packet is held back by `reorder_gap` (crude `reorder`).
    pub reorder: f64,
    /// Extra delay applied to reordered packets.
    pub reorder_gap: SimDuration,
}

impl NetemConfig {
    /// No impairment (the paper's default: "results are presented without
    /// any network conditions being set by tc, unless otherwise specified").
    pub fn none() -> Self {
        Self::default()
    }

    /// Pure loss.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss = p;
        self
    }

    /// Fixed delay with optional jitter.
    pub fn with_delay(mut self, delay: SimDuration, jitter: SimDuration) -> Self {
        self.delay = delay;
        self.jitter = jitter;
        self
    }

    /// Rate limit.
    pub fn with_rate(mut self, rate: Bandwidth) -> Self {
        assert!(!rate.is_zero(), "netem rate limit must be positive");
        self.rate_limit = Some(rate);
        self
    }

    /// True if this config does nothing.
    pub fn is_noop(&self) -> bool {
        self.loss == 0.0
            && self.delay.is_zero()
            && self.jitter.is_zero()
            && self.rate_limit.is_none()
            && self.reorder == 0.0
    }
}

/// Verdict for one packet offered to the netem stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetemVerdict {
    /// Forward the packet to the next stage no earlier than `release`.
    Pass {
        /// Earliest time the next stage may see the packet.
        release: SimTime,
    },
    /// netem dropped the packet.
    Drop,
}

/// Stateful netem instance (owns its RNG stream and rate-limiter clock).
pub struct Netem {
    config: NetemConfig,
    rng: SimRng,
    /// Virtual finish time of the rate limiter.
    rate_busy_until: SimTime,
    drops: u64,
    passed: u64,
}

impl Netem {
    /// Build a netem stage with its own RNG stream.
    pub fn new(config: NetemConfig, rng: SimRng) -> Self {
        Netem {
            config,
            rng,
            rate_busy_until: SimTime::ZERO,
            drops: 0,
            passed: 0,
        }
    }

    /// Offer a packet of `wire_bytes` at `now`.
    pub fn process(&mut self, now: SimTime, wire_bytes: u64) -> NetemVerdict {
        if self.config.loss > 0.0 && self.rng.chance(self.config.loss) {
            self.drops += 1;
            return NetemVerdict::Drop;
        }
        let mut release = now + self.config.delay;
        if !self.config.jitter.is_zero() {
            let j = self.rng.below(self.config.jitter.as_nanos() + 1);
            release += SimDuration::from_nanos(j);
        }
        if self.config.reorder > 0.0 && self.rng.chance(self.config.reorder) {
            release += self.config.reorder_gap;
        }
        if let Some(rate) = self.config.rate_limit {
            let start = if self.rate_busy_until > release {
                self.rate_busy_until
            } else {
                release
            };
            let done = start + rate.time_to_send(wire_bytes);
            self.rate_busy_until = done;
            release = done;
        }
        self.passed += 1;
        NetemVerdict::Pass { release }
    }

    /// Packets dropped by this stage.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Packets passed by this stage.
    pub fn passed(&self) -> u64 {
        self.passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn noop_config_passes_immediately() {
        let mut n = Netem::new(NetemConfig::none(), SimRng::new(1));
        let t = SimTime::from_millis(3);
        match n.process(t, 1514) {
            NetemVerdict::Pass { release } => assert_eq!(release, t),
            NetemVerdict::Drop => panic!("noop must pass"),
        }
        assert!(NetemConfig::none().is_noop());
    }

    #[test]
    fn fixed_delay_shifts_release() {
        let cfg = NetemConfig::none().with_delay(SimDuration::from_millis(10), SimDuration::ZERO);
        let mut n = Netem::new(cfg, SimRng::new(1));
        match n.process(SimTime::ZERO, 100) {
            NetemVerdict::Pass { release } => assert_eq!(release, SimTime::from_millis(10)),
            NetemVerdict::Drop => panic!(),
        }
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let cfg = NetemConfig::none()
            .with_delay(SimDuration::from_millis(5), SimDuration::from_millis(2));
        let mut a = Netem::new(cfg.clone(), SimRng::new(9));
        let mut b = Netem::new(cfg, SimRng::new(9));
        for i in 0..200 {
            let t = SimTime::from_millis(i);
            let (ra, rb) = (a.process(t, 100), b.process(t, 100));
            assert_eq!(ra, rb);
            if let NetemVerdict::Pass { release } = ra {
                let extra = release - t;
                assert!(extra >= SimDuration::from_millis(5));
                assert!(extra <= SimDuration::from_millis(7));
            }
        }
    }

    #[test]
    fn loss_rate_statistically_correct() {
        let cfg = NetemConfig::none().with_loss(0.15); // smoltcp's suggested starting value
        let mut n = Netem::new(cfg, SimRng::new(4));
        let total = 20_000;
        for i in 0..total {
            n.process(SimTime::from_micros(i), 1514);
        }
        let rate = n.drops() as f64 / total as f64;
        assert!((rate - 0.15).abs() < 0.01, "observed loss {rate}");
        assert_eq!(n.drops() + n.passed(), total);
    }

    #[test]
    fn rate_limit_spaces_packets() {
        // 8 Mbps limit, 1000-byte packets → 1 ms per packet.
        let cfg = NetemConfig::none().with_rate(Bandwidth::from_mbps(8));
        let mut n = Netem::new(cfg, SimRng::new(1));
        let mut releases = Vec::new();
        for _ in 0..5 {
            if let NetemVerdict::Pass { release } = n.process(SimTime::ZERO, 1000) {
                releases.push(release);
            }
        }
        for w in releases.windows(2) {
            assert_eq!(w[1] - w[0], SimDuration::from_millis(1));
        }
    }

    #[test]
    fn rate_limit_idle_period_does_not_accumulate_burst() {
        let cfg = NetemConfig::none().with_rate(Bandwidth::from_mbps(8));
        let mut n = Netem::new(cfg, SimRng::new(1));
        n.process(SimTime::ZERO, 1000);
        // Long idle, then a packet: passes with only its own serialisation.
        let late = SimTime::from_secs(1);
        match n.process(late, 1000) {
            NetemVerdict::Pass { release } => {
                assert_eq!(release, late + SimDuration::from_millis(1));
            }
            NetemVerdict::Drop => panic!(),
        }
    }

    #[test]
    fn reorder_adds_gap_to_some_packets() {
        let cfg = NetemConfig {
            reorder: 0.5,
            reorder_gap: SimDuration::from_millis(3),
            ..NetemConfig::none()
        };
        let mut n = Netem::new(cfg, SimRng::new(2));
        let mut delayed = 0;
        let total = 1000;
        for i in 0..total {
            if let NetemVerdict::Pass { release } = n.process(SimTime::from_millis(i), 100) {
                if release > SimTime::from_millis(i) {
                    delayed += 1;
                }
            }
        }
        assert!(
            (400..600).contains(&delayed),
            "roughly half delayed, got {delayed}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_loss_rejected() {
        NetemConfig::none().with_loss(1.5);
    }

    proptest! {
        /// Release times never precede the offer time.
        #[test]
        fn prop_release_never_in_past(
            seed in any::<u64>(),
            loss in 0.0f64..0.5,
            delay_us in 0u64..10_000,
            jitter_us in 0u64..5_000,
        ) {
            let cfg = NetemConfig::none()
                .with_loss(loss)
                .with_delay(SimDuration::from_micros(delay_us), SimDuration::from_micros(jitter_us));
            let mut n = Netem::new(cfg, SimRng::new(seed));
            for i in 0..100u64 {
                let t = SimTime::from_micros(i * 37);
                if let NetemVerdict::Pass { release } = n.process(t, 1000) {
                    prop_assert!(release >= t + SimDuration::from_micros(delay_us));
                }
            }
        }

        /// The rate limiter's long-run throughput never exceeds the limit.
        #[test]
        fn prop_rate_limit_enforced(mbps in 1u64..100, npkts in 10u64..200) {
            let rate = Bandwidth::from_mbps(mbps);
            let cfg = NetemConfig::none().with_rate(rate);
            let mut n = Netem::new(cfg, SimRng::new(7));
            let size = 1514u64;
            let mut last_release = SimTime::ZERO;
            for _ in 0..npkts {
                if let NetemVerdict::Pass { release } = n.process(SimTime::ZERO, size) {
                    last_release = release;
                }
            }
            // npkts × size bytes in `last_release` time ⇒ rate ≤ limit.
            let achieved = Bandwidth::from_bytes_over(npkts * size, last_release - SimTime::ZERO);
            prop_assert!(achieved.as_bps() <= rate.as_bps() + rate.as_bps() / 100);
        }
    }
}
