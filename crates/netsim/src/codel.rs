//! CoDel active queue management (RFC 8289).
//!
//! The paper's bufferbloat observations — unpaced senders inflating RTT
//! through a droptail queue (Fig. 7), device-side backlog on slow CPUs —
//! are exactly the problem CoDel was designed for, and `fq_codel` is the
//! default qdisc on much of Android/OpenWRT today. The ablation suite uses
//! this to ask how the paper's story changes under an AQM: unpaced bursts
//! get their queue clipped (RTT controlled, loss instead of delay), while
//! paced traffic sails through untouched.
//!
//! Implementation note: the bottleneck link is analytic (departure times
//! are computed at enqueue), so the CoDel control law is evaluated at
//! enqueue time against the packet's *prospective sojourn* — equivalent to
//! the dequeue-time law for FIFO service, since sojourn is known exactly.

use serde::{Deserialize, Serialize};
use sim_core::time::{SimDuration, SimTime};

/// CoDel parameters (RFC 8289 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodelConfig {
    /// Acceptable standing-queue delay (default 5 ms).
    pub target: SimDuration,
    /// Sliding window in which sojourn must exceed `target` before the
    /// first drop (default 100 ms — an RTT-scale interval).
    pub interval: SimDuration,
}

impl Default for CodelConfig {
    fn default() -> Self {
        CodelConfig {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
        }
    }
}

/// The CoDel controller state machine.
///
/// ```
/// use netsim::codel::{Codel, CodelConfig};
/// use sim_core::time::{SimDuration, SimTime};
///
/// let mut codel = Codel::new(CodelConfig::default());
/// // Low sojourn: never drops.
/// assert!(!codel.should_drop(SimTime::from_millis(1), SimDuration::from_millis(2)));
/// ```
#[derive(Debug, Clone)]
pub struct Codel {
    config: CodelConfig,
    /// Time at which sojourn first went above target (0 = not above).
    first_above: Option<SimTime>,
    /// In the dropping state?
    dropping: bool,
    /// Next scheduled drop while in the dropping state.
    drop_next: SimTime,
    /// Drops in the current dropping episode (control-law divisor); kept
    /// across episodes for the RFC's faster re-entry.
    count: u32,
    drops: u64,
}

impl Codel {
    /// A controller with the given parameters.
    pub fn new(config: CodelConfig) -> Self {
        assert!(!config.target.is_zero(), "target must be positive");
        assert!(
            config.interval > config.target,
            "interval must exceed target"
        );
        Codel {
            config,
            first_above: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            count: 0,
            drops: 0,
        }
    }

    /// Total drops so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// RFC 8289 control law: the next drop comes `interval / √count` after
    /// the previous one.
    fn control_law(&self, from: SimTime) -> SimTime {
        let div = (self.count.max(1) as f64).sqrt();
        from + SimDuration::from_nanos((self.config.interval.as_nanos() as f64 / div) as u64)
    }

    /// Offer a packet observed at `now` with queueing `sojourn`; returns
    /// `true` if CoDel drops it.
    pub fn should_drop(&mut self, now: SimTime, sojourn: SimDuration) -> bool {
        // Track whether we are persistently above target.
        let above = sojourn > self.config.target;
        let ok_to_drop = if !above {
            self.first_above = None;
            false
        } else {
            match self.first_above {
                None => {
                    self.first_above = Some(now + self.config.interval);
                    false
                }
                Some(due) => now >= due,
            }
        };

        if self.dropping {
            if !ok_to_drop {
                // Sojourn came back down: leave the dropping state.
                self.dropping = false;
                return false;
            }
            if now >= self.drop_next {
                self.count += 1;
                self.drops += 1;
                self.drop_next = self.control_law(self.drop_next);
                return true;
            }
            false
        } else if ok_to_drop {
            // Enter the dropping state. RFC 8289: if we were dropping
            // recently, resume at a higher count for a faster ramp.
            self.dropping = true;
            self.count = if self.count > 2 && now < self.drop_next + self.config.interval {
                self.count - 2
            } else {
                1
            };
            self.drops += 1;
            self.drop_next = self.control_law(now);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codel() -> Codel {
        Codel::new(CodelConfig::default())
    }

    #[test]
    fn low_delay_traffic_never_dropped() {
        let mut c = codel();
        for i in 0..10_000u64 {
            let now = SimTime::from_micros(i * 100);
            assert!(!c.should_drop(now, SimDuration::from_millis(2)));
        }
        assert_eq!(c.drops(), 0);
    }

    #[test]
    fn transient_spike_tolerated() {
        let mut c = codel();
        // 50 ms of above-target sojourn — shorter than the 100 ms interval.
        for i in 0..50u64 {
            let now = SimTime::from_millis(i);
            assert!(!c.should_drop(now, SimDuration::from_millis(20)));
        }
        // Back below target: still nothing dropped.
        assert!(!c.should_drop(SimTime::from_millis(51), SimDuration::from_millis(1)));
        assert_eq!(c.drops(), 0);
    }

    #[test]
    fn persistent_bloat_starts_dropping_after_interval() {
        let mut c = codel();
        let mut first_drop = None;
        for i in 0..300u64 {
            let now = SimTime::from_millis(i);
            if c.should_drop(now, SimDuration::from_millis(30)) && first_drop.is_none() {
                first_drop = Some(i);
            }
        }
        let at = first_drop.expect("persistent bloat must trigger drops");
        assert!(
            (100..=110).contains(&at),
            "first drop near the 100 ms interval, got {at}"
        );
        assert!(c.drops() > 1, "dropping continues under persistent bloat");
    }

    #[test]
    fn drop_rate_accelerates_with_persistence() {
        let mut c = codel();
        let mut drop_times = Vec::new();
        for i in 0..5_000u64 {
            let now = SimTime::from_micros(i * 500); // 2.5 s total
            if c.should_drop(now, SimDuration::from_millis(50)) {
                drop_times.push(now);
            }
        }
        assert!(drop_times.len() >= 8, "sustained bloat: many drops");
        // Control law: inter-drop gaps shrink as 1/√count.
        let early_gap = drop_times[1] - drop_times[0];
        let late = drop_times.len() - 1;
        let late_gap = drop_times[late] - drop_times[late - 1];
        assert!(
            late_gap < early_gap,
            "gaps must shrink: early {early_gap}, late {late_gap}"
        );
    }

    #[test]
    fn recovery_exits_dropping_state() {
        let mut c = codel();
        for i in 0..200u64 {
            c.should_drop(SimTime::from_millis(i), SimDuration::from_millis(30));
        }
        assert!(c.drops() > 0);
        let before = c.drops();
        // Queue drains: no more drops even over a long horizon.
        for i in 200..1_000u64 {
            assert!(!c.should_drop(SimTime::from_millis(i), SimDuration::from_millis(1)));
        }
        assert_eq!(c.drops(), before);
    }

    #[test]
    fn reentry_ramps_faster() {
        let mut c = codel();
        // First episode.
        for i in 0..400u64 {
            c.should_drop(SimTime::from_millis(i), SimDuration::from_millis(30));
        }
        let first_episode = c.drops();
        assert!(first_episode >= 3);
        // Brief recovery…
        for i in 400..420u64 {
            c.should_drop(SimTime::from_millis(i), SimDuration::from_millis(1));
        }
        // …then bloat again: the second episode must reach its second drop
        // faster than 100 ms (count resumed > 1).
        let mut drops_in_second = Vec::new();
        for i in 420..620u64 {
            if c.should_drop(SimTime::from_millis(i), SimDuration::from_millis(30)) {
                drops_in_second.push(i);
            }
        }
        assert!(drops_in_second.len() >= 2);
        let gap = drops_in_second[1] - drops_in_second[0];
        assert!(
            gap < 100,
            "re-entry control law must be faster, gap {gap} ms"
        );
    }

    #[test]
    #[should_panic(expected = "interval must exceed target")]
    fn invalid_config_rejected() {
        Codel::new(CodelConfig {
            target: SimDuration::from_millis(100),
            interval: SimDuration::from_millis(5),
        });
    }
}
