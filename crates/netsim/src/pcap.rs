//! Classic-format pcap writing (and reading, for tests).
//!
//! Every smoltcp example ships a `--pcap` flag and this reproduction does
//! the same: `tcp_sim::SimConfig::pcap` dumps each simulated wire packet
//! as a synthesized Ethernet/IPv4/TCP frame, so a run can be opened in
//! Wireshark and the pacing cadence inspected visually.
//!
//! The format is the classic libpcap one: a 24-byte global header (magic
//! `0xa1b2c3d4`, microsecond timestamps, LINKTYPE_ETHERNET) followed by
//! 16-byte per-record headers.

use sim_core::time::SimTime;
use std::io::{self, Read, Write};

/// LINKTYPE_ETHERNET.
pub const LINKTYPE_EN10MB: u32 = 1;

/// A pcap stream writer over any `io::Write`.
pub struct PcapWriter<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&0xa1b2_c3d4u32.to_le_bytes())?; // magic (µs)
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_EN10MB.to_le_bytes())?;
        Ok(PcapWriter { out, records: 0 })
    }

    /// Append one frame captured at simulated time `at`.
    pub fn write_frame(&mut self, at: SimTime, frame: &[u8]) -> io::Result<()> {
        let us = at.as_nanos() / 1_000;
        let (sec, usec) = ((us / 1_000_000) as u32, (us % 1_000_000) as u32);
        self.out.write_all(&sec.to_le_bytes())?;
        self.out.write_all(&usec.to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(frame)?;
        self.records += 1;
        Ok(())
    }

    /// Frames written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// One record read back from a pcap stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp.
    pub at: SimTime,
    /// The frame bytes.
    pub frame: Vec<u8>,
}

/// Read an entire classic pcap stream (test utility / trace analysis).
pub fn read_pcap<R: Read>(mut input: R) -> io::Result<(u32, Vec<PcapRecord>)> {
    let mut global = [0u8; 24];
    input.read_exact(&mut global)?;
    let magic = u32::from_le_bytes(global[0..4].try_into().expect("4 bytes"));
    if magic != 0xa1b2_c3d4 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad pcap magic"));
    }
    let linktype = u32::from_le_bytes(global[20..24].try_into().expect("4 bytes"));
    let mut records = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        match input.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let sec = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")) as u64;
        let usec = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes")) as u64;
        let caplen = u32::from_le_bytes(rec[8..12].try_into().expect("4 bytes")) as usize;
        let mut frame = vec![0u8; caplen];
        input.read_exact(&mut frame)?;
        records.push(PcapRecord {
            at: SimTime::from_nanos(sec * 1_000_000_000 + usec * 1_000),
            frame,
        });
    }
    Ok((linktype, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty_capture() {
        let buf = PcapWriter::new(Vec::new()).unwrap().finish().unwrap();
        assert_eq!(buf.len(), 24);
        let (linktype, records) = read_pcap(&buf[..]).unwrap();
        assert_eq!(linktype, LINKTYPE_EN10MB);
        assert!(records.is_empty());
    }

    #[test]
    fn roundtrip_frames_with_timestamps() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(SimTime::from_micros(1_500), &[1, 2, 3])
            .unwrap();
        w.write_frame(SimTime::from_secs(2), &[0xAA; 60]).unwrap();
        assert_eq!(w.records(), 2);
        let buf = w.finish().unwrap();
        let (_, records) = read_pcap(&buf[..]).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].frame, vec![1, 2, 3]);
        assert_eq!(records[0].at, SimTime::from_micros(1_500));
        assert_eq!(records[1].at, SimTime::from_secs(2));
        assert_eq!(records[1].frame.len(), 60);
    }

    #[test]
    fn bad_magic_rejected() {
        let garbage = [0u8; 24];
        assert!(read_pcap(&garbage[..]).is_err());
    }

    #[test]
    fn microsecond_truncation_is_consistent() {
        // Sub-microsecond sim times truncate to the µs grid — the pcap
        // format's resolution, not a data bug.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(SimTime::from_nanos(1_999), &[9]).unwrap();
        let buf = w.finish().unwrap();
        let (_, records) = read_pcap(&buf[..]).unwrap();
        assert_eq!(records[0].at, SimTime::from_micros(1));
    }
}
