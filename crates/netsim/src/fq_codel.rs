//! FQ-CoDel: per-flow CoDel buckets with DRR-approximate fair sharing
//! (RFC 8290) — the default qdisc on Android and OpenWRT, and the AQM the
//! related BBRv3/WiFi measurement studies evaluate BBR variants under.
//!
//! The bottleneck link stays analytic (global FIFO service, departures
//! computed at enqueue — see [`crate::link`]), so flow queueing is modelled
//! where it matters for the drop decision rather than in the service order:
//!
//! * each flow hashes to one of [`NUM_BUCKETS`] buckets, each owning its
//!   own [`Codel`] controller and a *virtual DRR backlog*: accepted bytes
//!   accumulate in the flow's bucket and drain at the bucket's deficit
//!   round-robin share of the link rate (`rate / active_buckets`), exactly
//!   as a real fq_codel scheduler would serve them — independently of
//!   where the packets sit in the link's physical FIFO;
//! * a packet's sojourn estimate rescales the link's exact FIFO sojourn by
//!   the bucket's share of the virtual backlog: `fifo_sojourn × own ×
//!   active / total`. A lone flow owns the whole backlog (ratio 1), so
//!   one-flow FQ-CoDel is drop-for-drop identical to plain CoDel; a sparse
//!   flow's bucket drains at fair share far faster than it refills, so its
//!   backlog — and hence its sojourn — stays ~0 and it is never dropped;
//!   an over-filled bucket waits proportionally longer than FIFO;
//! * the bucket's CoDel judges that estimate, so a bulk flow standing in
//!   its own queue gets clipped while a sparse flow sails through —
//!   FQ-CoDel's signature isolation property.
//!
//! The droptail packet cap of the host link still applies globally before
//! the AQM (the physical queue is shared); the AQM's `× active` sojourn
//! inflation makes it bite well before droptail under closed-loop traffic.

use crate::codel::{Codel, CodelConfig};
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;

/// Number of flow buckets (the Linux default is 1024; 64 keeps the state
/// small while making same-bucket collisions unlikely at the simulator's
/// connection counts).
pub const NUM_BUCKETS: usize = 64;

struct Bucket {
    codel: Codel,
    backlog_bytes: u64,
}

/// The FQ-CoDel controller: per-bucket CoDel + virtual DRR backlog.
pub struct FqCodel {
    buckets: Vec<Bucket>,
    /// Buckets with a non-zero backlog.
    active: usize,
    /// Total virtual backlog bytes across all buckets.
    total_backlog: u64,
    /// When the virtual DRR server last ran.
    last_drain: SimTime,
    /// Sub-share bytes left over by integer division in the last drain.
    carry: u64,
    drops: u64,
}

impl FqCodel {
    /// A controller whose buckets all run CoDel with `config` parameters.
    pub fn new(config: CodelConfig) -> Self {
        FqCodel {
            buckets: (0..NUM_BUCKETS)
                .map(|_| Bucket {
                    codel: Codel::new(config),
                    backlog_bytes: 0,
                })
                .collect(),
            active: 0,
            total_backlog: 0,
            last_drain: SimTime::ZERO,
            carry: 0,
            drops: 0,
        }
    }

    /// Total AQM drops so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Deterministic flow → bucket hash (Fibonacci multiplicative hashing;
    /// connection ids are small consecutive integers, which this spreads
    /// uniformly over the buckets).
    fn bucket_of(flow: u64) -> usize {
        (flow.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize % NUM_BUCKETS
    }

    /// Run the virtual DRR server up to `now`: the bytes the link served
    /// since the last call are split evenly over the active buckets, with
    /// shares unused by buckets that empty redistributed to the rest (DRR
    /// work conservation). `rate` is the link's current rate; for
    /// variable-rate links the instantaneous rate stands in for the whole
    /// elapsed window, an approximation on the channel's coherence scale.
    fn drain(&mut self, now: SimTime, rate: Bandwidth) {
        let elapsed = now.saturating_since(self.last_drain);
        self.last_drain = now;
        if self.active == 0 {
            // An idle scheduler banks nothing (the link head-of-line is
            // other traffic or silence either way).
            self.carry = 0;
            return;
        }
        let mut budget = self.carry + rate.bytes_in(elapsed);
        while budget > 0 && self.active > 0 {
            let share = budget / self.active as u64;
            if share == 0 {
                break;
            }
            for b in &mut self.buckets {
                if b.backlog_bytes == 0 {
                    continue;
                }
                let take = share.min(b.backlog_bytes);
                b.backlog_bytes -= take;
                self.total_backlog -= take;
                budget -= take;
                if b.backlog_bytes == 0 {
                    self.active -= 1;
                }
            }
        }
        // Whatever the integer division left over waits for the next round.
        self.carry = if self.active == 0 { 0 } else { budget };
    }

    /// Should the packet `flow` offers at `now` be dropped? `fifo_sojourn`
    /// is the link's exact queueing delay at the offer instant and `rate`
    /// its current service rate; the flow's DRR fair-share estimate
    /// rescales the FIFO sojourn by `own × active / total`.
    pub fn should_drop(
        &mut self,
        now: SimTime,
        flow: u64,
        fifo_sojourn: SimDuration,
        rate: Bandwidth,
    ) -> bool {
        self.drain(now, rate);
        let bucket = Self::bucket_of(flow);
        let own = self.buckets[bucket].backlog_bytes;
        let sojourn = if own == 0 || self.total_backlog == 0 {
            SimDuration::ZERO
        } else {
            let est = fifo_sojourn.as_nanos() as u128 * own as u128 * self.active.max(1) as u128
                / self.total_backlog as u128;
            SimDuration::from_nanos(est.min(u64::MAX as u128) as u64)
        };
        let dropped = self.buckets[bucket].codel.should_drop(now, sojourn);
        if dropped {
            self.drops += 1;
        }
        dropped
    }

    /// Record an accepted packet: `wire_bytes` lands in `flow`'s bucket.
    pub fn on_enqueue(&mut self, now: SimTime, rate: Bandwidth, flow: u64, wire_bytes: u64) {
        self.drain(now, rate);
        let b = &mut self.buckets[Self::bucket_of(flow)];
        if b.backlog_bytes == 0 {
            self.active += 1;
        }
        b.backlog_bytes += wire_bytes;
        self.total_backlog += wire_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{BottleneckLink, LinkConfig, Qdisc};

    fn link(qdisc: Qdisc, queue: usize) -> BottleneckLink {
        BottleneckLink::new(
            LinkConfig::new(
                Bandwidth::from_mbps(100),
                SimDuration::from_micros(200),
                queue,
            )
            .with_qdisc(qdisc),
        )
    }

    #[test]
    fn distinct_flows_spread_over_buckets() {
        let hits: std::collections::BTreeSet<usize> = (0..20u64).map(FqCodel::bucket_of).collect();
        assert!(
            hits.len() >= 18,
            "20 consecutive flow ids should land in (nearly) distinct buckets, got {}",
            hits.len()
        );
    }

    #[test]
    fn single_flow_matches_plain_codel_drop_for_drop() {
        // One flow: the fair-share sojourn estimate equals the FIFO
        // sojourn, so FQ-CoDel must make the same drop decisions as CoDel.
        let mut fq = link(Qdisc::FqCodel, 1000);
        let mut plain = link(Qdisc::Codel, 1000);
        let mut now = SimTime::ZERO;
        for i in 0..5_000u64 {
            // Offer ~20% above capacity so a standing queue forms.
            let a = fq.send_flow(now, 1514, 7);
            let b = plain.send(now, 1514);
            assert_eq!(
                a.is_dropped(),
                b.is_dropped(),
                "packet {i}: FQ (single flow) diverged from plain CoDel"
            );
            now += SimDuration::from_micros(100);
        }
        assert_eq!(fq.stats().aqm_drops, plain.stats().aqm_drops);
        assert!(fq.stats().aqm_drops > 0, "overload must trigger the AQM");
    }

    #[test]
    fn sparse_flow_is_isolated_from_a_bulk_flow() {
        // A bulk flow bloats its own bucket; a sparse flow sending one
        // packet every 10 ms must never be AQM-dropped (FQ's whole point),
        // while the same sparse flow through plain CoDel shares the bulk
        // flow's fate. Deep droptail so the AQM is the binding constraint.
        let mut fq = link(Qdisc::FqCodel, 1_000_000);
        let mut plain = link(Qdisc::Codel, 1_000_000);
        let mut sparse_fq_drops = 0u64;
        let mut sparse_plain_drops = 0u64;
        let mut now = SimTime::ZERO;
        for i in 0..200_000u64 {
            // The sparse packet goes first at its instants — otherwise the
            // bulk packet at the same timestamp eats every scheduled CoDel
            // drop and hides plain CoDel's indiscriminate behaviour.
            if i % 100 == 0 {
                if fq.send_flow(now, 200, 2).is_dropped() {
                    sparse_fq_drops += 1;
                }
                if plain.send(now, 200).is_dropped() {
                    sparse_plain_drops += 1;
                }
            }
            // Bulk flow at ~120% of capacity, for 20 s.
            fq.send_flow(now, 1514, 1);
            plain.send(now, 1514);
            now += SimDuration::from_micros(100);
        }
        assert_eq!(sparse_fq_drops, 0, "FQ-CoDel must isolate the sparse flow");
        assert!(
            sparse_plain_drops > 0,
            "plain CoDel punishes the sparse flow alongside the bulk flow"
        );
        assert!(
            fq.stats().aqm_drops > 0,
            "the bulk flow itself must still be clipped"
        );
    }

    #[test]
    fn bulk_flow_queue_is_clipped() {
        // Under sustained overload FQ-CoDel sheds load where FIFO just
        // queues: by the end of a long run the AQM'd queue must sit far
        // below the FIFO one (which grows to its droptail cap).
        let mut fq = link(Qdisc::FqCodel, 100_000);
        let mut fifo = link(Qdisc::Fifo, 100_000);
        let mut now = SimTime::ZERO;
        for _ in 0..600_000u64 {
            // ~120% of capacity for 60 s.
            fq.send_flow(now, 1514, 1);
            fifo.send(now, 1514);
            now += SimDuration::from_micros(100);
        }
        let fq_delay = fq.queue_delay(now);
        let fifo_delay = fifo.queue_delay(now);
        assert!(
            fq_delay < fifo_delay / 4,
            "FQ-CoDel queue delay {fq_delay} should be far below FIFO's {fifo_delay}"
        );
    }
}
