//! Background cross-traffic: a Poisson packet process sharing the
//! bottleneck.
//!
//! The paper's testbed is a dedicated LAN ("the mobile phone is the only
//! device connected to the router"), but §7.1.3 raises the question of how
//! the pacing stride behaves when the network is *not* private. The
//! competition ablation injects open-loop cross-traffic at a configured
//! average rate and re-runs the stride comparison against a loaded
//! bottleneck.

use serde::{Deserialize, Serialize};
use sim_core::rng::SimRng;
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;

/// Configuration of a Poisson cross-traffic source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossTrafficConfig {
    /// Average offered rate.
    pub rate: Bandwidth,
    /// Wire bytes per cross packet (default: full frames).
    pub pkt_bytes: u64,
}

impl CrossTrafficConfig {
    /// Full-size frames at the given rate.
    pub fn at(rate: Bandwidth) -> Self {
        CrossTrafficConfig {
            rate,
            pkt_bytes: 1514,
        }
    }
}

/// A Poisson arrival process generating cross packets.
#[derive(Debug, Clone)]
pub struct CrossTraffic {
    config: CrossTrafficConfig,
    rng: SimRng,
    next: SimTime,
    generated: u64,
}

impl CrossTraffic {
    /// A source starting at t = 0, drawing inter-arrivals from `rng`.
    pub fn new(config: CrossTrafficConfig, rng: SimRng) -> Self {
        assert!(
            !config.rate.is_zero(),
            "cross-traffic rate must be positive"
        );
        assert!(config.pkt_bytes > 0, "cross packets must have size");
        let mut s = CrossTraffic {
            config,
            rng,
            next: SimTime::ZERO,
            generated: 0,
        };
        s.next = s.draw_next(SimTime::ZERO);
        s
    }

    /// Packet size on the wire.
    pub fn pkt_bytes(&self) -> u64 {
        self.config.pkt_bytes
    }

    /// The next arrival instant (peek).
    pub fn next_arrival(&self) -> SimTime {
        self.next
    }

    /// Total packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    fn draw_next(&mut self, from: SimTime) -> SimTime {
        // Exponential inter-arrival with mean pkt_bytes/rate.
        let mean_s = self.config.pkt_bytes as f64 * 8.0 / self.config.rate.as_bps() as f64;
        from + SimDuration::from_secs_f64(self.rng.exponential(mean_s))
    }

    /// Consume the pending arrival and schedule the next one. Callers pop
    /// arrivals while `next_arrival() <= now`.
    pub fn pop(&mut self) -> SimTime {
        let at = self.next;
        self.generated += 1;
        self.next = self.draw_next(at);
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rate_matches_configuration() {
        let cfg = CrossTrafficConfig::at(Bandwidth::from_mbps(100));
        let mut src = CrossTraffic::new(cfg, SimRng::new(3));
        let horizon = SimTime::from_secs(10);
        let mut count = 0u64;
        while src.next_arrival() <= horizon {
            src.pop();
            count += 1;
        }
        let achieved = Bandwidth::from_bytes_over(count * 1514, SimDuration::from_secs(10));
        let err = (achieved.as_bps() as f64 - 100e6).abs() / 100e6;
        assert!(err < 0.05, "achieved {achieved} vs 100 Mbps");
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let cfg = CrossTrafficConfig::at(Bandwidth::from_mbps(500));
        let mut src = CrossTraffic::new(cfg, SimRng::new(7));
        let mut last = SimTime::ZERO;
        for _ in 0..10_000 {
            let at = src.pop();
            assert!(at >= last);
            last = at;
        }
        assert_eq!(src.generated(), 10_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CrossTrafficConfig::at(Bandwidth::from_mbps(50));
        let mut a = CrossTraffic::new(cfg, SimRng::new(11));
        let mut b = CrossTraffic::new(cfg, SimRng::new(11));
        for _ in 0..1_000 {
            assert_eq!(a.pop(), b.pop());
        }
    }

    #[test]
    fn interarrival_variance_is_poisson_like() {
        // Exponential inter-arrivals: coefficient of variation ≈ 1.
        let cfg = CrossTrafficConfig::at(Bandwidth::from_mbps(100));
        let mut src = CrossTraffic::new(cfg, SimRng::new(5));
        let mut last = SimTime::ZERO;
        let mut gaps = Vec::new();
        for _ in 0..20_000 {
            let at = src.pop();
            gaps.push((at - last).as_nanos() as f64);
            last = at;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "CV {cv} should be ~1 for Poisson");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        CrossTraffic::new(CrossTrafficConfig::at(Bandwidth::ZERO), SimRng::new(1));
    }
}
