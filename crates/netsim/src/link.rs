//! A bottleneck link: droptail queue → fixed-rate transmitter → propagation.
//!
//! This is the OpenWRT router port of the paper's testbed. The analytic
//! model: packets are served FIFO at the link rate, so packet *i*'s
//! departure is `max(enqueue_time, depart_{i-1}) + wire_bytes/rate` and its
//! arrival adds the propagation delay. A packet is dropped iff, at enqueue
//! time, the number of packets not yet fully serialised is at least the
//! queue capacity (droptail in packets, like the default `pfifo` qdisc the
//! shallow-buffer experiment of §5.2.3 shrinks to 10 packets).
//!
//! WiFi's rate variability ([`VariableRate`]) re-samples the service rate on
//! a fixed period from a deterministic RNG stream — enough to reproduce the
//! "increased variability due to WiFi artifacts" the paper notes in §3.2.

use crate::codel::{Codel, CodelConfig};
use crate::fq_codel::FqCodel;
use serde::{Deserialize, Serialize};
use sim_core::rng::SimRng;
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;
use std::collections::VecDeque;

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Packet accepted; it will arrive at the far end at `arrival`.
    Accepted {
        /// When the last bit leaves the transmitter.
        departs: SimTime,
        /// When the packet arrives at the far end (departs + propagation).
        arrival: SimTime,
    },
    /// Packet dropped.
    Dropped {
        /// `true` when the AQM (CoDel / FQ-CoDel) took the packet, `false`
        /// for a droptail overflow — the distinction the per-qdisc drop
        /// accounting (and its simcheck oracle) rests on.
        aqm: bool,
    },
}

impl SendOutcome {
    /// Arrival time if accepted.
    pub fn arrival(&self) -> Option<SimTime> {
        match self {
            SendOutcome::Accepted { arrival, .. } => Some(*arrival),
            SendOutcome::Dropped { .. } => None,
        }
    }

    /// True if the packet was dropped.
    pub fn is_dropped(&self) -> bool {
        matches!(self, SendOutcome::Dropped { .. })
    }
}

/// Static configuration of a link.
///
/// The queue discipline is a first-class axis ([`LinkConfig::qdisc`]):
/// every path link — not just the fleet's shared uplink — can run FIFO,
/// CoDel, or FQ-CoDel. The legacy `codel: Option<CodelConfig>` field is
/// kept as the serialized representation of the CoDel parameters (and for
/// back-compat with configs that set it directly); [`LinkConfig::qdisc()`]
/// resolves both encodings to one verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Serialisation rate.
    pub rate: Bandwidth,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Droptail queue capacity in packets (slots not yet fully serialised).
    pub queue_packets: usize,
    /// AQM parameters (`Some` for CoDel and FQ-CoDel, `None` for FIFO).
    /// Prefer [`LinkConfig::with_qdisc`]; setting this directly is the
    /// deprecated back-door and means plain CoDel.
    pub codel: Option<CodelConfig>,
    /// Queue-discipline selector. Serialized only for [`Qdisc::FqCodel`]:
    /// FIFO and CoDel are fully determined by `codel`, so every
    /// pre-existing sweep-cache key keeps its exact bytes.
    #[serde(skip_serializing_if = "Qdisc::is_classic")]
    pub qdisc: Qdisc,
}

impl LinkConfig {
    /// A link with the given rate, delay and queue depth (FIFO droptail).
    pub fn new(rate: Bandwidth, propagation: SimDuration, queue_packets: usize) -> Self {
        assert!(!rate.is_zero(), "link rate must be positive");
        assert!(queue_packets >= 1, "queue must hold at least one packet");
        LinkConfig {
            rate,
            propagation,
            queue_packets,
            codel: None,
            qdisc: Qdisc::Fifo,
        }
    }

    /// Enable CoDel AQM on this link.
    #[deprecated(
        since = "0.3.0",
        note = "use with_qdisc(Qdisc::Codel) — the qdisc is a first-class axis; \
                with_codel_config if you need non-default parameters"
    )]
    pub fn with_codel(self, codel: CodelConfig) -> Self {
        self.with_codel_config(codel)
    }

    /// Run CoDel with explicit (non-default) parameters. The common path is
    /// [`LinkConfig::with_qdisc`], which applies the RFC 8289 defaults.
    pub fn with_codel_config(mut self, codel: CodelConfig) -> Self {
        self.codel = Some(codel);
        self.qdisc = Qdisc::Codel;
        self
    }

    /// Apply a named queue discipline with its default AQM parameters, so
    /// every caller (experiments, simcheck, benches) gets the same AQM
    /// configuration.
    pub fn with_qdisc(mut self, qdisc: Qdisc) -> Self {
        self.codel = match qdisc {
            Qdisc::Fifo => None,
            Qdisc::Codel | Qdisc::FqCodel => Some(CodelConfig::default()),
        };
        self.qdisc = qdisc;
        self
    }

    /// Which queue discipline this link runs, resolving the legacy
    /// encoding: a config whose `codel` field was set directly (with the
    /// `qdisc` field left at FIFO) runs plain CoDel, exactly as it did
    /// before the qdisc became first-class.
    pub fn qdisc(&self) -> Qdisc {
        match (self.qdisc, self.codel.is_some()) {
            (Qdisc::FqCodel, _) => Qdisc::FqCodel,
            (_, true) => Qdisc::Codel,
            (_, false) => Qdisc::Fifo,
        }
    }
}

/// Queue-discipline selector: plain droptail FIFO, CoDel, or flow-queued
/// CoDel with the RFC 8289 defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Qdisc {
    /// Droptail FIFO (the default on every path link).
    Fifo,
    /// CoDel AQM ([`CodelConfig::default`] parameters).
    Codel,
    /// FQ-CoDel: per-flow CoDel buckets with DRR-approximate fair sharing
    /// (see [`crate::fq_codel`]), Android/OpenWRT's default qdisc.
    FqCodel,
}

impl Qdisc {
    /// True for the disciplines that predate the first-class `qdisc` field
    /// (FIFO/CoDel, fully determined by `LinkConfig::codel`). Used as the
    /// serialization skip predicate so legacy cache keys stay byte-stable.
    pub fn is_classic(&self) -> bool {
        !matches!(self, Qdisc::FqCodel)
    }
}

impl std::fmt::Display for Qdisc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Qdisc::Fifo => write!(f, "FIFO"),
            Qdisc::Codel => write!(f, "CoDel"),
            Qdisc::FqCodel => write!(f, "FQ-CoDel"),
        }
    }
}

/// Optional time-varying rate (WiFi): the effective rate is re-sampled
/// every `period` uniformly in `[min, max]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariableRate {
    /// Lower bound of the sampled rate.
    pub min: Bandwidth,
    /// Upper bound of the sampled rate.
    pub max: Bandwidth,
    /// Re-sampling period (coherence time of the channel).
    pub period: SimDuration,
}

/// Counters a link accumulates over a run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct LinkStats {
    /// Packets accepted.
    pub accepted: u64,
    /// Packets dropped, droptail and AQM combined.
    pub dropped: u64,
    /// Packets dropped by the AQM specifically (subset of `dropped`) —
    /// the link-side ground truth the `aqm-accounting` oracle compares
    /// against the stack's own tally.
    pub aqm_drops: u64,
    /// Bytes accepted (wire bytes).
    pub bytes: u64,
}

/// A droptail FIFO queue feeding a (possibly time-varying) transmitter.
pub struct BottleneckLink {
    config: LinkConfig,
    codel: Option<Codel>,
    fq: Option<FqCodel>,
    variable: Option<(VariableRate, SimRng)>,
    current_rate: Bandwidth,
    next_resample: SimTime,
    /// Departure times of packets still occupying the queue/transmitter.
    in_flight: VecDeque<SimTime>,
    last_depart: SimTime,
    stats: LinkStats,
    /// Serialisation-time memo: `(rate_bps, wire_bytes) -> time_to_send`.
    /// Almost every packet on a link is the same size (MSS + headers, or a
    /// bare ACK), so this absorbs the 128-bit division in
    /// [`Bandwidth::time_to_send`] on the per-packet path. The entry holds
    /// the exact `div_ceil` result — hits are bit-identical to recomputing.
    ser_memo: (u64, u64, SimDuration),
}

impl BottleneckLink {
    /// A fixed-rate link.
    pub fn new(config: LinkConfig) -> Self {
        let rate = config.rate;
        let (codel, fq) = match config.qdisc() {
            Qdisc::Fifo => (None, None),
            Qdisc::Codel => (config.codel.map(Codel::new), None),
            Qdisc::FqCodel => (None, Some(FqCodel::new(config.codel.unwrap_or_default()))),
        };
        BottleneckLink {
            codel,
            fq,
            config,
            variable: None,
            current_rate: rate,
            next_resample: SimTime::MAX,
            in_flight: VecDeque::new(),
            last_depart: SimTime::ZERO,
            stats: LinkStats::default(),
            ser_memo: (0, 0, SimDuration::ZERO),
        }
    }

    /// A link whose rate varies per [`VariableRate`], drawing from `rng`.
    pub fn with_variable_rate(config: LinkConfig, var: VariableRate, rng: SimRng) -> Self {
        assert!(var.min <= var.max, "variable rate bounds inverted");
        assert!(!var.min.is_zero(), "variable rate must stay positive");
        let mut link = Self::new(config);
        link.next_resample = SimTime::ZERO;
        link.variable = Some((var, rng));
        link
    }

    /// The link's static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// The rate currently in effect (fixed links: the configured rate).
    pub fn current_rate(&self) -> Bandwidth {
        self.current_rate
    }

    /// Run statistics so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    fn maybe_resample(&mut self, now: SimTime) {
        let Some((var, rng)) = self.variable.as_mut() else {
            return;
        };
        while now >= self.next_resample {
            let span = var.max.as_bps() - var.min.as_bps();
            let draw = if span == 0 { 0 } else { rng.below(span + 1) };
            self.current_rate = Bandwidth::from_bps(var.min.as_bps() + draw);
            self.next_resample += var.period;
        }
    }

    /// Packets not yet fully serialised at `now` (queue + in service).
    pub fn occupancy(&mut self, now: SimTime) -> usize {
        while let Some(&front) = self.in_flight.front() {
            if front <= now {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        self.in_flight.len()
    }

    /// Queueing delay a packet offered at `now` would experience before
    /// starting service (0 if the link is idle).
    pub fn queue_delay(&mut self, now: SimTime) -> SimDuration {
        self.occupancy(now); // prune
        self.last_depart.saturating_since(now)
    }

    /// Offer one wire packet of `wire_bytes` to the link at `now`,
    /// attributed to flow 0 (see [`BottleneckLink::send_flow`]).
    pub fn send(&mut self, now: SimTime, wire_bytes: u64) -> SendOutcome {
        self.send_flow(now, wire_bytes, 0)
    }

    /// Offer one wire packet of `wire_bytes` to the link at `now` on
    /// behalf of `flow`. The flow id selects the FQ-CoDel bucket; FIFO and
    /// plain CoDel links ignore it, so [`BottleneckLink::send`] (flow 0)
    /// remains bit-identical to the pre-FQ behaviour on those links.
    pub fn send_flow(&mut self, now: SimTime, wire_bytes: u64, flow: u64) -> SendOutcome {
        self.maybe_resample(now);
        if self.occupancy(now) >= self.config.queue_packets {
            self.stats.dropped += 1;
            return SendOutcome::Dropped { aqm: false };
        }
        let start = if self.last_depart > now {
            self.last_depart
        } else {
            now
        };
        // CoDel evaluates the packet's prospective sojourn (known exactly
        // under FIFO service) at enqueue time.
        if let Some(codel) = self.codel.as_mut() {
            let sojourn = start.saturating_since(now);
            if codel.should_drop(now, sojourn) {
                self.stats.dropped += 1;
                self.stats.aqm_drops += 1;
                return SendOutcome::Dropped { aqm: true };
            }
        }
        // FQ-CoDel evaluates the flow's *fair-share* sojourn estimate
        // against its own bucket's CoDel instance (sparse flows see an
        // empty bucket and sail through).
        if let Some(fq) = self.fq.as_mut() {
            if fq.should_drop(now, flow, start.saturating_since(now), self.current_rate) {
                self.stats.dropped += 1;
                self.stats.aqm_drops += 1;
                return SendOutcome::Dropped { aqm: true };
            }
        }
        let rate_bps = self.current_rate.as_bps();
        let ser = if self.ser_memo.0 == rate_bps && self.ser_memo.1 == wire_bytes {
            self.ser_memo.2
        } else {
            let ser = self.current_rate.time_to_send(wire_bytes);
            self.ser_memo = (rate_bps, wire_bytes, ser);
            ser
        };
        let departs = start + ser;
        self.last_depart = departs;
        self.in_flight.push_back(departs);
        if let Some(fq) = self.fq.as_mut() {
            fq.on_enqueue(now, self.current_rate, flow, wire_bytes);
        }
        self.stats.accepted += 1;
        self.stats.bytes += wire_bytes;
        SendOutcome::Accepted {
            departs,
            arrival: departs + self.config.propagation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gig_link(queue: usize) -> BottleneckLink {
        BottleneckLink::new(LinkConfig::new(
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(200),
            queue,
        ))
    }

    #[test]
    fn idle_link_serialises_then_propagates() {
        let mut link = gig_link(100);
        let out = link.send(SimTime::ZERO, 1514);
        match out {
            SendOutcome::Accepted { departs, arrival } => {
                assert_eq!(departs, SimTime::from_nanos(12_112)); // 1514B @ 1Gbps
                assert_eq!(arrival, departs + SimDuration::from_micros(200));
            }
            SendOutcome::Dropped { .. } => panic!("idle link must accept"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut link = gig_link(100);
        let first = link.send(SimTime::ZERO, 1514).arrival().unwrap();
        let second = link.send(SimTime::ZERO, 1514).arrival().unwrap();
        assert_eq!(second - first, SimDuration::from_nanos(12_112));
    }

    #[test]
    fn spaced_packets_do_not_queue() {
        let mut link = gig_link(100);
        link.send(SimTime::ZERO, 1514);
        // Offer the next packet well after the first has departed.
        let t = SimTime::from_micros(100);
        let out = link.send(t, 1514);
        assert_eq!(
            out.arrival().unwrap(),
            t + SimDuration::from_nanos(12_112) + SimDuration::from_micros(200)
        );
    }

    #[test]
    fn droptail_fires_at_capacity() {
        let mut link = gig_link(10); // the paper's shallow buffer
        let mut dropped = 0;
        for _ in 0..44 {
            // A 64 KB unpaced burst: 44 MSS packets at one instant.
            if link.send(SimTime::ZERO, 1514).is_dropped() {
                dropped += 1;
            }
        }
        assert_eq!(
            dropped, 34,
            "10-packet buffer admits 10 of a 44-packet burst"
        );
        assert_eq!(link.stats().dropped, 34);
        assert_eq!(link.stats().accepted, 10);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut link = gig_link(10);
        for _ in 0..10 {
            assert!(!link.send(SimTime::ZERO, 1514).is_dropped());
        }
        assert!(link.send(SimTime::ZERO, 1514).is_dropped());
        // After 5 serialisation times, 5 slots have freed.
        let later = SimTime::from_nanos(12_112 * 5);
        assert_eq!(link.occupancy(later), 5);
        assert!(!link.send(later, 1514).is_dropped());
    }

    #[test]
    fn paced_traffic_sees_empty_queue() {
        // Pacing at below line rate keeps occupancy at ≤1 — the benefit the
        // paper's Figure 7 quantifies via RTT.
        let mut link = gig_link(600);
        let gap = SimDuration::from_micros(20); // 1514B @ ~605 Mbps
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            assert!(!link.send(now, 1514).is_dropped());
            assert!(link.queue_delay(now) <= SimDuration::from_micros(13));
            now += gap;
        }
    }

    #[test]
    fn queue_delay_grows_with_burst() {
        let mut link = gig_link(600);
        for _ in 0..100 {
            link.send(SimTime::ZERO, 1514);
        }
        // 100 packets at 12.112 µs each ≈ 1.21 ms of queue.
        let qd = link.queue_delay(SimTime::ZERO);
        assert_eq!(qd, SimDuration::from_nanos(12_112 * 100));
    }

    #[test]
    fn variable_rate_stays_in_bounds_and_is_deterministic() {
        let cfg = LinkConfig::new(Bandwidth::from_mbps(600), SimDuration::from_millis(1), 300);
        let var = VariableRate {
            min: Bandwidth::from_mbps(400),
            max: Bandwidth::from_mbps(900),
            period: SimDuration::from_millis(100),
        };
        let mut a = BottleneckLink::with_variable_rate(cfg.clone(), var.clone(), SimRng::new(1));
        let mut b = BottleneckLink::with_variable_rate(cfg, var, SimRng::new(1));
        for i in 0..50 {
            let t = SimTime::from_millis(i * 40);
            let oa = a.send(t, 1514);
            let ob = b.send(t, 1514);
            assert_eq!(oa, ob, "same seed must give identical outcomes");
            let r = a.current_rate();
            assert!(
                r >= Bandwidth::from_mbps(400) && r <= Bandwidth::from_mbps(900),
                "rate {r}"
            );
        }
    }

    #[test]
    fn qdisc_resolution_covers_both_encodings() {
        let base = LinkConfig::new(Bandwidth::from_mbps(100), SimDuration::ZERO, 100);
        assert_eq!(base.qdisc(), Qdisc::Fifo);
        assert_eq!(base.clone().with_qdisc(Qdisc::Codel).qdisc(), Qdisc::Codel);
        assert_eq!(
            base.clone().with_qdisc(Qdisc::FqCodel).qdisc(),
            Qdisc::FqCodel
        );
        // Legacy back-door: setting `codel` directly (qdisc left at Fifo)
        // still means plain CoDel.
        let mut legacy = base;
        legacy.codel = Some(CodelConfig::default());
        assert_eq!(legacy.qdisc(), Qdisc::Codel);
        // Round-tripping through with_qdisc(Fifo) clears the AQM again.
        assert_eq!(legacy.with_qdisc(Qdisc::Fifo).qdisc(), Qdisc::Fifo);
    }

    #[test]
    fn classic_configs_serialize_without_a_qdisc_key() {
        // Sweep-cache keys are the canonical JSON of the whole SimConfig, so
        // FIFO and CoDel links must keep their pre-qdisc-field shape
        // byte-for-byte: same field names, no `qdisc` key.
        use serde::Serialize;
        let base = LinkConfig::new(Bandwidth::from_mbps(100), SimDuration::ZERO, 100);
        for cfg in [base.clone(), base.clone().with_qdisc(Qdisc::Codel)] {
            let val = cfg.to_value();
            let serde::Value::Object(fields) = &val else {
                panic!("LinkConfig must serialize to an object");
            };
            let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                keys,
                ["rate", "propagation", "queue_packets", "codel"],
                "legacy field set must stay exact for cache-key stability"
            );
        }
        // FQ-CoDel is new, so it (and only it) carries the qdisc key.
        let fq = base.with_qdisc(Qdisc::FqCodel).to_value();
        assert_eq!(
            fq.get("qdisc").and_then(|v| v.as_str()),
            Some("FqCodel"),
            "FqCodel must be visible in the cache key"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        LinkConfig::new(Bandwidth::ZERO, SimDuration::ZERO, 10);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn zero_queue_rejected() {
        LinkConfig::new(Bandwidth::from_mbps(1), SimDuration::ZERO, 0);
    }

    proptest! {
        /// FIFO invariant: arrivals are non-decreasing in send order.
        #[test]
        fn prop_arrivals_are_fifo(
            sizes in proptest::collection::vec(66u64..1514, 1..100),
            gaps in proptest::collection::vec(0u64..50_000, 1..100),
        ) {
            let mut link = gig_link(1000);
            let mut now = SimTime::ZERO;
            let mut last_arrival = SimTime::ZERO;
            for (size, gap) in sizes.iter().zip(gaps.iter().cycle()) {
                now += SimDuration::from_nanos(*gap);
                if let SendOutcome::Accepted { arrival, .. } = link.send(now, *size) {
                    prop_assert!(arrival >= last_arrival);
                    last_arrival = arrival;
                }
            }
        }

        /// Occupancy never exceeds capacity.
        #[test]
        fn prop_occupancy_bounded(cap in 1usize..50, n in 1usize..300) {
            let mut link = BottleneckLink::new(LinkConfig::new(
                Bandwidth::from_mbps(100),
                SimDuration::from_micros(100),
                cap,
            ));
            for i in 0..n {
                let t = SimTime::from_micros(i as u64 * 10);
                link.send(t, 1514);
                prop_assert!(link.occupancy(t) <= cap);
            }
        }

        /// Work conservation: total service time equals Σ bytes/rate when
        /// the link never idles (all packets offered at t=0).
        #[test]
        fn prop_work_conserving(sizes in proptest::collection::vec(100u64..1514, 1..50)) {
            let rate = Bandwidth::from_mbps(100);
            let mut link = BottleneckLink::new(LinkConfig::new(rate, SimDuration::ZERO, 1000));
            let mut expected = SimTime::ZERO;
            let mut last = SimTime::ZERO;
            for &s in &sizes {
                if let SendOutcome::Accepted { departs, .. } = link.send(SimTime::ZERO, s) {
                    last = departs;
                }
                expected += rate.time_to_send(s);
            }
            prop_assert_eq!(last, expected);
        }
    }
}
