//! # netsim
//!
//! The network substrate of the *"Are Mobiles Ready for BBR?"* reproduction:
//! the testbed of the paper's Figure 1 — phone → OpenWRT router → iPerf
//! server — as deterministic, passive components.
//!
//! The components are *passive*: they compute departure/arrival times and
//! drop verdicts analytically, and the caller (the TCP stack simulator)
//! schedules delivery events on its own event queue. A FIFO droptail queue
//! in front of a fixed-rate server admits an exact analytic treatment
//! (`depart = max(now, last_depart) + bytes/rate`), so no internal events
//! are needed and the packet path costs O(1) amortised per packet.
//!
//! * [`link`] — [`link::BottleneckLink`]: droptail queue + serialising
//!   transmitter + propagation delay; occupancy queries for RTT analysis;
//!   optional time-varying rate (WiFi).
//! * [`netem`] — `tc netem`-style impairments: i.i.d. loss, extra
//!   delay/jitter, a rate limiter (the paper shapes with `tc` on the
//!   router), and simple reordering.
//! * [`codel`] — CoDel AQM (RFC 8289), the building block for AQM links.
//! * [`fq_codel`] — FQ-CoDel (RFC 8290): per-flow CoDel buckets with a
//!   DRR fair-share sojourn model, the Android/OpenWRT default qdisc.
//! * [`pcap`] — classic-format pcap capture of simulated wire traffic.
//! * [`crosstraffic`] — Poisson background load for competition ablations.
//! * [`media`] — the three media of the paper: Ethernet LAN (1 Gbps line
//!   rate, §3.2), WiFi LAN (variable rate, §3.2), and T-Mobile LTE
//!   (bandwidth-limited ≤ 20 Mbps, Appendix A.1), plus the 10-packet
//!   shallow-buffer variant of §5.2.3.

#![warn(missing_docs)]

pub mod codel;
pub mod crosstraffic;
pub mod fq_codel;
pub mod link;
pub mod media;
pub mod netem;
pub mod pcap;

pub use codel::{Codel, CodelConfig};
pub use fq_codel::FqCodel;
pub use link::{BottleneckLink, LinkConfig, Qdisc, SendOutcome, VariableRate};
pub use media::{MediaProfile, PathConfig};
pub use netem::{Netem, NetemConfig, NetemVerdict};

/// Ethernet wire overhead per packet: 14 (Ethernet) + 20 (IP) + 32
/// (TCP + timestamps) header bytes; preamble/IFG folded into link rates.
pub const WIRE_HEADER_BYTES: u64 = 66;

/// Maximum TCP payload per wire packet (1500 MTU − 52 IP/TCP headers).
pub const MSS: u64 = 1448;

/// Convert a TCP payload size to on-the-wire bytes, accounting for
/// per-packet headers at MSS granularity.
pub fn wire_bytes(payload: u64) -> u64 {
    if payload == 0 {
        return WIRE_HEADER_BYTES; // pure ACK
    }
    let packets = payload.div_ceil(MSS);
    payload + packets * WIRE_HEADER_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_adds_headers_per_packet() {
        assert_eq!(wire_bytes(0), 66);
        assert_eq!(wire_bytes(1448), 1448 + 66);
        assert_eq!(wire_bytes(1449), 1449 + 2 * 66);
        assert_eq!(wire_bytes(2 * 1448), 2 * 1448 + 2 * 66);
    }

    #[test]
    fn mss_matches_standard_mtu() {
        assert_eq!(MSS + 52, 1500);
    }
}
