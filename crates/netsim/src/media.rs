//! The media profiles of the paper's testbed (§3.2, Appendix A.1).
//!
//! * **Ethernet LAN** — phone → USB-Ethernet → Linksys 1900ACS (OpenWRT 21)
//!   → server. "We verify that this setup is able to achieve close to the
//!   1 Gbps line rate." A reliable, fixed-rate medium.
//! * **WiFi LAN** — the phone is the only station, ~1 m from the AP.
//!   "Results may have increased variability due to WiFi artifacts": the
//!   effective rate wanders inside an 802.11ac-at-1-metre envelope.
//! * **LTE** — T-Mobile uplink: "bandwidth-limited (less than 20 Mbps of
//!   goodput)", long RTT, deep (bufferbloated) eNodeB queue. Figure 9's
//!   point is that this medium never stresses the phone's CPU.
//!
//! The shallow-buffer variant of §5.2.3 ("a 10-packet shallow buffer that
//! is especially congestion-susceptible") is a builder on any profile.

use crate::link::{LinkConfig, VariableRate};
use crate::netem::NetemConfig;
use serde::{Deserialize, Serialize};
use sim_core::time::SimDuration;
use sim_core::units::Bandwidth;

/// The three media the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MediaProfile {
    /// Ethernet LAN at 1 Gbps line rate (§3.2).
    Ethernet,
    /// WiFi LAN, single station at ~1 m (§3.2).
    Wifi,
    /// T-Mobile LTE uplink (Appendix A.1).
    Lte,
    /// Forward-looking 5G mmWave uplink: §4 cites up to 200 Mbps uplink
    /// (Narayanan et al. \[28\]) and predicts that "future 5G networks with
    /// higher bandwidths are likely to see similar BBR performance as our
    /// WiFi and Ethernet experiments" — i.e. fast enough to re-expose the
    /// pacing bottleneck that LTE hides.
    FiveG,
}

impl std::fmt::Display for MediaProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MediaProfile::Ethernet => write!(f, "Ethernet"),
            MediaProfile::Wifi => write!(f, "WiFi"),
            MediaProfile::Lte => write!(f, "LTE"),
            MediaProfile::FiveG => write!(f, "5G mmWave"),
        }
    }
}

/// Full configuration of the phone→server path and the ACK return path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathConfig {
    /// Human-readable name for reports.
    pub label: String,
    /// Uplink (data direction): the bottleneck.
    pub forward: LinkConfig,
    /// Optional rate variability on the uplink (WiFi).
    pub forward_var: Option<VariableRate>,
    /// Downlink (ACK direction).
    pub reverse: LinkConfig,
    /// tc-netem impairments on the uplink.
    pub forward_netem: NetemConfig,
    /// tc-netem impairments on the downlink.
    pub reverse_netem: NetemConfig,
}

impl MediaProfile {
    /// Build the default path configuration for this medium.
    pub fn path_config(self) -> PathConfig {
        match self {
            MediaProfile::Ethernet => PathConfig {
                label: "Ethernet LAN (1 Gbps)".into(),
                // Propagation folds in the USB-to-Ethernet adapter and
                // server-stack latency of the paper's testbed (§3.2): its
                // best-case loaded RTT is ~1.1 ms (Table 2), far above raw
                // cable delay.
                forward: LinkConfig::new(
                    Bandwidth::from_gbps(1),
                    SimDuration::from_micros(350),
                    600,
                ),
                forward_var: None,
                reverse: LinkConfig::new(
                    Bandwidth::from_gbps(1),
                    SimDuration::from_micros(350),
                    600,
                ),
                forward_netem: NetemConfig::none(),
                reverse_netem: NetemConfig::none(),
            },
            MediaProfile::Wifi => PathConfig {
                label: "WiFi LAN (802.11ac, 1 m)".into(),
                forward: LinkConfig::new(
                    Bandwidth::from_mbps(650),
                    SimDuration::from_micros(400),
                    400,
                ),
                forward_var: Some(VariableRate {
                    min: Bandwidth::from_mbps(400),
                    max: Bandwidth::from_mbps(900),
                    period: SimDuration::from_millis(50),
                }),
                reverse: LinkConfig::new(
                    Bandwidth::from_mbps(650),
                    SimDuration::from_micros(400),
                    400,
                ),
                forward_netem: NetemConfig::none()
                    .with_delay(SimDuration::ZERO, SimDuration::from_micros(300)),
                reverse_netem: NetemConfig::none()
                    .with_delay(SimDuration::ZERO, SimDuration::from_micros(300)),
            },
            MediaProfile::Lte => PathConfig {
                label: "LTE uplink (T-Mobile)".into(),
                forward: LinkConfig::new(
                    Bandwidth::from_mbps(18),
                    SimDuration::from_millis(25),
                    300, // bufferbloated eNodeB uplink queue
                ),
                forward_var: Some(VariableRate {
                    min: Bandwidth::from_mbps(12),
                    max: Bandwidth::from_mbps(20),
                    period: SimDuration::from_millis(200),
                }),
                reverse: LinkConfig::new(
                    Bandwidth::from_mbps(60),
                    SimDuration::from_millis(25),
                    300,
                ),
                forward_netem: NetemConfig::none()
                    .with_delay(SimDuration::ZERO, SimDuration::from_millis(2)),
                reverse_netem: NetemConfig::none()
                    .with_delay(SimDuration::ZERO, SimDuration::from_millis(1)),
            },
            MediaProfile::FiveG => PathConfig {
                label: "5G mmWave uplink (forward-looking)".into(),
                forward: LinkConfig::new(
                    Bandwidth::from_mbps(200),
                    SimDuration::from_millis(8),
                    500,
                ),
                // mmWave is notoriously variable (beam/blockage dynamics).
                forward_var: Some(VariableRate {
                    min: Bandwidth::from_mbps(120),
                    max: Bandwidth::from_mbps(220),
                    period: SimDuration::from_millis(100),
                }),
                reverse: LinkConfig::new(
                    Bandwidth::from_mbps(400),
                    SimDuration::from_millis(8),
                    500,
                ),
                forward_netem: NetemConfig::none()
                    .with_delay(SimDuration::ZERO, SimDuration::from_millis(1)),
                reverse_netem: NetemConfig::none()
                    .with_delay(SimDuration::ZERO, SimDuration::from_micros(500)),
            },
        }
    }
}

impl PathConfig {
    /// Override the uplink queue depth — the §5.2.3 shallow buffer is
    /// `MediaProfile::Ethernet.path_config().with_queue_packets(10)`.
    pub fn with_queue_packets(mut self, packets: usize) -> Self {
        self.forward.queue_packets = packets;
        self
    }

    /// Stack extra netem impairments on the uplink.
    pub fn with_forward_netem(mut self, netem: NetemConfig) -> Self {
        self.forward_netem = netem;
        self
    }

    /// Base (unloaded) round-trip time: both propagation delays plus fixed
    /// netem delays, excluding serialisation and queueing.
    pub fn base_rtt(&self) -> SimDuration {
        self.forward.propagation
            + self.reverse.propagation
            + self.forward_netem.delay
            + self.reverse_netem.delay
    }

    /// The uplink's nominal rate (mean rate for variable links).
    pub fn bottleneck_rate(&self) -> Bandwidth {
        self.forward.rate
    }

    /// The uplink's hard ceiling: the top of the variable-rate envelope,
    /// or the nominal rate for fixed links. No run can deliver faster than
    /// this — the physical-conservation bound the goodput oracle checks
    /// (where [`PathConfig::bottleneck_rate`] is only the nominal centre).
    pub fn max_forward_rate(&self) -> Bandwidth {
        match &self.forward_var {
            Some(var) => var.max.max(self.forward.rate),
            None => self.forward.rate,
        }
    }

    /// The uplink's floor: the bottom of the variable-rate envelope, or
    /// the nominal rate for fixed links.
    pub fn min_forward_rate(&self) -> Bandwidth {
        match &self.forward_var {
            Some(var) => var.min.min(self.forward.rate),
            None => self.forward.rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_is_line_rate_gigabit() {
        let p = MediaProfile::Ethernet.path_config();
        assert_eq!(p.bottleneck_rate(), Bandwidth::from_gbps(1));
        assert!(p.forward_var.is_none(), "Ethernet rate is stable");
        assert!(
            p.forward_netem.is_noop(),
            "paper's default: no tc conditions"
        );
        // LAN-scale base RTT, well under a millisecond.
        assert!(p.base_rtt() < SimDuration::from_millis(1));
    }

    #[test]
    fn wifi_is_variable() {
        let p = MediaProfile::Wifi.path_config();
        let var = p.forward_var.as_ref().expect("WiFi must vary");
        assert!(var.min < var.max);
        assert!(var.min >= Bandwidth::from_mbps(100), "1-metre 11ac is fast");
        assert!(var.max <= Bandwidth::from_gbps(1));
    }

    #[test]
    fn lte_is_bandwidth_limited_not_cpu_limited() {
        let p = MediaProfile::Lte.path_config();
        // Appendix A.1: "less than 20 Mbps of goodput".
        assert!(p.bottleneck_rate() <= Bandwidth::from_mbps(20));
        // Long RTT: tens of milliseconds.
        assert!(p.base_rtt() >= SimDuration::from_millis(40));
    }

    #[test]
    fn fiveg_is_fast_enough_to_expose_pacing() {
        // §4's premise: 5G uplink capacity (~200 Mbps) exceeds what a
        // Low-End phone can pace, unlike LTE's ~18 Mbps.
        let p = MediaProfile::FiveG.path_config();
        assert!(p.bottleneck_rate() >= Bandwidth::from_mbps(150));
        assert!(p.bottleneck_rate() > MediaProfile::Lte.path_config().bottleneck_rate());
        assert!(
            p.base_rtt() >= SimDuration::from_millis(10),
            "cellular-scale RTT"
        );
        assert!(p.forward_var.is_some(), "mmWave varies");
    }

    #[test]
    fn shallow_buffer_builder() {
        let p = MediaProfile::Ethernet.path_config().with_queue_packets(10);
        assert_eq!(p.forward.queue_packets, 10);
        // Reverse path untouched.
        assert_eq!(p.reverse.queue_packets, 600);
    }

    #[test]
    fn netem_stacking_builder() {
        let p = MediaProfile::Ethernet
            .path_config()
            .with_forward_netem(NetemConfig::none().with_loss(0.01));
        assert_eq!(p.forward_netem.loss, 0.01);
    }

    #[test]
    fn forward_rate_envelope_brackets_nominal() {
        for media in [
            MediaProfile::Ethernet,
            MediaProfile::Wifi,
            MediaProfile::Lte,
            MediaProfile::FiveG,
        ] {
            let p = media.path_config();
            assert!(p.min_forward_rate() <= p.bottleneck_rate());
            assert!(p.bottleneck_rate() <= p.max_forward_rate());
        }
        // Fixed links collapse the envelope to the nominal rate.
        let eth = MediaProfile::Ethernet.path_config();
        assert_eq!(eth.max_forward_rate(), eth.bottleneck_rate());
        assert_eq!(eth.min_forward_rate(), eth.bottleneck_rate());
        // Variable links expose the true ceiling.
        let wifi = MediaProfile::Wifi.path_config();
        assert_eq!(wifi.max_forward_rate(), Bandwidth::from_mbps(900));
        assert_eq!(wifi.min_forward_rate(), Bandwidth::from_mbps(400));
    }

    #[test]
    fn media_display_names() {
        assert_eq!(MediaProfile::Ethernet.to_string(), "Ethernet");
        assert_eq!(MediaProfile::Wifi.to_string(), "WiFi");
        assert_eq!(MediaProfile::Lte.to_string(), "LTE");
    }
}
