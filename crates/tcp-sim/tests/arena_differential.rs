//! Differential property test: a [`FlowArena`] (struct-of-arrays state,
//! scoreboard windows carved from ONE shared segment slab) must behave
//! exactly like a set of independent boxed [`Sender`]s (each owning a
//! private slab) under arbitrary interleavings of plan/send/ack/RTO
//! operations across 1–64 flows.
//!
//! This is the executable form of the arena's isolation invariant: flow
//! `a`'s operations never read or write flow `b`'s state, even though all
//! scoreboard windows recycle chunks through the same [`SegStore`]. Both
//! sides run the same `Scoreboard` code — what the test pins down is the
//! *layout routing*: the shared-slab carving, the parallel-array borrows,
//! and chunk recycling across flows cannot change a single observable.

use congestion::master::{Master, MasterConfig};
use congestion::CcKind;
use proptest::prelude::*;
use sim_core::time::{SimDuration, SimTime};
use tcp_sim::receiver::AckInfo;
use tcp_sim::sender::Sender;
use tcp_sim::seq::PktSeq;
use tcp_sim::{FlowArena, FlowId, PacingConfig};

const MSS: u64 = 1448;

/// One step of the generated workload, always addressed to one flow.
#[derive(Debug, Clone)]
enum Op {
    /// Plan up to `max_pkts` under `cwnd`, then record it sent.
    Send {
        flow: usize,
        cwnd: u64,
        max_pkts: u64,
    },
    /// Cumulatively ack `frac`/256 of the outstanding window.
    AckCum { flow: usize, frac: u8 },
    /// Duplicate ack (no cumulative progress) SACKing a slice of the
    /// outstanding window — drives loss marking and fast recovery.
    AckSack { flow: usize, lo_frac: u8, len: u64 },
    /// Retransmission timeout: everything outstanding presumed lost.
    Rto { flow: usize },
    /// Advance the shared clock.
    Tick { nanos: u64 },
}

fn op_strategy(flows: usize) -> impl Strategy<Value = Op> {
    let f = 0..flows;
    prop_oneof![
        // Sends dominate so windows actually build up; small cwnds keep
        // some flows app-limited while others stay cwnd-limited.
        4 => (f.clone(), 1u64..64, 1u64..16)
            .prop_map(|(flow, cwnd, max_pkts)| Op::Send { flow, cwnd, max_pkts }).boxed(),
        3 => (f.clone(), any::<u8>()).prop_map(|(flow, frac)| Op::AckCum { flow, frac }).boxed(),
        2 => (f.clone(), any::<u8>(), 1u64..8)
            .prop_map(|(flow, lo_frac, len)| Op::AckSack { flow, lo_frac, len }).boxed(),
        1 => f.prop_map(|flow| Op::Rto { flow }).boxed(),
        2 => (1u64..5_000_000).prop_map(|nanos| Op::Tick { nanos }).boxed(),
    ]
}

/// Scale `frac`/256 into `[lo, hi]` (inclusive ends).
fn lerp(lo: u64, hi: u64, frac: u8) -> u64 {
    lo + (hi - lo) * u64::from(frac) / 255
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arena and boxed senders observe identical streams under any
    /// interleaving: same plans, same `AckOutcome`s, same scoreboard
    /// observables after every step, same slab-survival after churn.
    #[test]
    fn arena_matches_boxed_senders(
        flows in 1usize..=64,
        ops in proptest::collection::vec(op_strategy(64), 1..300),
    ) {
        let mut arena = FlowArena::new(flows, MSS, PacingConfig::default(), |_| {
            Master::new(CcKind::Bbr.build(MSS), MasterConfig::passthrough())
        });
        let mut boxed: Vec<Sender> = (0..flows).map(|_| Sender::new(MSS)).collect();
        let mut now = SimTime::ZERO;

        for op in &ops {
            match *op {
                Op::Send { flow, cwnd, max_pkts } => {
                    let flow = flow % flows;
                    let f = FlowId(flow as u32);
                    let a = {
                        let mut plan = Default::default();
                        arena
                            .plan_send_into(f, cwnd, max_pkts, &mut plan)
                            .then_some(plan)
                    };
                    let b = boxed[flow].plan_send(cwnd, max_pkts);
                    prop_assert_eq!(&a, &b, "plan diverged on flow {}", flow);
                    if let Some(plan) = a {
                        arena.on_sent(f, &plan, now, false);
                        boxed[flow].on_sent(&plan, now, false);
                    }
                }
                Op::AckCum { flow, frac } => {
                    let flow = flow % flows;
                    let f = FlowId(flow as u32);
                    let board = arena.scoreboard(f);
                    let (una, nxt) = (board.snd_una().0, board.snd_nxt().0);
                    let ack = AckInfo {
                        cum: PktSeq(lerp(una, nxt, frac)),
                        sacks: vec![],
                    };
                    let a = arena.on_ack(f, &ack, now);
                    let b = boxed[flow].on_ack(&ack, now);
                    prop_assert_eq!(
                        format!("{a:?}"),
                        format!("{b:?}"),
                        "cum-ack outcome diverged on flow {}", flow
                    );
                }
                Op::AckSack { flow, lo_frac, len } => {
                    let flow = flow % flows;
                    let f = FlowId(flow as u32);
                    let board = arena.scoreboard(f);
                    let (una, nxt) = (board.snd_una().0, board.snd_nxt().0);
                    if nxt - una < 2 {
                        continue; // nothing sackable above the cum point
                    }
                    let lo = lerp(una + 1, nxt - 1, lo_frac);
                    let hi = (lo + len).min(nxt);
                    let ack = AckInfo {
                        cum: PktSeq(una),
                        sacks: vec![(PktSeq(lo), PktSeq(hi))],
                    };
                    let a = arena.on_ack(f, &ack, now);
                    let b = boxed[flow].on_ack(&ack, now);
                    prop_assert_eq!(
                        format!("{a:?}"),
                        format!("{b:?}"),
                        "sack outcome diverged on flow {}", flow
                    );
                }
                Op::Rto { flow } => {
                    let flow = flow % flows;
                    let a = arena.on_rto(FlowId(flow as u32));
                    let b = boxed[flow].on_rto();
                    prop_assert_eq!(a, b, "rto lost-count diverged on flow {}", flow);
                }
                Op::Tick { nanos } => {
                    now += SimDuration::from_nanos(nanos);
                }
            }
            // Every flow's observables must agree after every step — not
            // just the flow that was touched: cross-flow contamination
            // through the shared slab is exactly the bug class this test
            // exists to catch.
            for (i, s) in boxed.iter().enumerate() {
                let f = FlowId(i as u32);
                let board = arena.scoreboard(f);
                prop_assert_eq!(board.snd_una(), s.snd_una(), "snd_una flow {}", i);
                prop_assert_eq!(board.snd_nxt(), s.snd_nxt(), "snd_nxt flow {}", i);
                prop_assert_eq!(board.packets_out(), s.packets_out(), "packets_out flow {}", i);
                prop_assert_eq!(
                    board.packets_in_flight(),
                    s.packets_in_flight(),
                    "in_flight flow {}", i
                );
                prop_assert_eq!(board.in_recovery(), s.in_recovery(), "recovery flow {}", i);
                prop_assert_eq!(board.total_retx(), s.total_retx(), "retx flow {}", i);
                prop_assert_eq!(
                    arena.delivered_pkts(f),
                    s.delivered_pkts(),
                    "delivered flow {}", i
                );
                prop_assert_eq!(arena.srtt(f), s.rtt.srtt(), "srtt flow {}", i);
            }
        }

        // Drain: cumulatively ack everything everywhere, then the arena's
        // shared slab and each private slab must both see every window
        // emptied (and the identity `misses == takes - reuses` must hold
        // on the shared store).
        for (i, sender) in boxed.iter_mut().enumerate() {
            let f = FlowId(i as u32);
            let nxt = arena.scoreboard(f).snd_nxt();
            let ack = AckInfo { cum: nxt, sacks: vec![] };
            let a = arena.on_ack(f, &ack, now);
            let b = sender.on_ack(&ack, now);
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "drain ack flow {}", i);
            prop_assert_eq!(arena.scoreboard(f).packets_out(), 0);
            prop_assert_eq!(sender.packets_out(), 0);
        }
        let (takes, reuses, misses) = arena.store_stats();
        prop_assert_eq!(misses, takes - reuses, "slab pool identity");
    }
}
