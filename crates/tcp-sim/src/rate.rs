//! Delivery-rate estimation, after Linux's `net/ipv4/tcp_rate.c`
//! (Cheng & Cardwell's "Delivery Rate Estimation" draft).
//!
//! BBR's bandwidth model is only as good as its rate samples. The kernel
//! stamps every transmitted skb with the connection's `delivered` count and
//! two timestamps, and on ACK forms a sample over
//! `interval = max(send_interval, ack_interval)` — using only the send
//! interval would over-estimate on ack-compressed paths (GRO batching on
//! the server compresses acks heavily in our topology, so this detail is
//! load-bearing here).

use serde::{Deserialize, Serialize};
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;

/// Per-segment stamp recorded at transmission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TxStamp {
    /// Connection `delivered` count when this segment was sent.
    pub delivered: u64,
    /// Time the most recent delivery had occurred as of transmission.
    pub delivered_time: SimTime,
    /// Transmission time of the first packet of the current flight
    /// (`tp->first_tx_mstamp`).
    pub first_tx_time: SimTime,
    /// This segment's own transmission time.
    pub tx_time: SimTime,
    /// Whether the connection was application-limited at send time.
    pub app_limited: bool,
    /// Whether the flight preceding this send had been drained by the
    /// *pacer's own idle gate* (a strided pacer sleeps far longer than the
    /// RTT). Samples over such gaps measure the pacer, not the path, and
    /// must not deflate a bandwidth model — the same argument as
    /// app-limited filtering. Stock kernels don't flag this (stride = 1
    /// rarely drains a flight); the paper's stride makes it load-bearing.
    pub pacing_limited: bool,
}

/// One delivery-rate sample produced on ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateSample {
    /// The measured rate (payload bytes per second).
    pub rate: Bandwidth,
    /// Packets delivered over the sampling interval.
    pub delivered_pkts: u64,
    /// The sampling interval (`max(send, ack)` intervals).
    pub interval: SimDuration,
    /// True if the sample is tainted by application limiting.
    pub app_limited: bool,
    /// True if the sample is tainted by the pacer's own idle gate.
    pub pacing_limited: bool,
}

/// Connection-level delivery accounting.
#[derive(Debug, Clone, Serialize)]
pub struct RateSampler {
    mss: u64,
    /// Total packets delivered (cumulatively + selectively acked).
    delivered: u64,
    /// Time of the most recent delivery.
    delivered_time: SimTime,
    /// Transmission time of the first packet of the in-progress flight.
    first_tx_time: SimTime,
    app_limited_until: u64,
}

impl RateSampler {
    /// A fresh sampler for `mss`-byte packets.
    pub fn new(mss: u64) -> Self {
        assert!(mss > 0, "mss must be positive");
        RateSampler {
            mss,
            delivered: 0,
            delivered_time: SimTime::ZERO,
            first_tx_time: SimTime::ZERO,
            app_limited_until: 0,
        }
    }

    /// Total packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Stamp a segment at transmission time. `is_flight_start` marks the
    /// first packet sent after the connection was idle/fully acked, which
    /// restarts the send-interval clock; `pacing_limited` taints the stamp
    /// when that idle was created by the pacer's own gate.
    pub fn on_send(
        &mut self,
        now: SimTime,
        is_flight_start: bool,
        pacing_limited: bool,
    ) -> TxStamp {
        if is_flight_start {
            self.first_tx_time = now;
            if self.delivered_time == SimTime::ZERO {
                self.delivered_time = now;
            }
        }
        TxStamp {
            delivered: self.delivered,
            delivered_time: self.delivered_time,
            first_tx_time: self.first_tx_time,
            tx_time: now,
            app_limited: self.delivered < self.app_limited_until,
            pacing_limited,
        }
    }

    /// Mark the connection application-limited until current inflight is
    /// delivered (`tcp_rate_check_app_limited`).
    pub fn set_app_limited(&mut self, inflight_pkts: u64) {
        self.app_limited_until = self.delivered + inflight_pkts.max(1);
    }

    /// Account `newly_delivered` packets acked at `now`, and produce a rate
    /// sample using the stamp of the most recently sent acked segment.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        newly_delivered: u64,
        stamp: &TxStamp,
    ) -> Option<RateSample> {
        if newly_delivered == 0 {
            return None;
        }
        self.delivered += newly_delivered;
        self.delivered_time = now;
        // Advance the send-interval origin to the acked segment's tx time,
        // so the next sample's send interval starts there.
        self.first_tx_time = stamp.tx_time;

        let delivered_pkts = self.delivered - stamp.delivered;
        let send_interval = stamp.tx_time.saturating_since(stamp.first_tx_time);
        let ack_interval = now.saturating_since(stamp.delivered_time);
        let interval = send_interval.max(ack_interval);
        if interval.is_zero() {
            return None; // degenerate (single packet, zero time): no sample
        }
        Some(RateSample {
            rate: Bandwidth::from_bytes_over(delivered_pkts * self.mss, interval),
            delivered_pkts,
            interval,
            app_limited: stamp.app_limited,
            pacing_limited: stamp.pacing_limited,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_pipe_measures_true_rate() {
        // An 11.58 Mbps stream (one 1448 B packet per ms, 20 ms RTT) in
        // steady state: after the first round has delivered, stamps carry
        // live delivery context and the samples converge on the true rate.
        // (First-flight samples legitimately under-estimate — the kernel's
        // do too — so we measure on the second round.)
        let mut s = RateSampler::new(1448);
        // Round 1: prime the sampler.
        let warm: Vec<_> = (0..10u64)
            .map(|i| s.on_send(SimTime::from_millis(i), i == 0, false))
            .collect();
        for (i, stamp) in warm.iter().enumerate() {
            s.on_ack(SimTime::from_millis(i as u64 + 20), 1, stamp);
        }
        // Round 2: steady state — send i at t=30+i, ack at t=50+i.
        let mut last_rate = None;
        for i in 0..10u64 {
            let stamp = s.on_send(SimTime::from_millis(30 + i), false, false);
            if let Some(rs) = s.on_ack(SimTime::from_millis(50 + i), 1, &stamp) {
                last_rate = Some(rs.rate);
            }
        }
        let rate = last_rate.expect("samples produced");
        let expected = Bandwidth::from_bytes_over(1448, SimDuration::from_millis(1));
        let err =
            (rate.as_bps() as f64 - expected.as_bps() as f64).abs() / expected.as_bps() as f64;
        assert!(err < 0.10, "rate {rate} vs expected {expected}");
    }

    #[test]
    fn ack_compression_does_not_inflate_rate() {
        // Send 10 packets over 9 ms, but all acks arrive in the same
        // microsecond burst: ack_interval ≈ 0 for later samples, so the
        // send interval must dominate and the rate must not explode.
        let mut s = RateSampler::new(1448);
        let mut stamps = Vec::new();
        for i in 0..10u64 {
            stamps.push(s.on_send(SimTime::from_millis(i), i == 0, false));
        }
        let burst = SimTime::from_millis(30);
        let mut max_rate = Bandwidth::ZERO;
        for stamp in &stamps {
            if let Some(rs) = s.on_ack(burst, 1, stamp) {
                max_rate = max_rate.max(rs.rate);
            }
        }
        // True send rate is 1448 B/ms ≈ 11.6 Mbps; allow 2× for the first
        // sample's short interval but nothing like the ∞ a naive
        // ack-interval-only estimator would produce.
        assert!(
            max_rate.as_bps() < 2 * 11_584_000,
            "ack compression inflated rate to {max_rate}"
        );
    }

    #[test]
    fn batched_ack_counts_all_delivered() {
        let mut s = RateSampler::new(1448);
        let stamp0 = s.on_send(SimTime::ZERO, true, false);
        for i in 1..5u64 {
            s.on_send(SimTime::from_micros(i * 100), false, false);
        }
        let _ = stamp0;
        // One ACK covers all 5 packets; stamp of the newest.
        let newest = TxStamp {
            delivered: 0,
            delivered_time: SimTime::ZERO,
            first_tx_time: SimTime::ZERO,
            tx_time: SimTime::from_micros(400),
            app_limited: false,
            pacing_limited: false,
        };
        let rs = s.on_ack(SimTime::from_millis(10), 5, &newest).unwrap();
        assert_eq!(rs.delivered_pkts, 5);
        assert_eq!(s.delivered(), 5);
        // Interval = max(400 µs, 10 ms) = 10 ms → rate = 5·1448B/10ms.
        assert_eq!(rs.interval, SimDuration::from_millis(10));
    }

    #[test]
    fn app_limited_taints_until_flight_drains() {
        let mut s = RateSampler::new(1448);
        s.set_app_limited(3);
        let stamp = s.on_send(SimTime::ZERO, true, false);
        assert!(stamp.app_limited);
        // Deliver 3 packets: the limitation clears.
        s.on_ack(
            SimTime::from_millis(5),
            3,
            &TxStamp {
                tx_time: SimTime::from_millis(1),
                ..stamp
            },
        );
        let stamp2 = s.on_send(SimTime::from_millis(6), true, false);
        assert!(
            !stamp2.app_limited,
            "app-limit must clear after inflight delivered"
        );
    }

    #[test]
    fn zero_delivery_yields_no_sample() {
        let mut s = RateSampler::new(1448);
        let stamp = s.on_send(SimTime::ZERO, true, false);
        assert!(s.on_ack(SimTime::from_millis(1), 0, &stamp).is_none());
        assert_eq!(s.delivered(), 0);
    }

    #[test]
    fn rate_reflects_slower_of_send_and_ack_clocks() {
        // Paced sending at 1 pkt/ms but a 10 Mbps bottleneck delivering
        // acks at 1448B/1.16ms: the *ack* interval governs near steady
        // state. Construct one sample with send interval 1 ms and ack
        // interval 2 ms; the rate must use 2 ms.
        let mut s = RateSampler::new(1448);
        let stamp = TxStamp {
            delivered: 0,
            delivered_time: SimTime::ZERO,
            first_tx_time: SimTime::from_millis(10),
            tx_time: SimTime::from_millis(11), // send interval 1 ms
            app_limited: false,
            pacing_limited: false,
        };
        let rs = s.on_ack(SimTime::from_millis(2), 1, &stamp).unwrap();
        assert_eq!(rs.interval, SimDuration::from_millis(2));
        assert_eq!(
            rs.rate,
            Bandwidth::from_bytes_over(1448, SimDuration::from_millis(2))
        );
    }
}
