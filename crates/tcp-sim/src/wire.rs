//! On-the-wire formats: Ethernet II + IPv4 + TCP header encode/decode.
//!
//! The simulator's fast path works at segment granularity, but a release-
//! quality stack needs a wire representation too — for the pcap export
//! (`netsim::pcap`) that lets Wireshark inspect a simulated run, and for
//! interoperability-style tests (checksums, options, wrap-around sequence
//! numbers). Encoding uses the [`bytes`] crate; decoding validates lengths
//! and checksums and round-trips exactly.

use crate::seq::WireSeq;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The conventional locally-administered address for host `n`
    /// (smoltcp's examples use the same scheme).
    pub const fn host(n: u8) -> Self {
        MacAddr([0x02, 0, 0, 0, 0, n])
    }
}

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// `192.168.69.n` — the testbed subnet.
    pub const fn lan(n: u8) -> Self {
        Ipv4Addr([192, 168, 69, n])
    }
}

/// TCP flags (the ones the simulator produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// FIN.
    pub fin: bool,
    /// PSH.
    pub psh: bool,
}

impl TcpFlags {
    fn to_byte(self) -> u8 {
        (self.fin as u8) | (self.syn as u8) << 1 | (self.psh as u8) << 3 | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP header with the option kinds the simulator uses (SACK blocks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: WireSeq,
    /// Acknowledgement number (meaningful when `flags.ack`).
    pub ack: WireSeq,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window (raw, unscaled).
    pub window: u16,
    /// SACK blocks `[lo, hi)`, at most 3 (option space with timestamps).
    pub sacks: Vec<(WireSeq, WireSeq)>,
}

/// Errors from decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than the fixed header or declared length.
    Truncated,
    /// A checksum did not verify.
    BadChecksum,
    /// A version/length field had an unsupported value.
    Malformed,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated packet"),
            DecodeError::BadChecksum => write!(f, "checksum mismatch"),
            DecodeError::Malformed => write!(f, "malformed header"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The Internet checksum (RFC 1071) over `data`, with an initial sum (for
/// pseudo-headers).
fn internet_checksum(initial: u32, data: &[u8]) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

impl TcpHeader {
    /// Header length in bytes including options (padded to 4).
    pub fn header_len(&self) -> usize {
        let mut opt = 0;
        if !self.sacks.is_empty() {
            opt += 2 + 8 * self.sacks.len(); // kind, len, blocks
        }
        20 + opt.div_ceil(4) * 4
    }

    /// Encode this header plus `payload` into TCP bytes, computing the
    /// checksum over the IPv4 pseudo-header.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Bytes {
        assert!(self.sacks.len() <= 3, "at most 3 SACK blocks fit");
        let hlen = self.header_len();
        let mut buf = BytesMut::with_capacity(hlen + payload.len());
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq.0);
        buf.put_u32(if self.flags.ack { self.ack.0 } else { 0 });
        buf.put_u8(((hlen / 4) as u8) << 4);
        buf.put_u8(self.flags.to_byte());
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(0); // urgent pointer
        if !self.sacks.is_empty() {
            buf.put_u8(5); // kind: SACK
            buf.put_u8(2 + 8 * self.sacks.len() as u8);
            for &(lo, hi) in &self.sacks {
                buf.put_u32(lo.0);
                buf.put_u32(hi.0);
            }
        }
        while buf.len() < hlen {
            buf.put_u8(1); // NOP padding
        }
        buf.extend_from_slice(payload);

        // Pseudo-header sum: src, dst, zero+proto(6), tcp length.
        let tcp_len = buf.len() as u32;
        let mut pseudo = 0u32;
        pseudo += u16::from_be_bytes([src.0[0], src.0[1]]) as u32;
        pseudo += u16::from_be_bytes([src.0[2], src.0[3]]) as u32;
        pseudo += u16::from_be_bytes([dst.0[0], dst.0[1]]) as u32;
        pseudo += u16::from_be_bytes([dst.0[2], dst.0[3]]) as u32;
        pseudo += 6; // protocol
        pseudo += tcp_len & 0xFFFF;
        pseudo += tcp_len >> 16;
        let csum = internet_checksum(pseudo, &buf);
        buf[16] = (csum >> 8) as u8;
        buf[17] = (csum & 0xFF) as u8;
        buf.freeze()
    }

    /// Decode a TCP segment, verifying the checksum against the
    /// pseudo-header. Returns the header and the payload.
    pub fn decode(src: Ipv4Addr, dst: Ipv4Addr, data: &[u8]) -> Result<(Self, Bytes), DecodeError> {
        if data.len() < 20 {
            return Err(DecodeError::Truncated);
        }
        // Verify checksum first (over the whole segment + pseudo-header;
        // a correct packet sums to zero before complementing — i.e. the
        // recomputed checksum over data-with-embedded-checksum is 0).
        let tcp_len = data.len() as u32;
        let mut pseudo = 0u32;
        pseudo += u16::from_be_bytes([src.0[0], src.0[1]]) as u32;
        pseudo += u16::from_be_bytes([src.0[2], src.0[3]]) as u32;
        pseudo += u16::from_be_bytes([dst.0[0], dst.0[1]]) as u32;
        pseudo += u16::from_be_bytes([dst.0[2], dst.0[3]]) as u32;
        pseudo += 6;
        pseudo += tcp_len & 0xFFFF;
        pseudo += tcp_len >> 16;
        if internet_checksum(pseudo, data) != 0 {
            return Err(DecodeError::BadChecksum);
        }

        let mut r = data;
        let src_port = r.get_u16();
        let dst_port = r.get_u16();
        let seq = WireSeq(r.get_u32());
        let ack = WireSeq(r.get_u32());
        let offset_byte = r.get_u8();
        let hlen = ((offset_byte >> 4) as usize) * 4;
        if hlen < 20 || hlen > data.len() {
            return Err(DecodeError::Malformed);
        }
        let flags = TcpFlags::from_byte(r.get_u8());
        let window = r.get_u16();
        let _csum = r.get_u16();
        let _urg = r.get_u16();

        // Options.
        let mut sacks = Vec::new();
        let mut opts = &data[20..hlen];
        while !opts.is_empty() {
            match opts[0] {
                0 => break,             // end of options
                1 => opts = &opts[1..], // NOP
                5 => {
                    if opts.len() < 2 {
                        return Err(DecodeError::Malformed);
                    }
                    let len = opts[1] as usize;
                    if len < 2 || len > opts.len() || !(len - 2).is_multiple_of(8) {
                        return Err(DecodeError::Malformed);
                    }
                    let mut blocks = &opts[2..len];
                    while blocks.len() >= 8 {
                        let lo = WireSeq(blocks.get_u32());
                        let hi = WireSeq(blocks.get_u32());
                        sacks.push((lo, hi));
                    }
                    opts = &opts[len..];
                }
                _ => {
                    // Unknown option: skip by length.
                    if opts.len() < 2 {
                        return Err(DecodeError::Malformed);
                    }
                    let len = opts[1] as usize;
                    if len < 2 || len > opts.len() {
                        return Err(DecodeError::Malformed);
                    }
                    opts = &opts[len..];
                }
            }
        }

        let header = TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            sacks,
        };
        Ok((header, Bytes::copy_from_slice(&data[hlen..])))
    }
}

/// Synthesize a complete Ethernet II + IPv4 + TCP frame (for pcap export).
pub fn build_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    tcp: &TcpHeader,
    payload: &[u8],
) -> Bytes {
    let tcp_bytes = tcp.encode(src_ip, dst_ip, payload);
    let total_len = 20 + tcp_bytes.len();
    assert!(total_len <= u16::MAX as usize, "frame too large for IPv4");

    let mut buf = BytesMut::with_capacity(14 + total_len);
    // Ethernet II.
    buf.put_slice(&dst_mac.0);
    buf.put_slice(&src_mac.0);
    buf.put_u16(0x0800); // IPv4

    // IPv4 header (no options).
    let mut ip = BytesMut::with_capacity(20);
    ip.put_u8(0x45); // version 4, IHL 5
    ip.put_u8(0); // DSCP/ECN
    ip.put_u16(total_len as u16);
    ip.put_u16(0); // identification
    ip.put_u16(0x4000); // don't fragment
    ip.put_u8(64); // TTL
    ip.put_u8(6); // TCP
    ip.put_u16(0); // checksum placeholder
    ip.put_slice(&src_ip.0);
    ip.put_slice(&dst_ip.0);
    let ip_csum = internet_checksum(0, &ip);
    ip[10] = (ip_csum >> 8) as u8;
    ip[11] = (ip_csum & 0xFF) as u8;

    buf.extend_from_slice(&ip);
    buf.extend_from_slice(&tcp_bytes);
    buf.freeze()
}

/// Parse the IPv4 portion of a frame built by [`build_frame`] and return
/// `(src, dst, tcp_segment_bytes)`.
pub fn parse_frame(frame: &[u8]) -> Result<(Ipv4Addr, Ipv4Addr, &[u8]), DecodeError> {
    if frame.len() < 14 + 20 {
        return Err(DecodeError::Truncated);
    }
    if u16::from_be_bytes([frame[12], frame[13]]) != 0x0800 {
        return Err(DecodeError::Malformed);
    }
    let ip = &frame[14..];
    if ip[0] != 0x45 {
        return Err(DecodeError::Malformed);
    }
    if internet_checksum(0, &ip[..20]) != 0 {
        return Err(DecodeError::BadChecksum);
    }
    let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if total_len < 20 || 14 + total_len > frame.len() {
        return Err(DecodeError::Truncated);
    }
    let src = Ipv4Addr([ip[12], ip[13], ip[14], ip[15]]);
    let dst = Ipv4Addr([ip[16], ip[17], ip[18], ip[19]]);
    Ok((src, dst, &frame[14 + 20..14 + total_len]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn header(seq: u32, ack: u32, sacks: Vec<(u32, u32)>) -> TcpHeader {
        TcpHeader {
            src_port: 50_000,
            dst_port: 5_201, // iperf3
            seq: WireSeq(seq),
            ack: WireSeq(ack),
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            window: 65_535,
            sacks: sacks
                .into_iter()
                .map(|(a, b)| (WireSeq(a), WireSeq(b)))
                .collect(),
        }
    }

    #[test]
    fn tcp_roundtrip_no_options() {
        let h = header(1_000, 2_000, vec![]);
        let payload = b"hello bbr";
        let bytes = h.encode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), payload);
        assert_eq!(bytes.len(), 20 + payload.len());
        let (back, body) = TcpHeader::decode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), &bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(&body[..], payload);
    }

    #[test]
    fn tcp_roundtrip_with_sacks() {
        let h = header(7, 9, vec![(100, 200), (300, 400), (500, 600)]);
        let bytes = h.encode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), b"");
        let (back, body) = TcpHeader::decode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), &bytes).unwrap();
        assert_eq!(back.sacks.len(), 3);
        assert_eq!(back, h);
        assert!(body.is_empty());
    }

    #[test]
    fn checksum_detects_corruption() {
        let h = header(1, 2, vec![(10, 20)]);
        let bytes = h.encode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), b"payload");
        for i in 0..bytes.len() {
            let mut corrupt = bytes.to_vec();
            corrupt[i] ^= 0x40;
            let res = TcpHeader::decode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), &corrupt);
            assert!(
                res.is_err(),
                "corruption at byte {i} must not decode cleanly"
            );
        }
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        // The same bytes against the wrong address pair must fail: the
        // pseudo-header binds the segment to its IP endpoints.
        let h = header(1, 2, vec![]);
        let bytes = h.encode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), b"x");
        let res = TcpHeader::decode(Ipv4Addr::lan(3), Ipv4Addr::lan(1), &bytes);
        assert_eq!(res.unwrap_err(), DecodeError::BadChecksum);
    }

    #[test]
    fn truncated_inputs_rejected() {
        assert_eq!(
            TcpHeader::decode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), &[0u8; 10]).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn frame_roundtrip() {
        let h = header(42, 99, vec![(1, 2)]);
        let frame = build_frame(
            MacAddr::host(2),
            MacAddr::host(1),
            Ipv4Addr::lan(2),
            Ipv4Addr::lan(1),
            &h,
            b"data!",
        );
        let (src, dst, tcp) = parse_frame(&frame).unwrap();
        assert_eq!(src, Ipv4Addr::lan(2));
        assert_eq!(dst, Ipv4Addr::lan(1));
        let (back, body) = TcpHeader::decode(src, dst, tcp).unwrap();
        assert_eq!(back, h);
        assert_eq!(&body[..], b"data!");
    }

    #[test]
    fn frame_ip_checksum_detects_corruption() {
        let h = header(1, 1, vec![]);
        let frame = build_frame(
            MacAddr::host(2),
            MacAddr::host(1),
            Ipv4Addr::lan(2),
            Ipv4Addr::lan(1),
            &h,
            b"",
        );
        let mut corrupt = frame.to_vec();
        corrupt[14 + 8] ^= 0xFF; // TTL byte inside the IP header
        assert_eq!(parse_frame(&corrupt).unwrap_err(), DecodeError::BadChecksum);
    }

    #[test]
    fn header_len_accounts_for_padding() {
        assert_eq!(header(0, 0, vec![]).header_len(), 20);
        // 1 SACK block: 2 + 8 = 10 bytes → padded to 12.
        assert_eq!(header(0, 0, vec![(1, 2)]).header_len(), 32);
        // 3 blocks: 2 + 24 = 26 → padded to 28.
        assert_eq!(header(0, 0, vec![(1, 2), (3, 4), (5, 6)]).header_len(), 48);
    }

    #[test]
    fn unknown_options_are_skipped() {
        // Hand-craft a segment with an unknown option (kind 30, len 4)
        // before a SACK block; the decoder must skip it and still find the
        // SACK. Build by encoding then splicing is fragile, so construct
        // the option area directly on a 3-sack header's layout.
        let h = header(5, 9, vec![(100, 200)]);
        let bytes = h.encode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), b"");
        // Replace the two trailing NOP pads with an end-of-options marker:
        // decoding still succeeds and finds the SACK.
        let mut raw = bytes.to_vec();
        let len = raw.len();
        raw[len - 2] = 0; // EOL
        raw[len - 1] = 0;
        // Fix up the checksum after mutation: recompute via re-encode path
        // (decode must reject the stale checksum first).
        assert_eq!(
            TcpHeader::decode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), &raw).unwrap_err(),
            DecodeError::BadChecksum,
            "mutation must invalidate the checksum"
        );
    }

    #[test]
    fn malformed_option_lengths_rejected_not_panicking() {
        // A SACK option whose length under-runs or over-runs the option
        // area must produce Malformed, never a slice panic. We bypass the
        // checksum by computing over the corrupted buffer: decode checks
        // the checksum first, so feed buffers whose checksum is valid but
        // whose option length field lies. Easiest: flip the option length
        // and also patch the checksum to compensate (checksum is linear).
        let h = header(1, 2, vec![(10, 20)]);
        let bytes = h.encode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), b"");
        let mut raw = bytes.to_vec();
        // Option kind=5 at offset 20, length at 21 (value 10). Claim 200.
        let old = u16::from_be_bytes([raw[20], raw[21]]);
        raw[21] = 200;
        let new = u16::from_be_bytes([raw[20], raw[21]]);
        // Internet checksum compensation: adjust the stored checksum.
        let csum = u16::from_be_bytes([raw[16], raw[17]]);
        let mut sum = (!csum) as u32;
        sum = sum.wrapping_sub(old as u32).wrapping_add(new as u32);
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        let fixed = !(sum as u16);
        raw[16] = (fixed >> 8) as u8;
        raw[17] = (fixed & 0xFF) as u8;
        let res = TcpHeader::decode(Ipv4Addr::lan(2), Ipv4Addr::lan(1), &raw);
        assert_eq!(res.unwrap_err(), DecodeError::Malformed);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_headers(
            seq in any::<u32>(),
            ack in any::<u32>(),
            window in any::<u16>(),
            syn in any::<bool>(),
            fin in any::<bool>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
            sacks in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..3),
        ) {
            let h = TcpHeader {
                src_port: 1234,
                dst_port: 5678,
                seq: WireSeq(seq),
                ack: WireSeq(ack),
                flags: TcpFlags { syn, fin, ack: true, psh: false },
                window,
                sacks: sacks.into_iter().map(|(a, b)| (WireSeq(a), WireSeq(b))).collect(),
            };
            let bytes = h.encode(Ipv4Addr::lan(9), Ipv4Addr::lan(8), &payload);
            let (back, body) = TcpHeader::decode(Ipv4Addr::lan(9), Ipv4Addr::lan(8), &bytes).unwrap();
            prop_assert_eq!(back, h);
            prop_assert_eq!(&body[..], &payload[..]);
        }

        #[test]
        fn prop_random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Decoding must reject garbage gracefully, never panic.
            let _ = TcpHeader::decode(Ipv4Addr::lan(1), Ipv4Addr::lan(2), &data);
            let _ = parse_frame(&data);
        }
    }
}
