//! Small free-list pools for the simulator's hot-path buffers.
//!
//! The event loop moves two kinds of owned buffers through the event queue
//! on every data round-trip: a run-list `Vec<(PktSeq, PktSeq)>` riding the
//! `SkbArrival` event, and an `AckInfo` SACK vector riding `AckArrival`.
//! Allocating them per event would put `malloc` on the per-segment path —
//! exactly what the timer-wheel refactor removed from the timer side.
//! [`VecPool`] recycles them instead: a buffer is taken when the event is
//! built and returned (cleared, capacity kept) when the event is consumed,
//! so steady state runs entirely on warm capacity.
//!
//! The pool deliberately never shrinks; buffers here are a few dozen
//! elements at most and the population is bounded by the number of events
//! in flight (≤ a few per connection).

/// A free list of `Vec<T>` buffers that keeps capacity across uses.
///
/// `misses` is not derived from the other two counters — all three are
/// maintained independently so the identity `misses == takes − reuses`
/// is a genuine cross-check (a simcheck oracle), not a tautology.
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
    takes: u64,
    reuses: u64,
    misses: u64,
}

impl<T> VecPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        VecPool {
            free: Vec::new(),
            takes: 0,
            reuses: 0,
            misses: 0,
        }
    }

    /// Take a cleared buffer, reusing capacity when one is free.
    pub fn take(&mut self) -> Vec<T> {
        self.takes += 1;
        match self.free.pop() {
            Some(v) => {
                self.reuses += 1;
                v
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a buffer to the pool; contents are dropped, capacity kept.
    pub fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        self.free.push(v);
    }

    /// Number of `take` calls that had to build a fresh buffer. In steady
    /// state this stops growing: every event's buffer comes back via
    /// [`VecPool::put`] before the next one is needed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total `take` calls (hits + misses).
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// `take` calls satisfied from the free list (warm capacity reused).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_capacity() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut a = pool.take();
        assert_eq!(pool.misses(), 1);
        a.extend(0..100);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take();
        assert_eq!(pool.misses(), 1, "second take must be a pool hit");
        assert!(b.is_empty(), "pooled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn misses_count_only_cold_takes() {
        let mut pool: VecPool<u8> = VecPool::new();
        let (a, b) = (pool.take(), pool.take());
        assert_eq!(pool.misses(), 2);
        pool.put(a);
        pool.put(b);
        let _ = (pool.take(), pool.take());
        assert_eq!(pool.misses(), 2);
    }

    /// The accounting identity `misses == takes − reuses` under scripted
    /// churn: hold a varying number of buffers out of the pool so every
    /// combination of cold take, warm take, and deferred return occurs.
    #[test]
    fn churn_preserves_miss_identity() {
        let mut pool: VecPool<u32> = VecPool::new();
        let mut held: Vec<Vec<u32>> = Vec::new();
        for round in 0..50u32 {
            // Grow the outstanding set on even rounds, shrink on odd.
            let want = if round % 2 == 0 {
                (round % 7) as usize + 1
            } else {
                (round % 3) as usize
            };
            while held.len() < want {
                held.push(pool.take());
            }
            while held.len() > want {
                pool.put(held.pop().unwrap());
            }
            assert_eq!(
                pool.misses(),
                pool.takes() - pool.reuses(),
                "identity broken at round {round}"
            );
        }
        for v in held.drain(..) {
            pool.put(v);
        }
        assert_eq!(pool.misses(), pool.takes() - pool.reuses());
        // The peak outstanding population bounds cold takes.
        assert!(pool.misses() <= 7, "cold takes exceed peak population");
        assert!(pool.reuses() > 0, "churn never hit warm capacity");
    }
}
