//! Small free-list pools and slabs for the simulator's hot-path buffers.
//!
//! The event loop moves two kinds of owned buffers through the event queue
//! on every data round-trip: a run-list `Vec<(PktSeq, PktSeq)>` riding the
//! `SkbArrival` event, and an `AckInfo` SACK vector riding `AckArrival`.
//! Allocating them per event would put `malloc` on the per-segment path —
//! exactly what the timer-wheel refactor removed from the timer side.
//! [`VecPool`] recycles them instead: a buffer is taken when the event is
//! built and returned (cleared, capacity kept) when the event is consumed,
//! so steady state runs entirely on warm capacity.
//!
//! Three more structures serve the flow arena:
//!
//! * [`SlotStore`] parks an owned buffer under a `u32` id so events can
//!   carry the id instead of the buffer — a timer-wheel cell then moves a
//!   handful of words instead of a whole `Vec` header, which matters when
//!   thousands of flows keep tens of thousands of cells in flight;
//! * [`SegSlab`] is one shared chunked slab that every flow's segment
//!   scoreboard is carved from, replacing a per-flow growable ring with
//!   chunk handles into a single allocation (the "scoreboard-slab" pool
//!   category);
//! * [`SlabDeque`] is the per-flow window view over a [`SegSlab`]: a
//!   chunk-id list plus head/length, supporting O(1) push-back, pop-front
//!   and random indexing — the three operations a TCP scoreboard needs.
//!
//! Every pool keeps `takes`, `reuses`, and `misses` as independent
//! counters so the per-category identity `misses == takes − reuses` is a
//! genuine cross-check (a simcheck oracle), not a tautology. The pools
//! deliberately never shrink; populations are bounded by events in flight
//! and the peak aggregate window.

/// A free list of `Vec<T>` buffers that keeps capacity across uses.
///
/// `misses` is not derived from the other two counters — all three are
/// maintained independently so the identity `misses == takes − reuses`
/// is a genuine cross-check (a simcheck oracle), not a tautology.
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
    takes: u64,
    reuses: u64,
    misses: u64,
}

impl<T> VecPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        VecPool {
            free: Vec::new(),
            takes: 0,
            reuses: 0,
            misses: 0,
        }
    }

    /// Take a cleared buffer, reusing capacity when one is free.
    pub fn take(&mut self) -> Vec<T> {
        self.takes += 1;
        match self.free.pop() {
            Some(v) => {
                self.reuses += 1;
                v
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a buffer to the pool; contents are dropped, capacity kept.
    pub fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        self.free.push(v);
    }

    /// Number of `take` calls that had to build a fresh buffer. In steady
    /// state this stops growing: every event's buffer comes back via
    /// [`VecPool::put`] before the next one is needed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total `take` calls (hits + misses).
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// `take` calls satisfied from the free list (warm capacity reused).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Parks owned buffers under dense `u32` ids so events can ride the timer
/// wheel as a handful of words.
///
/// [`SlotStore::stash`] moves a full buffer into a free slot and returns
/// its id; [`SlotStore::unstash`] moves it back out and recycles the slot.
/// The store holds only *in-flight* buffers (stashed, not yet unstashed) —
/// capacity recycling of the buffers themselves stays the [`VecPool`]'s
/// job, so the two compose: take from the pool, fill, stash; unstash,
/// drain, put back.
pub struct SlotStore<T> {
    slots: Vec<Vec<T>>,
    free: Vec<u32>,
}

impl<T> SlotStore<T> {
    /// An empty store.
    pub fn new() -> Self {
        SlotStore {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Park `v` and return its slot id.
    pub fn stash(&mut self, v: Vec<T>) -> u32 {
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = v;
                id
            }
            None => {
                let id = u32::try_from(self.slots.len()).expect("slot ids fit u32");
                self.slots.push(v);
                id
            }
        }
    }

    /// Take the buffer parked under `id` back out, freeing the slot.
    pub fn unstash(&mut self, id: u32) -> Vec<T> {
        let v = std::mem::take(&mut self.slots[id as usize]);
        self.free.push(id);
        v
    }
}

impl<T> Default for SlotStore<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Segments per [`SegSlab`] chunk. 64 keeps a chunk around one page for
/// scoreboard-sized records and makes the index arithmetic a shift/mask.
pub const SEG_CHUNK: usize = 64;

/// One shared chunked slab that every flow's segment scoreboard is carved
/// from (the "scoreboard-slab" pool category).
///
/// Storage is a single `Vec<T>` grown a chunk at a time; freed chunks go
/// on a free list and are handed back to whichever flow's window grows
/// next. Compared with a growable per-flow ring this (a) shares one
/// allocation across every flow, (b) caps growth-copy churn at one shared
/// `Vec`, and (c) lets a thousand mostly-idle flows occupy a few warm
/// chunks instead of a thousand cold ones.
pub struct SegSlab<T> {
    store: Vec<T>,
    free: Vec<u32>,
    takes: u64,
    reuses: u64,
    misses: u64,
}

impl<T: Default> SegSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        SegSlab {
            store: Vec::new(),
            free: Vec::new(),
            takes: 0,
            reuses: 0,
            misses: 0,
        }
    }

    /// Allocate a chunk, preferring the free list.
    pub fn alloc_chunk(&mut self) -> u32 {
        self.takes += 1;
        match self.free.pop() {
            Some(id) => {
                self.reuses += 1;
                id
            }
            None => {
                self.misses += 1;
                let id = u32::try_from(self.store.len() / SEG_CHUNK).expect("chunk ids fit u32");
                self.store.extend((0..SEG_CHUNK).map(|_| T::default()));
                id
            }
        }
    }

    /// Return a chunk to the free list. Contents are left in place (they
    /// are overwritten before the next reader sees them).
    pub fn free_chunk(&mut self, id: u32) {
        self.free.push(id);
    }

    /// The record at `off` within chunk `id`.
    #[inline]
    pub fn get(&self, id: u32, off: usize) -> &T {
        debug_assert!(off < SEG_CHUNK);
        &self.store[id as usize * SEG_CHUNK + off]
    }

    /// Mutable access to the record at `off` within chunk `id`.
    #[inline]
    pub fn get_mut(&mut self, id: u32, off: usize) -> &mut T {
        debug_assert!(off < SEG_CHUNK);
        &mut self.store[id as usize * SEG_CHUNK + off]
    }

    /// Chunk allocations that had to grow the backing store.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total chunk allocations (hits + misses).
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// Chunk allocations served from the free list.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

impl<T: Default> Default for SegSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A per-flow double-ended window over a shared [`SegSlab`]: an ordered
/// chunk-id list plus a head offset and length.
///
/// Supports exactly what a TCP scoreboard needs — `push_back` as new
/// segments are sent, `pop_front` as the cumulative ACK advances, and O(1)
/// indexing by `seq − snd_una` — while the segment records themselves
/// live in the slab.
#[derive(Debug, Clone, Default)]
pub struct SlabDeque {
    chunks: Vec<u32>,
    head: usize,
    len: usize,
}

impl SlabDeque {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a record at the back, allocating a chunk when the tail
    /// crosses a chunk boundary.
    pub fn push_back<T: Default>(&mut self, slab: &mut SegSlab<T>, v: T) {
        let tail = self.head + self.len;
        if tail == self.chunks.len() * SEG_CHUNK {
            self.chunks.push(slab.alloc_chunk());
        }
        let (c, off) = (tail / SEG_CHUNK, tail % SEG_CHUNK);
        *slab.get_mut(self.chunks[c], off) = v;
        self.len += 1;
    }

    /// Remove and return the front record; frees its chunk when the head
    /// crosses a chunk boundary.
    pub fn pop_front<T: Default>(&mut self, slab: &mut SegSlab<T>) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let v = std::mem::take(slab.get_mut(self.chunks[0], self.head));
        self.head += 1;
        self.len -= 1;
        if self.head == SEG_CHUNK {
            slab.free_chunk(self.chunks.remove(0));
            self.head = 0;
        } else if self.len == 0 {
            // Window drained mid-chunk: rewind so a long-idle flow holds
            // at most one warm chunk.
            self.head = 0;
            if let Some(id) = self.chunks.pop() {
                slab.free_chunk(id);
            }
        }
        Some(v)
    }

    /// Drop the front `n` records without reading them, freeing whole
    /// chunks as the head crosses their boundaries.
    ///
    /// Dropped slots keep their stale contents: every slot is overwritten
    /// by [`Self::push_back`] before it re-enters the window, so no reader
    /// can observe them. This is what makes a cumulative-ACK advance O(n)
    /// cheap reads + one head bump instead of n `mem::take` round trips.
    pub fn drop_front<T: Default>(&mut self, slab: &mut SegSlab<T>, n: usize) {
        debug_assert!(n <= self.len);
        self.head += n;
        self.len -= n;
        while self.head >= SEG_CHUNK {
            slab.free_chunk(self.chunks.remove(0));
            self.head -= SEG_CHUNK;
        }
        if self.len == 0 && self.head != 0 {
            // Window drained mid-chunk: rewind so a long-idle flow holds
            // at most one warm chunk.
            self.head = 0;
            if let Some(id) = self.chunks.pop() {
                slab.free_chunk(id);
            }
        }
    }

    /// The record at window index `i` (0 = front).
    #[inline]
    pub fn get<'a, T: Default>(&self, slab: &'a SegSlab<T>, i: usize) -> &'a T {
        debug_assert!(i < self.len);
        let pos = self.head + i;
        slab.get(self.chunks[pos / SEG_CHUNK], pos % SEG_CHUNK)
    }

    /// Mutable access to the record at window index `i`.
    #[inline]
    pub fn get_mut<'a, T: Default>(&self, slab: &'a mut SegSlab<T>, i: usize) -> &'a mut T {
        debug_assert!(i < self.len);
        let pos = self.head + i;
        slab.get_mut(self.chunks[pos / SEG_CHUNK], pos % SEG_CHUNK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_capacity() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut a = pool.take();
        assert_eq!(pool.misses(), 1);
        a.extend(0..100);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take();
        assert_eq!(pool.misses(), 1, "second take must be a pool hit");
        assert!(b.is_empty(), "pooled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn misses_count_only_cold_takes() {
        let mut pool: VecPool<u8> = VecPool::new();
        let (a, b) = (pool.take(), pool.take());
        assert_eq!(pool.misses(), 2);
        pool.put(a);
        pool.put(b);
        let _ = (pool.take(), pool.take());
        assert_eq!(pool.misses(), 2);
    }

    /// The accounting identity `misses == takes − reuses` under scripted
    /// churn: hold a varying number of buffers out of the pool so every
    /// combination of cold take, warm take, and deferred return occurs.
    #[test]
    fn churn_preserves_miss_identity() {
        let mut pool: VecPool<u32> = VecPool::new();
        let mut held: Vec<Vec<u32>> = Vec::new();
        for round in 0..50u32 {
            // Grow the outstanding set on even rounds, shrink on odd.
            let want = if round % 2 == 0 {
                (round % 7) as usize + 1
            } else {
                (round % 3) as usize
            };
            while held.len() < want {
                held.push(pool.take());
            }
            while held.len() > want {
                pool.put(held.pop().unwrap());
            }
            assert_eq!(
                pool.misses(),
                pool.takes() - pool.reuses(),
                "identity broken at round {round}"
            );
        }
        for v in held.drain(..) {
            pool.put(v);
        }
        assert_eq!(pool.misses(), pool.takes() - pool.reuses());
        // The peak outstanding population bounds cold takes.
        assert!(pool.misses() <= 7, "cold takes exceed peak population");
        assert!(pool.reuses() > 0, "churn never hit warm capacity");
    }

    #[test]
    fn slot_store_round_trips_and_recycles_ids() {
        let mut store: SlotStore<u64> = SlotStore::new();
        let a = store.stash(vec![1, 2, 3]);
        let b = store.stash(vec![4]);
        assert_ne!(a, b);
        assert_eq!(store.unstash(a), vec![1, 2, 3]);
        // Freed slot id is reused before a new one is minted.
        let c = store.stash(vec![5, 6]);
        assert_eq!(c, a, "freed slot must be recycled");
        assert_eq!(store.unstash(b), vec![4]);
        assert_eq!(store.unstash(c), vec![5, 6]);
    }

    #[test]
    fn slab_deque_fifo_and_indexing() {
        let mut slab: SegSlab<u64> = SegSlab::new();
        let mut dq = SlabDeque::new();
        // Span several chunks.
        for i in 0..(3 * SEG_CHUNK as u64 + 7) {
            dq.push_back(&mut slab, i);
        }
        assert_eq!(dq.len(), 3 * SEG_CHUNK + 7);
        for i in 0..dq.len() {
            assert_eq!(*dq.get(&slab, i), i as u64);
        }
        for want in 0..(3 * SEG_CHUNK as u64 + 7) {
            assert_eq!(dq.pop_front(&mut slab), Some(want));
        }
        assert!(dq.is_empty());
        assert_eq!(dq.pop_front(&mut slab), None);
    }

    #[test]
    fn slab_chunks_are_shared_across_windows() {
        let mut slab: SegSlab<u32> = SegSlab::new();
        let mut a = SlabDeque::new();
        for i in 0..SEG_CHUNK as u32 {
            a.push_back(&mut slab, i);
        }
        let cold_misses = slab.misses();
        // Drain A fully: its chunk goes back to the free list…
        while a.pop_front(&mut slab).is_some() {}
        // …and B's first chunk comes from there, not fresh growth.
        let mut b = SlabDeque::new();
        b.push_back(&mut slab, 99);
        assert_eq!(slab.misses(), cold_misses, "chunk must be reused");
        assert!(slab.reuses() > 0);
        assert_eq!(*b.get(&slab, 0), 99);
        assert_eq!(slab.misses(), slab.takes() - slab.reuses());
    }

    #[test]
    fn slab_deque_interleaved_push_pop_keeps_order() {
        let mut slab: SegSlab<u64> = SegSlab::new();
        let mut dq = SlabDeque::new();
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        // Sliding-window pattern: grow by 3, shrink by 2, repeatedly.
        for _ in 0..200 {
            for _ in 0..3 {
                dq.push_back(&mut slab, next_in);
                next_in += 1;
            }
            for _ in 0..2 {
                assert_eq!(dq.pop_front(&mut slab), Some(next_out));
                next_out += 1;
            }
            // Random-access view stays consistent with FIFO order.
            assert_eq!(*dq.get(&slab, 0), next_out);
            assert_eq!(*dq.get(&slab, dq.len() - 1), next_in - 1);
        }
        assert_eq!(slab.misses(), slab.takes() - slab.reuses());
    }
}
