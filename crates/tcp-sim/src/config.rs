//! Validated construction of [`SimConfig`]: the builder-first public API.
//!
//! `SimConfig`'s fields are public for one more deprecation cycle, but the
//! supported construction path is [`SimConfig::builder`] →
//! [`SimConfigBuilder::build`], which rejects configurations the simulator
//! would silently mis-run — most notably `warmup >= duration`, which the
//! old `SimConfig::new` accepted and then reported a zero-length
//! measurement window as 0 Mbps. Validation returns the workspace-wide
//! [`sim_core::error::Error::InvalidConfig`] naming the offending field.

use crate::fleet::FleetConfig;
use crate::pacing::PacingConfig;
use crate::sim::SimConfig;
use congestion::master::MasterConfig;
use congestion::CcKind;
use cpu_model::{CostModel, CpuConfig, DeviceProfile};
use netsim::crosstraffic::CrossTrafficConfig;
use netsim::link::LinkConfig;
use netsim::media::{MediaProfile, PathConfig};
use netsim::Qdisc;
use sim_core::error::{Error, Result};
use sim_core::time::SimDuration;

/// Builder for [`SimConfig`] with validation at [`build`](Self::build).
///
/// Starts from the same baseline as the deprecated `SimConfig::new`
/// (Ethernet path, 6 s duration after 1 s warmup, seed 1), then applies
/// setters in call order; nothing is checked until `build()`, so setters
/// can be applied in any order (e.g. `duration` after `warmup`).
///
/// ```
/// use tcp_sim::sim::SimConfig;
/// use congestion::CcKind;
/// use cpu_model::{CpuConfig, DeviceProfile};
///
/// let cfg = SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::HighEnd, CcKind::Bbr, 4)
///     .stride(6)
///     .seed(7)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.connections, 4);
/// ```
#[derive(Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfig {
    /// Start building a configuration: the given CC on the given device
    /// config, Ethernet path, 6 simulated seconds after 1 s of warmup.
    pub fn builder(
        device: DeviceProfile,
        cpu_config: CpuConfig,
        cc: CcKind,
        connections: usize,
    ) -> SimConfigBuilder {
        #[allow(deprecated)] // the builder is the one sanctioned caller
        SimConfigBuilder {
            cfg: SimConfig::new(device, cpu_config, cc, connections),
        }
    }
}

impl SimConfigBuilder {
    /// Replace the network path with a medium's default configuration.
    pub fn media(mut self, media: MediaProfile) -> Self {
        self.cfg.path = media.path_config();
        self
    }

    /// Replace the network path wholesale (custom links/impairments).
    pub fn path(mut self, path: PathConfig) -> Self {
        self.cfg.path = path;
        self
    }

    /// Set the bottleneck (forward-link) queue discipline with its default
    /// AQM parameters — the per-link qdisc axis. Applies to whatever path
    /// the builder currently holds, so call it after
    /// [`media`](Self::media)/[`path`](Self::path). For non-default AQM
    /// parameters set [`LinkConfig::with_codel_config`] on the path
    /// directly.
    pub fn qdisc(mut self, qdisc: Qdisc) -> Self {
        self.cfg.path.forward = self.cfg.path.forward.clone().with_qdisc(qdisc);
        self
    }

    /// Replace the stack operation cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// Replace the master-module (§5) knobs.
    pub fn master(mut self, master: MasterConfig) -> Self {
        self.cfg.master = master;
        self
    }

    /// Replace the whole pacing configuration.
    pub fn pacing(mut self, pacing: PacingConfig) -> Self {
        self.cfg.pacing = pacing;
        self
    }

    /// Set the pacing stride (Eq. 2); 1 is stock kernel behaviour.
    pub fn stride(mut self, stride: u64) -> Self {
        self.cfg.pacing.stride = stride;
        self
    }

    /// Enable/disable the §7.1.2 online stride controller.
    pub fn auto_stride(mut self, on: bool) -> Self {
        self.cfg.pacing.auto_stride = on;
        self
    }

    /// Set the number of parallel connections (the paper sweeps 1–20).
    pub fn connections(mut self, connections: usize) -> Self {
        self.cfg.connections = connections;
        self
    }

    /// Set the total simulated duration.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.cfg.duration = duration;
        self
    }

    /// Set the warmup excluded from goodput measurement.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.cfg.warmup = warmup;
        self
    }

    /// Set the RNG seed (netem draws, WiFi variation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Set the stagger between connection starts.
    pub fn start_stagger(mut self, stagger: SimDuration) -> Self {
        self.cfg.start_stagger = stagger;
        self
    }

    /// Set the server-side ACK coalescing (GRO) window.
    pub fn ack_coalesce(mut self, window: SimDuration) -> Self {
        self.cfg.ack_coalesce = window;
        self
    }

    /// Capture every simulated wire packet to a pcap file.
    pub fn pcap(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.cfg.pcap = Some(path.into());
        self
    }

    /// Add Poisson cross-traffic sharing the uplink bottleneck.
    pub fn cross_traffic(mut self, config: CrossTrafficConfig) -> Self {
        self.cfg.cross_traffic = Some(config);
        self
    }

    /// Set the goodput timeline interval (`None` disables the timeline).
    pub fn sample_interval(mut self, interval: Option<SimDuration>) -> Self {
        self.cfg.sample_interval = interval;
        self
    }

    /// Set the ACK cadence: `None` = GRO-coalescing server, `Some(n)` =
    /// ACK every `n` segments.
    pub fn ack_per_segs(mut self, cadence: Option<u64>) -> Self {
        self.cfg.ack_per_segs = cadence;
        self
    }

    /// Enable flight-data telemetry sampling at the given sim-time
    /// interval (see [`sim_core::telemetry`]). Like `pcap`, a
    /// telemetry-carrying config is never sweep-cached.
    pub fn telemetry(mut self, interval: SimDuration) -> Self {
        self.cfg.telemetry = Some(interval);
        self
    }

    /// Run a multi-device fleet (see [`crate::fleet`]). The builder sets
    /// `connections` to the fleet's total, so the top-level connection
    /// count never disagrees with the population; per-device CPU/CC/media
    /// come from the fleet specs and the top-level `cpu_config`/`cc`/
    /// `path` apply only to non-fleet runs.
    pub fn fleet(mut self, fleet: FleetConfig) -> Self {
        self.cfg.connections = fleet.total_connections();
        self.cfg.fleet = Some(fleet);
        self
    }

    /// Validate and produce the configuration.
    ///
    /// Rejects (as [`Error::InvalidConfig`], naming the field):
    /// zero connections; a zero duration; `warmup >= duration` (the
    /// measurement window would be empty and goodput would read 0 Mbps);
    /// a zero pacing stride or socket-buffer cap; a non-positive or
    /// non-finite pacing fallback gain; zero-capacity or zero-queue path
    /// links; degenerate CoDel parameters (zero target, or an interval
    /// not exceeding the target) on any AQM link including the fleet's
    /// shared bottleneck; FQ-CoDel on the ACK-only reverse path; a zero
    /// ACK cadence; a zero timeline interval; and a zero telemetry
    /// interval.
    pub fn build(self) -> Result<SimConfig> {
        let cfg = self.cfg;
        if cfg.connections == 0 {
            return Err(Error::invalid_config(
                "connections",
                "at least one connection is required",
            ));
        }
        if cfg.duration.is_zero() {
            return Err(Error::invalid_config(
                "duration",
                "simulated duration must be positive",
            ));
        }
        if cfg.warmup >= cfg.duration {
            return Err(Error::invalid_config(
                "warmup",
                format!(
                    "warmup {:?} >= duration {:?} leaves an empty measurement window",
                    cfg.warmup, cfg.duration
                ),
            ));
        }
        if cfg.pacing.stride == 0 {
            return Err(Error::invalid_config(
                "pacing.stride",
                "stride 0 would divide the pacing rate by zero; use 1 for stock behaviour",
            ));
        }
        if cfg.pacing.skb_cap_bytes == 0 {
            return Err(Error::invalid_config(
                "pacing.skb_cap_bytes",
                "a zero socket-buffer cap cannot carry any payload",
            ));
        }
        if !(cfg.pacing.fallback_gain.is_finite() && cfg.pacing.fallback_gain > 0.0) {
            return Err(Error::invalid_config(
                "pacing.fallback_gain",
                format!(
                    "fallback gain must be finite and positive, got {}",
                    cfg.pacing.fallback_gain
                ),
            ));
        }
        for (field, link) in [
            ("path.forward", &cfg.path.forward),
            ("path.reverse", &cfg.path.reverse),
        ] {
            if link.rate.is_zero() {
                return Err(Error::InvalidConfig {
                    field,
                    reason: "link rate must be positive".into(),
                });
            }
            if link.queue_packets == 0 {
                return Err(Error::InvalidConfig {
                    field,
                    reason: "queue must hold at least one packet".into(),
                });
            }
            check_aqm(field, link)?;
        }
        // The reverse path carries only ACKs: one tiny sub-flow per
        // connection, no bulk queue to schedule. FQ-CoDel's fair-share
        // sojourn model is meaningless there (and `Codel` already covers
        // AQM-on-ACKs), so the combination is rejected rather than
        // silently mis-modelled.
        if cfg.path.reverse.qdisc() == Qdisc::FqCodel {
            return Err(Error::invalid_config(
                "path.reverse",
                "FQ-CoDel flow scheduling is not modelled on the ACK-only reverse path; \
                 use Fifo or Codel",
            ));
        }
        if cfg.ack_per_segs == Some(0) {
            return Err(Error::invalid_config(
                "ack_per_segs",
                "an ACK every 0 segments would never acknowledge anything; use None for GRO",
            ));
        }
        if matches!(cfg.sample_interval, Some(iv) if iv.is_zero()) {
            return Err(Error::invalid_config(
                "sample_interval",
                "a zero timeline interval would loop forever; use None to disable",
            ));
        }
        if matches!(cfg.telemetry, Some(iv) if iv.is_zero()) {
            return Err(Error::invalid_config(
                "telemetry",
                "a zero telemetry interval would sample forever; use None to disable",
            ));
        }
        if let Some(fleet) = &cfg.fleet {
            if fleet.devices.is_empty() {
                return Err(Error::invalid_config(
                    "fleet.devices",
                    "a fleet needs at least one device",
                ));
            }
            if let Some(idx) = fleet.devices.iter().position(|d| d.connections == 0) {
                return Err(Error::invalid_config(
                    "fleet.devices",
                    format!("device {idx} has zero connections"),
                ));
            }
            if cfg.connections != fleet.total_connections() {
                return Err(Error::invalid_config(
                    "connections",
                    format!(
                        "connections {} != fleet total {} (use .fleet() last or leave \
                         connections to the builder)",
                        cfg.connections,
                        fleet.total_connections()
                    ),
                ));
            }
            if let Some(shared) = &fleet.shared {
                if shared.rate.is_zero() {
                    return Err(Error::invalid_config(
                        "fleet.shared",
                        "shared link rate must be positive",
                    ));
                }
                if shared.queue_packets == 0 {
                    return Err(Error::invalid_config(
                        "fleet.shared",
                        "shared queue must hold at least one packet",
                    ));
                }
                check_aqm("fleet.shared", shared)?;
            }
            if cfg.pacing.auto_stride {
                return Err(Error::invalid_config(
                    "pacing.auto_stride",
                    "the online stride controller adapts one host CPU and cannot \
                     steer a heterogeneous fleet; set per-run strides instead",
                ));
            }
        }
        Ok(cfg)
    }
}

/// Validate a link's AQM parameters (when it has any): CoDel's control
/// law divides by `interval` and compares sojourn against `target`, so a
/// zero target or an interval not exceeding the target would drop every
/// packet (or panic in `Codel::new`) instead of managing the queue.
fn check_aqm(field: &'static str, link: &LinkConfig) -> Result<()> {
    if let Some(codel) = &link.codel {
        if codel.target.is_zero() {
            return Err(Error::InvalidConfig {
                field,
                reason: "CoDel target must be positive".into(),
            });
        }
        if codel.interval <= codel.target {
            return Err(Error::InvalidConfig {
                field,
                reason: format!(
                    "CoDel interval {:?} must exceed target {:?}",
                    codel.interval, codel.target
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfigBuilder {
        SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::HighEnd, CcKind::Bbr, 2)
    }

    fn field_of(err: Error) -> &'static str {
        match err {
            Error::InvalidConfig { field, .. } => field,
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn baseline_builds() {
        let cfg = base().build().expect("baseline must be valid");
        assert_eq!(cfg.connections, 2);
        assert!(cfg.warmup < cfg.duration);
    }

    #[test]
    fn rejects_zero_connections() {
        assert_eq!(
            field_of(base().connections(0).build().unwrap_err()),
            "connections"
        );
    }

    #[test]
    fn rejects_empty_measurement_window() {
        // The regression the builder exists for: SimConfig::new accepted
        // warmup >= duration and reported 0 Mbps from the empty window.
        let err = base()
            .duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_secs(5))
            .build()
            .unwrap_err();
        assert_eq!(field_of(err), "warmup");
        let err = base()
            .duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_secs(2))
            .build()
            .unwrap_err();
        assert_eq!(field_of(err), "warmup");
        assert!(base()
            .duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_millis(1999))
            .build()
            .is_ok());
    }

    #[test]
    fn rejects_zero_duration() {
        let err = base()
            .duration(SimDuration::from_secs(0))
            .warmup(SimDuration::from_secs(0))
            .build()
            .unwrap_err();
        assert_eq!(field_of(err), "duration");
    }

    #[test]
    fn rejects_degenerate_pacing() {
        assert_eq!(
            field_of(base().stride(0).build().unwrap_err()),
            "pacing.stride"
        );
        let mut pacing = PacingConfig {
            skb_cap_bytes: 0,
            ..PacingConfig::default()
        };
        assert_eq!(
            field_of(base().pacing(pacing).build().unwrap_err()),
            "pacing.skb_cap_bytes"
        );
        pacing.skb_cap_bytes = 15_000;
        pacing.fallback_gain = 0.0;
        assert_eq!(
            field_of(base().pacing(pacing).build().unwrap_err()),
            "pacing.fallback_gain"
        );
        pacing.fallback_gain = f64::NAN;
        assert_eq!(
            field_of(base().pacing(pacing).build().unwrap_err()),
            "pacing.fallback_gain"
        );
    }

    #[test]
    fn rejects_zero_capacity_paths() {
        let mut path = MediaProfile::Ethernet.path_config();
        path.forward.rate = sim_core::units::Bandwidth::from_bps(0);
        assert_eq!(
            field_of(base().path(path).build().unwrap_err()),
            "path.forward"
        );
        let mut path = MediaProfile::Ethernet.path_config();
        path.reverse.queue_packets = 0;
        assert_eq!(
            field_of(base().path(path).build().unwrap_err()),
            "path.reverse"
        );
    }

    #[test]
    fn rejects_zero_ack_cadence_and_zero_interval() {
        assert_eq!(
            field_of(base().ack_per_segs(Some(0)).build().unwrap_err()),
            "ack_per_segs"
        );
        assert_eq!(
            field_of(
                base()
                    .sample_interval(Some(SimDuration::from_secs(0)))
                    .build()
                    .unwrap_err()
            ),
            "sample_interval"
        );
        assert!(base()
            .ack_per_segs(None)
            .sample_interval(None)
            .build()
            .is_ok());
    }

    #[test]
    fn fleet_sets_connections_and_validates() {
        use crate::fleet::{DeviceSpec, FleetConfig};
        use netsim::Qdisc;

        let spec =
            DeviceSpec::new(CpuConfig::MidEnd, CcKind::Bbr, MediaProfile::Wifi).with_connections(3);
        let cfg = base()
            .fleet(FleetConfig::uniform(4, spec.clone()))
            .build()
            .expect("valid fleet");
        assert_eq!(cfg.connections, 12, "builder adopts the fleet total");

        // Overriding connections after .fleet() must be caught.
        let err = base()
            .fleet(FleetConfig::uniform(4, spec.clone()))
            .connections(5)
            .build()
            .unwrap_err();
        assert_eq!(field_of(err), "connections");

        // Degenerate populations.
        let err = base()
            .fleet(FleetConfig {
                devices: vec![],
                shared: None,
            })
            .connections(1)
            .build()
            .unwrap_err();
        assert_eq!(field_of(err), "fleet.devices");
        let err = base()
            .fleet(FleetConfig::uniform(2, spec.clone().with_connections(0)))
            .connections(1)
            .build()
            .unwrap_err();
        assert_eq!(field_of(err), "fleet.devices");

        // Broken shared links.
        let mut shared =
            FleetConfig::pop_uplink(sim_core::units::Bandwidth::from_mbps(100), Qdisc::Fifo);
        shared.rate = sim_core::units::Bandwidth::from_bps(0);
        let err = base()
            .fleet(FleetConfig::uniform(2, spec.clone()).with_shared(shared))
            .build()
            .unwrap_err();
        assert_eq!(field_of(err), "fleet.shared");

        // The stride controller is host-global; fleets must reject it.
        let err = base()
            .fleet(FleetConfig::uniform(2, spec))
            .auto_stride(true)
            .build()
            .unwrap_err();
        assert_eq!(field_of(err), "pacing.auto_stride");
    }

    #[test]
    fn qdisc_setter_applies_to_the_forward_link() {
        for q in [Qdisc::Fifo, Qdisc::Codel, Qdisc::FqCodel] {
            let cfg = base().qdisc(q).build().expect("valid qdisc config");
            assert_eq!(cfg.path.forward.qdisc(), q);
            assert_eq!(cfg.path.reverse.qdisc(), Qdisc::Fifo, "reverse untouched");
        }
        // The setter composes with a media swap (order matters: last path
        // replacement wins, qdisc applies to what the builder holds).
        let cfg = base()
            .media(MediaProfile::Lte)
            .qdisc(Qdisc::FqCodel)
            .build()
            .expect("media + qdisc");
        assert_eq!(cfg.path.forward.qdisc(), Qdisc::FqCodel);
    }

    #[test]
    fn rejects_fq_codel_on_the_reverse_path() {
        let mut path = MediaProfile::Ethernet.path_config();
        path.reverse = path.reverse.with_qdisc(Qdisc::FqCodel);
        assert_eq!(
            field_of(base().path(path).build().unwrap_err()),
            "path.reverse"
        );
        // Plain CoDel on the reverse path stays allowed.
        let mut path = MediaProfile::Ethernet.path_config();
        path.reverse = path.reverse.with_qdisc(Qdisc::Codel);
        assert!(base().path(path).build().is_ok());
    }

    #[test]
    fn rejects_degenerate_codel_parameters() {
        use netsim::codel::CodelConfig;

        let zero_target = CodelConfig {
            target: SimDuration::from_millis(0),
            interval: SimDuration::from_millis(100),
        };
        let mut path = MediaProfile::Ethernet.path_config();
        path.forward = path.forward.with_codel_config(zero_target);
        assert_eq!(
            field_of(base().path(path).build().unwrap_err()),
            "path.forward"
        );

        let inverted = CodelConfig {
            target: SimDuration::from_millis(100),
            interval: SimDuration::from_millis(5),
        };
        let mut path = MediaProfile::Ethernet.path_config();
        path.reverse = path.reverse.with_codel_config(inverted);
        assert_eq!(
            field_of(base().path(path).build().unwrap_err()),
            "path.reverse"
        );
    }

    #[test]
    fn rejects_degenerate_codel_on_the_fleet_shared_link() {
        use crate::fleet::{DeviceSpec, FleetConfig};
        use netsim::codel::CodelConfig;

        let spec = DeviceSpec::new(CpuConfig::MidEnd, CcKind::Bbr, MediaProfile::Wifi);
        let shared =
            FleetConfig::pop_uplink(sim_core::units::Bandwidth::from_mbps(100), Qdisc::FqCodel)
                .with_codel_config(CodelConfig {
                    target: SimDuration::from_millis(10),
                    interval: SimDuration::from_millis(10),
                });
        let err = base()
            .fleet(FleetConfig::uniform(2, spec).with_shared(shared))
            .build()
            .unwrap_err();
        assert_eq!(field_of(err), "fleet.shared");
    }

    #[test]
    fn setters_compose_in_any_order() {
        let cfg = base()
            .warmup(SimDuration::from_secs(3)) // > default duration? no: 6 s
            .duration(SimDuration::from_secs(10))
            .media(MediaProfile::Wifi)
            .seed(42)
            .build()
            .expect("ordering must not matter before build()");
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.duration, SimDuration::from_secs(10));
    }
}
