//! The server-side receiver: reorder tracking and SACK-bearing ACKs.
//!
//! The iPerf server of the paper's Figure 1 runs on a desktop whose CPU is
//! never the bottleneck, so the receiver here is pure protocol logic: track
//! which packet sequence numbers have arrived, maintain `rcv_nxt`, and emit
//! cumulative ACKs with up to three SACK ranges.
//!
//! ACK cadence is GRO-shaped: modern receivers coalesce a back-to-back
//! burst into one super-segment and ACK it once. The simulator's event loop
//! implements the coalescing window; this module classifies each arrival as
//! [`AckUrgency::Immediate`] (out-of-order data or a hole being filled —
//! TCP acks those at once to trigger fast retransmit) or
//! [`AckUrgency::Coalesce`] (in-order bulk that can share a delayed ACK).

use crate::seq::PktSeq;

/// How urgently an arrival must be acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckUrgency {
    /// Out-of-order or hole-filling: ACK immediately (dup-ACK semantics).
    Immediate,
    /// In-order data: may share a coalesced ACK.
    Coalesce,
}

/// The acknowledgement content a receiver emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AckInfo {
    /// Cumulative ACK: everything below this sequence has arrived.
    pub cum: PktSeq,
    /// Up to three SACK ranges `[lo, hi)` above `cum`, lowest first.
    pub sacks: Vec<(PktSeq, PktSeq)>,
}

/// Per-connection receiver state.
///
/// Out-of-order data is tracked as maximal runs rather than individual
/// sequence numbers: a window-sized hole used to make every ACK emission
/// walk one set entry per buffered packet (quadratic over a loss episode);
/// with runs, [`Receiver::build_ack_into`] is O(1) and the per-packet
/// bookkeeping is O(log holes).
#[derive(Debug, Clone)]
pub struct Receiver {
    rcv_nxt: u64,
    /// Maximal disjoint runs `[lo, hi)` of sequences received above
    /// `rcv_nxt`, sorted ascending and never adjacent (touching runs are
    /// merged on insert). Exactly the connection's SACK blocks.
    ooo: Vec<(u64, u64)>,
    total_received: u64,
    duplicates: u64,
}

impl Receiver {
    /// A fresh receiver expecting sequence 0.
    pub fn new() -> Self {
        Receiver {
            rcv_nxt: 0,
            ooo: Vec::new(),
            total_received: 0,
            duplicates: 0,
        }
    }

    /// Whether `seq` sits inside one of the buffered out-of-order runs.
    fn ooo_contains(&self, seq: u64) -> bool {
        // First run whose end lies beyond `seq`; it contains `seq` iff it
        // also starts at or below it.
        let i = self.ooo.partition_point(|&(_, hi)| hi <= seq);
        self.ooo.get(i).is_some_and(|&(lo, _)| lo <= seq)
    }

    /// Insert `seq` (known absent and above `rcv_nxt`), merging runs.
    fn ooo_insert(&mut self, seq: u64) {
        // First run whose end reaches `seq`: the only append candidate;
        // the run after it is the only prepend candidate.
        let i = self.ooo.partition_point(|&(_, hi)| hi < seq);
        match self.ooo.get(i).copied() {
            Some((_, hi)) if hi == seq => {
                self.ooo[i].1 = seq + 1;
                // Appending may have closed the gap to the next run.
                if let Some(&(nlo, nhi)) = self.ooo.get(i + 1) {
                    if nlo == seq + 1 {
                        self.ooo[i].1 = nhi;
                        self.ooo.remove(i + 1);
                    }
                }
            }
            Some((lo, _)) if lo == seq + 1 => self.ooo[i].0 = seq,
            _ => self.ooo.insert(i, (seq, seq + 1)),
        }
    }

    /// Next expected sequence (everything below has been delivered to the
    /// application — iPerf's byte counter).
    pub fn rcv_nxt(&self) -> PktSeq {
        PktSeq(self.rcv_nxt)
    }

    /// Packets accepted (in-order or buffered), excluding duplicates.
    pub fn total_received(&self) -> u64 {
        self.total_received
    }

    /// Duplicate packets seen (spurious retransmissions).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Process an arriving run of packets `[lo, hi)`; returns how urgently
    /// to acknowledge.
    pub fn on_data(&mut self, lo: PktSeq, hi: PktSeq) -> AckUrgency {
        assert!(lo < hi, "empty packet run");
        // Mutant M2: claim one packet beyond the run — a SACK/merge
        // off-by-one. The sender clamps incoming ACKs to `snd_nxt`, so
        // this cannot crash the scoreboard; it must instead be caught by
        // the rx-conservation oracle (accepted > survived the wire).
        let hi = if crate::mutants::is(crate::mutants::Mutant::SackClaimExtra) {
            PktSeq(hi.0 + 1)
        } else {
            hi
        };
        let mut urgency = AckUrgency::Coalesce;
        let arrived_above = !self.ooo.is_empty();
        for seq in lo.0..hi.0 {
            if seq < self.rcv_nxt || self.ooo_contains(seq) {
                self.duplicates += 1;
                // Duplicate data earns an immediate (dup) ACK too.
                urgency = AckUrgency::Immediate;
                continue;
            }
            self.total_received += 1;
            if seq == self.rcv_nxt {
                self.rcv_nxt += 1;
                // Drain any buffered continuation: runs are maximal, so at
                // most the first run continues from `rcv_nxt`.
                if let Some(&(rlo, rhi)) = self.ooo.first() {
                    if rlo == self.rcv_nxt {
                        self.rcv_nxt = rhi;
                        self.ooo.remove(0);
                    }
                }
                if arrived_above {
                    // We just filled (part of) a hole: tell the sender now.
                    urgency = AckUrgency::Immediate;
                }
            } else {
                self.ooo_insert(seq);
                urgency = AckUrgency::Immediate;
            }
        }
        urgency
    }

    /// Build the current acknowledgement (cumulative + up to 3 SACKs).
    pub fn build_ack(&self) -> AckInfo {
        let mut ack = AckInfo {
            cum: PktSeq(0),
            sacks: Vec::new(),
        };
        self.build_ack_into(&mut ack);
        ack
    }

    /// Allocation-free [`Receiver::build_ack`]: overwrite a caller-owned
    /// `AckInfo`, reusing its `sacks` capacity. The simulator pools the
    /// SACK vectors so steady-state ACK emission never touches the heap.
    pub fn build_ack_into(&self, ack: &mut AckInfo) {
        ack.cum = PktSeq(self.rcv_nxt);
        ack.sacks.clear();
        // The buffered runs *are* the SACK blocks: report the lowest three.
        for &(lo, hi) in self.ooo.iter().take(3) {
            ack.sacks.push((PktSeq(lo), PktSeq(hi)));
        }
    }
}

impl Default for Receiver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn in_order_stream_advances_cumulative() {
        let mut r = Receiver::new();
        assert_eq!(r.on_data(PktSeq(0), PktSeq(10)), AckUrgency::Coalesce);
        let ack = r.build_ack();
        assert_eq!(ack.cum, PktSeq(10));
        assert!(ack.sacks.is_empty());
        assert_eq!(r.total_received(), 10);
    }

    #[test]
    fn gap_triggers_immediate_ack_with_sack() {
        let mut r = Receiver::new();
        r.on_data(PktSeq(0), PktSeq(5));
        // Packets 5..7 lost; 7..10 arrive.
        assert_eq!(r.on_data(PktSeq(7), PktSeq(10)), AckUrgency::Immediate);
        let ack = r.build_ack();
        assert_eq!(ack.cum, PktSeq(5));
        assert_eq!(ack.sacks, vec![(PktSeq(7), PktSeq(10))]);
    }

    #[test]
    fn hole_fill_advances_past_buffered_data() {
        let mut r = Receiver::new();
        r.on_data(PktSeq(0), PktSeq(5));
        r.on_data(PktSeq(7), PktSeq(10));
        // The retransmission of 5..7 fills the hole.
        assert_eq!(r.on_data(PktSeq(5), PktSeq(7)), AckUrgency::Immediate);
        let ack = r.build_ack();
        assert_eq!(ack.cum, PktSeq(10));
        assert!(ack.sacks.is_empty());
    }

    #[test]
    fn multiple_holes_multiple_sacks() {
        let mut r = Receiver::new();
        r.on_data(PktSeq(0), PktSeq(2));
        r.on_data(PktSeq(4), PktSeq(6));
        r.on_data(PktSeq(8), PktSeq(10));
        r.on_data(PktSeq(12), PktSeq(14));
        let ack = r.build_ack();
        assert_eq!(ack.cum, PktSeq(2));
        assert_eq!(
            ack.sacks,
            vec![
                (PktSeq(4), PktSeq(6)),
                (PktSeq(8), PktSeq(10)),
                (PktSeq(12), PktSeq(14)),
            ]
        );
    }

    #[test]
    fn sack_ranges_capped_at_three() {
        let mut r = Receiver::new();
        for i in 0..5u64 {
            let lo = 2 + i * 4;
            r.on_data(PktSeq(lo), PktSeq(lo + 2));
        }
        let ack = r.build_ack();
        assert_eq!(ack.sacks.len(), 3, "TCP option space limits SACK blocks");
    }

    #[test]
    fn duplicates_counted_and_acked_immediately() {
        let mut r = Receiver::new();
        r.on_data(PktSeq(0), PktSeq(5));
        assert_eq!(r.on_data(PktSeq(2), PktSeq(4)), AckUrgency::Immediate);
        assert_eq!(r.duplicates(), 2);
        assert_eq!(r.total_received(), 5, "duplicates don't count as goodput");
    }

    #[test]
    #[should_panic(expected = "empty packet run")]
    fn empty_run_rejected() {
        Receiver::new().on_data(PktSeq(3), PktSeq(3));
    }

    proptest! {
        /// Delivering a permutation of 0..n in arbitrary chunk order always
        /// converges to cum = n with no SACKs outstanding.
        #[test]
        fn prop_any_arrival_order_converges(order in proptest::sample::subsequence((0u64..60).collect::<Vec<_>>(), 60)) {
            // `order` is 0..60 in order; shuffle deterministically by
            // splitting odd/even then reversing.
            let mut shuffled: Vec<u64> = order.iter().copied().filter(|x| x % 3 == 0).collect();
            shuffled.extend(order.iter().copied().filter(|x| x % 3 == 1).rev());
            shuffled.extend(order.iter().copied().filter(|x| x % 3 == 2));
            let mut r = Receiver::new();
            for s in &shuffled {
                r.on_data(PktSeq(*s), PktSeq(*s + 1));
            }
            let ack = r.build_ack();
            prop_assert_eq!(ack.cum, PktSeq(60));
            prop_assert!(ack.sacks.is_empty());
            prop_assert_eq!(r.total_received(), 60);
        }

        /// rcv_nxt never decreases and never overtakes received data.
        #[test]
        fn prop_rcv_nxt_monotone(chunks in proptest::collection::vec((0u64..100, 1u64..5), 1..50)) {
            let mut r = Receiver::new();
            let mut last = PktSeq(0);
            for (lo, len) in chunks {
                r.on_data(PktSeq(lo), PktSeq(lo + len));
                let now = r.rcv_nxt();
                prop_assert!(now >= last);
                last = now;
            }
        }
    }
}
