//! The sender-side scoreboard: outstanding segments, SACK processing,
//! RACK/dup-threshold loss detection, retransmission queueing, and the
//! per-ACK bookkeeping that feeds the congestion controller.
//!
//! Structure follows the Linux retransmission machinery at packet
//! granularity: a segment is *outstanding* from first transmission until
//! cumulatively or selectively acknowledged; it may additionally be marked
//! `lost` (scheduling a retransmission) and `retransmitted`. The standard
//! accounting identity
//!
//! ```text
//! inflight = packets_out − sacked_out − lost_out + retrans_out
//! ```
//!
//! is maintained as an invariant and checked by property tests.
//!
//! Loss detection combines the classic dup-SACK threshold (3 packets SACKed
//! above a hole) with a RACK-style time threshold (a hole is lost if a
//! packet sent `reo_wnd` later has already been delivered).
//!
//! Since the flow-arena refactor the scoreboard state is split three ways:
//!
//! * [`Scoreboard`] holds the sequence/SACK/loss state for **one** flow and
//!   borrows whatever it doesn't own per call — segment records from a
//!   shared [`SegStore`], RTT samples into a caller-owned
//!   [`RttEstimator`], delivery samples into a caller-owned
//!   [`RateSampler`]. This is what the [`FlowArena`](crate::arena) stores
//!   one-per-flow in a dense array.
//! * [`SegStore`] is the shared chunked slab (see [`crate::pool::SegSlab`])
//!   that every flow's per-segment records are carved from — the
//!   "scoreboard-slab" pool category.
//! * [`Sender`] is the classic single-flow bundle (scoreboard + private
//!   store + RTT estimator + rate sampler) with the original API. Unit
//!   tests and the arena-vs-boxed differential test drive it; the
//!   simulator itself now iterates arena arrays instead.

use crate::pool::{SegSlab, SlabDeque};
use crate::rate::{RateSampler, TxStamp};
use crate::receiver::AckInfo;
use crate::rtt::RttEstimator;
use crate::seq::PktSeq;
use sim_core::time::{SimDuration, SimTime};

/// Classic fast-retransmit duplicate threshold.
pub const DUP_THRESH: u64 = 3;

/// One outstanding segment.
#[derive(Debug, Clone, Default)]
struct SegState {
    seq: PktSeq,
    sent_at: SimTime,
    stamp: TxStamp,
    sacked: bool,
    lost: bool,
    retx_count: u32,
    /// Time of the most recent (re)transmission.
    last_tx: SimTime,
}

/// A run of outstanding segments that are neither SACKed nor lost, all
/// transmitted in the same socket-buffer batch (so they share one
/// `last_tx` — the property that lets RACK evaluate the whole run at
/// once).
#[derive(Debug, Clone, Copy)]
struct HoleRun {
    lo: u64,
    hi: u64,
    last_tx: SimTime,
}

/// What one ACK did to the connection — the input for the CC callbacks.
#[derive(Debug, Clone, Default)]
pub struct AckOutcome {
    /// Newly delivered packets (cumulative + newly SACKed).
    pub newly_delivered: u64,
    /// Packets newly marked lost during this ACK's processing.
    pub newly_lost: u64,
    /// RTT sample from the newest never-retransmitted delivered segment.
    pub rtt_sample: Option<SimDuration>,
    /// Delivery-rate sample.
    pub rate_sample: Option<crate::rate::RateSample>,
    /// The connection's `delivered` count when the newest acked segment was
    /// sent (BBR's round-trip accounting input).
    pub prior_delivered: u64,
    /// Whether the newest acked segment was sent while app-limited.
    pub app_limited: bool,
    /// Whether the newest acked segment was sent right after a
    /// pacer-created idle (strided pacing) — treated like app-limited by
    /// the bandwidth model.
    pub pacing_limited: bool,
    /// This ACK caused entry into fast recovery.
    pub recovery_entered: bool,
    /// This ACK completed fast recovery.
    pub recovery_exited: bool,
    /// Duplicate ACK (no forward progress at all).
    pub is_duplicate: bool,
}

/// A transmission plan: which packets to put in the next socket buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SendPlan {
    /// Packet runs `[lo, hi)` to transmit (retransmissions may be
    /// discontiguous; new data is one run).
    pub runs: Vec<(PktSeq, PktSeq)>,
    /// True if this plan retransmits previously lost data.
    pub is_retx: bool,
}

impl SendPlan {
    /// Total packets in the plan.
    pub fn packets(&self) -> u64 {
        self.runs.iter().map(|(lo, hi)| hi.since(*lo)).sum()
    }
}

/// The shared segment-record store: one chunked slab that every flow's
/// scoreboard window is carved from (the "scoreboard-slab" pool category).
///
/// A [`Scoreboard`] holds only a chunk-handle window ([`SlabDeque`]) into
/// this store, so a thousand mostly-idle flows share a few warm chunks
/// instead of each keeping a cold private ring buffer.
pub struct SegStore {
    slab: SegSlab<SegState>,
}

impl SegStore {
    /// An empty store.
    pub fn new() -> Self {
        SegStore {
            slab: SegSlab::new(),
        }
    }

    /// Chunk allocations that had to grow the backing storage (cold).
    pub fn misses(&self) -> u64 {
        self.slab.misses()
    }

    /// Total chunk allocations.
    pub fn takes(&self) -> u64 {
        self.slab.takes()
    }

    /// Chunk allocations served from the free list (warm).
    pub fn reuses(&self) -> u64 {
        self.slab.reuses()
    }
}

impl Default for SegStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Total sequences covered by a sorted run list.
fn runs_len(runs: &[(u64, u64)]) -> u64 {
    runs.iter().map(|&(lo, hi)| hi - lo).sum()
}

/// Insert `[lo, hi)` into sorted disjoint `runs`, merging overlaps and
/// adjacency.
fn runs_insert(runs: &mut Vec<(u64, u64)>, lo: u64, hi: u64) {
    if lo >= hi {
        return;
    }
    let i = runs.partition_point(|&(_, rhi)| rhi < lo);
    let (mut nlo, mut nhi) = (lo, hi);
    let mut j = i;
    while j < runs.len() && runs[j].0 <= nhi {
        nlo = nlo.min(runs[j].0);
        nhi = nhi.max(runs[j].1);
        j += 1;
    }
    runs.splice(i..j, std::iter::once((nlo, nhi)));
}

/// Remove `[lo, hi)` from sorted disjoint `runs`, splitting as needed.
fn runs_subtract(runs: &mut Vec<(u64, u64)>, lo: u64, hi: u64) {
    if lo >= hi {
        return;
    }
    let i = runs.partition_point(|&(_, rhi)| rhi <= lo);
    let mut j = i;
    let mut head = None;
    let mut tail = None;
    while j < runs.len() && runs[j].0 < hi {
        let (rlo, rhi) = runs[j];
        if rlo < lo {
            head = Some((rlo, lo));
        }
        if rhi > hi {
            tail = Some((hi, rhi));
        }
        j += 1;
    }
    runs.splice(i..j, head.into_iter().chain(tail));
}

/// Drop everything below `una` from sorted disjoint `runs`.
fn runs_trim_below(runs: &mut Vec<(u64, u64)>, una: u64) {
    let k = runs.partition_point(|&(_, rhi)| rhi <= una);
    runs.drain(..k);
    if let Some(first) = runs.first_mut() {
        if first.0 < una {
            first.0 = una;
        }
    }
}

/// [`runs_subtract`] for hole runs (clipped pieces keep their `last_tx`).
fn holes_subtract(runs: &mut Vec<HoleRun>, lo: u64, hi: u64) {
    if lo >= hi {
        return;
    }
    let i = runs.partition_point(|r| r.hi <= lo);
    let mut j = i;
    let mut head = None;
    let mut tail = None;
    while j < runs.len() && runs[j].lo < hi {
        let r = runs[j];
        if r.lo < lo {
            head = Some(HoleRun { hi: lo, ..r });
        }
        if r.hi > hi {
            tail = Some(HoleRun { lo: hi, ..r });
        }
        j += 1;
    }
    runs.splice(i..j, head.into_iter().chain(tail));
}

/// [`runs_trim_below`] for hole runs.
fn holes_trim_below(runs: &mut Vec<HoleRun>, una: u64) {
    let k = runs.partition_point(|r| r.hi <= una);
    runs.drain(..k);
    if let Some(first) = runs.first_mut() {
        if first.lo < una {
            first.lo = una;
        }
    }
}

/// Per-flow sequence/SACK/loss state. Owns no segment storage and no
/// estimators: segment records live in a shared [`SegStore`] and the
/// RTT/rate state is borrowed per call, so the flow arena can keep each in
/// its own dense array.
pub struct Scoreboard {
    mss: u64,
    snd_una: PktSeq,
    snd_nxt: PktSeq,
    /// Window of outstanding segments, as chunk handles into a [`SegStore`].
    segs: SlabDeque,
    sacked_out: u64,
    lost_out: u64,
    retrans_out: u64,
    /// Fast-recovery high-water mark: recovery ends when snd_una passes it.
    recovery_point: Option<PktSeq>,
    /// Total retransmitted packets over the connection (paper's §5.2.3
    /// shallow-buffer metric).
    total_retx: u64,
    /// Highest delivered (acked/sacked) send time, for RACK.
    rack_delivered_tx: SimTime,
    /// Run index over the scoreboard: merged runs of sequences currently
    /// marked `sacked`. Lets ACK processing skip already-SACKed spans of a
    /// reported range (the per-segment flags stay the ground truth).
    sacked_runs: Vec<(u64, u64)>,
    /// Run index: outstanding segments that are neither SACKed nor lost,
    /// grouped by transmission batch ([`HoleRun`]). Loss detection walks
    /// these runs instead of every segment.
    hole_runs: Vec<HoleRun>,
    /// Run index: segments marked lost and not yet retransmitted — the
    /// retransmission queue [`Scoreboard::plan_send_into`] consumes.
    retx_runs: Vec<(u64, u64)>,
}

impl Scoreboard {
    /// A fresh scoreboard for `mss`-byte packets.
    pub fn new(mss: u64) -> Self {
        Scoreboard {
            mss,
            snd_una: PktSeq::ZERO,
            snd_nxt: PktSeq::ZERO,
            segs: SlabDeque::new(),
            sacked_out: 0,
            lost_out: 0,
            retrans_out: 0,
            recovery_point: None,
            total_retx: 0,
            rack_delivered_tx: SimTime::ZERO,
            sacked_runs: Vec::new(),
            hole_runs: Vec::new(),
            retx_runs: Vec::new(),
        }
    }

    /// Segment size in bytes.
    pub fn mss(&self) -> u64 {
        self.mss
    }

    /// Oldest unacknowledged sequence.
    pub fn snd_una(&self) -> PktSeq {
        self.snd_una
    }

    /// Next fresh sequence.
    pub fn snd_nxt(&self) -> PktSeq {
        self.snd_nxt
    }

    /// Packets currently outstanding (sent, not cumulatively acked).
    pub fn packets_out(&self) -> u64 {
        self.snd_nxt.since(self.snd_una)
    }

    /// The standard inflight estimate.
    pub fn packets_in_flight(&self) -> u64 {
        (self.packets_out() + self.retrans_out).saturating_sub(self.sacked_out + self.lost_out)
    }

    /// Whether any data is outstanding (drives the RTO timer).
    pub fn has_outstanding(&self) -> bool {
        !self.segs.is_empty()
    }

    /// Whether fast recovery is in progress.
    pub fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    /// Lifetime retransmission count.
    pub fn total_retx(&self) -> u64 {
        self.total_retx
    }

    /// Allocation-free transmission planning: fill a caller-owned plan
    /// (reusing its `runs` capacity) with retransmissions first, then new
    /// data, respecting `cwnd` and at most `max_pkts` in this buffer.
    /// Returns whether anything can be sent. The simulator's hot loop
    /// keeps one scratch plan per stack so steady-state sends never touch
    /// the heap.
    pub fn plan_send_into(&self, cwnd: u64, max_pkts: u64, plan: &mut SendPlan) -> bool {
        plan.runs.clear();
        plan.is_retx = false;
        if max_pkts == 0 {
            return false;
        }
        let inflight = self.packets_in_flight();
        if inflight >= cwnd {
            return false;
        }
        let budget = (cwnd - inflight).min(max_pkts);

        // Retransmissions first: `retx_runs` indexes exactly the segments
        // that are lost and not yet retransmitted (`lost && last_tx ==
        // sent_at`), already merged into maximal in-order runs — the same
        // plan a full scoreboard scan used to produce, without the
        // O(window) walk.
        if !self.retx_runs.is_empty() {
            let mut count = 0u64;
            for &(lo, hi) in &self.retx_runs {
                if count == budget {
                    break;
                }
                let take = (hi - lo).min(budget - count);
                plan.runs.push((PktSeq(lo), PktSeq(lo + take)));
                count += take;
            }
            plan.is_retx = true;
            return true;
        }

        // New data: a contiguous run from snd_nxt (infinite bulk source).
        plan.runs.push((self.snd_nxt, self.snd_nxt.advance(budget)));
        true
    }

    /// Record that a plan was transmitted at `now`. `pacing_limited` marks
    /// sends released after a pacer-created idle drained the flight.
    pub fn on_sent(
        &mut self,
        store: &mut SegStore,
        rate: &mut RateSampler,
        plan: &SendPlan,
        now: SimTime,
        pacing_limited: bool,
    ) {
        if plan.is_retx {
            for &(lo, hi) in &plan.runs {
                // The run leaves the retransmission queue; the per-segment
                // loop below re-inserts the (degenerate) case where the
                // retransmission shares the original send's timestamp and
                // the segment therefore stays eligible.
                runs_subtract(&mut self.retx_runs, lo.0, hi.0);
                for seq in lo.0..hi.0 {
                    // Re-stamp, as the kernel does on retransmission: a rate
                    // sample taken against the original stamp would span the
                    // whole loss episode and poison the bandwidth filter.
                    let stamp = rate.on_send(now, false, pacing_limited);
                    let idx = self
                        .index_of(PktSeq(seq))
                        .expect("retransmitting unknown segment");
                    let seg = self.segs.get_mut(&mut store.slab, idx);
                    assert!(seg.lost, "retransmitting a segment not marked lost");
                    seg.last_tx = now;
                    seg.stamp = stamp;
                    seg.retx_count += 1;
                    let still_eligible = seg.sent_at == now;
                    self.retrans_out += 1;
                    self.total_retx += 1;
                    if still_eligible {
                        runs_insert(&mut self.retx_runs, seq, seq + 1);
                    }
                }
            }
            return;
        }
        let flight_start = self.segs.is_empty();
        for &(lo, hi) in &plan.runs {
            assert_eq!(lo, self.snd_nxt, "new data must start at snd_nxt");
            for seq in lo.0..hi.0 {
                let stamp = rate.on_send(now, flight_start && seq == lo.0, pacing_limited);
                self.segs.push_back(
                    &mut store.slab,
                    SegState {
                        seq: PktSeq(seq),
                        sent_at: now,
                        stamp,
                        sacked: false,
                        lost: false,
                        retx_count: 0,
                        last_tx: now,
                    },
                );
            }
            // Fresh data is a hole-run candidate: one batch, one `last_tx`.
            match self.hole_runs.last_mut() {
                Some(r) if r.hi == lo.0 && r.last_tx == now => r.hi = hi.0,
                _ => self.hole_runs.push(HoleRun {
                    lo: lo.0,
                    hi: hi.0,
                    last_tx: now,
                }),
            }
            self.snd_nxt = hi;
        }
    }

    fn index_of(&self, seq: PktSeq) -> Option<usize> {
        // Segments are ordered by seq: index = seq - snd_una when present.
        let offset = seq.0.checked_sub(self.snd_una.0)?;
        let idx = offset as usize;
        (idx < self.segs.len()).then_some(idx)
    }

    /// RACK reorder window: a quarter of the smoothed RTT (floor 1 ms).
    fn reo_wnd(rtt: &RttEstimator) -> SimDuration {
        rtt.srtt()
            .map(|s| s / 4)
            .unwrap_or(SimDuration::from_millis(1))
            .max(SimDuration::from_millis(1))
    }

    /// Process an acknowledgement at `now`, sampling into the flow's RTT
    /// estimator and rate sampler.
    pub fn on_ack(
        &mut self,
        store: &mut SegStore,
        rtt: &mut RttEstimator,
        rate: &mut RateSampler,
        ack: &AckInfo,
        now: SimTime,
    ) -> AckOutcome {
        let mut out = AckOutcome::default();
        let mut newest_delivered: Option<(SimTime, TxStamp, u32)> = None;

        // --- Cumulative part: drop segments below ack.cum. ---
        let cum = ack.cum.min(self.snd_nxt); // ignore acks beyond sent data
        let advanced = self.snd_una < cum;
        if advanced {
            // Read the per-segment flags in place, then retire the whole
            // prefix with one head bump: a cumulative ACK covers a burst of
            // segments, and popping them one at a time would move each
            // record out of the slab just to drop it.
            debug_assert!(
                cum.0 - self.snd_una.0 <= self.segs.len() as u64,
                "scoreboard shorter than window"
            );
            let n = (cum.0 - self.snd_una.0) as usize;
            for i in 0..n {
                let seg = self.segs.get(&store.slab, i);
                debug_assert_eq!(seg.seq, PktSeq(self.snd_una.0 + i as u64));
                if seg.sacked {
                    self.sacked_out -= 1;
                } else {
                    out.newly_delivered += 1;
                }
                if seg.lost {
                    self.lost_out -= 1;
                }
                if seg.retx_count > 0 && seg.lost {
                    self.retrans_out = self.retrans_out.saturating_sub(1);
                }
                Self::track_newest(
                    &mut newest_delivered,
                    seg.last_tx,
                    seg.stamp,
                    seg.retx_count,
                );
            }
            self.segs.drop_front(&mut store.slab, n);
            self.snd_una = cum;
        }
        if advanced {
            runs_trim_below(&mut self.sacked_runs, self.snd_una.0);
            runs_trim_below(&mut self.retx_runs, self.snd_una.0);
            holes_trim_below(&mut self.hole_runs, self.snd_una.0);
        }

        // --- Selective part. ---
        // Everything inside `sacked_runs` was marked on an earlier ACK and
        // would no-op, so only the gaps of each reported range are visited
        // — O(newly SACKed) instead of O(range) per ACK.
        for &(lo, hi) in &ack.sacks {
            let lo = lo.max(self.snd_una).0;
            let hi = hi.0.min(self.snd_nxt.0);
            if lo >= hi {
                continue;
            }
            let mut cursor = lo;
            let mut ri = self.sacked_runs.partition_point(|&(_, rhi)| rhi <= cursor);
            while cursor < hi {
                // The gap before the next already-SACKed run (or the tail).
                let (gap_hi, next_cursor) = match self.sacked_runs.get(ri) {
                    Some(&(rlo, rhi)) if rlo < hi => (rlo.clamp(cursor, hi), rhi.max(cursor)),
                    _ => (hi, hi),
                };
                ri += 1;
                for seq in cursor..gap_hi {
                    if let Some(idx) = self.index_of(PktSeq(seq)) {
                        let seg = self.segs.get_mut(&mut store.slab, idx);
                        if !seg.sacked {
                            seg.sacked = true;
                            let was_lost = seg.lost;
                            if was_lost {
                                // A "lost" segment arrived after all (or its
                                // retransmission did).
                                seg.lost = false;
                            }
                            let had_retx = seg.retx_count > 0;
                            let (last_tx, stamp, retx_count) =
                                (seg.last_tx, seg.stamp, seg.retx_count);
                            self.sacked_out += 1;
                            out.newly_delivered += 1;
                            if was_lost {
                                self.lost_out -= 1;
                                if had_retx {
                                    self.retrans_out = self.retrans_out.saturating_sub(1);
                                }
                            }
                            Self::track_newest(&mut newest_delivered, last_tx, stamp, retx_count);
                        }
                    }
                }
                if gap_hi > cursor {
                    // Newly SACKed sequences leave the hole and retx indexes.
                    holes_subtract(&mut self.hole_runs, cursor, gap_hi);
                    runs_subtract(&mut self.retx_runs, cursor, gap_hi);
                }
                cursor = next_cursor;
            }
            runs_insert(&mut self.sacked_runs, lo, hi);
        }

        out.is_duplicate = out.newly_delivered == 0;

        // --- RTT + rate samples from the newest delivered segment. ---
        if let Some((sent_at, stamp, retx)) = newest_delivered {
            if retx == 0 {
                // Karn's rule: never sample retransmitted segments.
                let sample = now.saturating_since(sent_at);
                rtt.sample(sample);
                out.rtt_sample = Some(sample);
            }
            self.rack_delivered_tx = self.rack_delivered_tx.max(sent_at);
            out.prior_delivered = stamp.delivered;
            out.app_limited = stamp.app_limited;
            out.pacing_limited = stamp.pacing_limited;
            out.rate_sample = rate.on_ack(now, out.newly_delivered, &stamp);
        }

        // --- Loss detection (dup threshold + RACK time threshold). ---
        out.newly_lost = self.detect_losses(store, rtt);

        // --- Recovery state. ---
        match self.recovery_point {
            None => {
                if out.newly_lost > 0 {
                    self.recovery_point = Some(self.snd_nxt);
                    out.recovery_entered = true;
                }
            }
            Some(point) => {
                if self.snd_una >= point && self.lost_out == 0 {
                    self.recovery_point = None;
                    out.recovery_exited = true;
                } else if out.newly_lost > 0 {
                    // Fresh losses within recovery extend it implicitly.
                }
            }
        }

        self.assert_invariants(store);
        out
    }

    fn track_newest(
        newest: &mut Option<(SimTime, TxStamp, u32)>,
        last_tx: SimTime,
        stamp: TxStamp,
        retx_count: u32,
    ) {
        match newest {
            Some((t, _, _)) if *t >= last_tx => {}
            _ => *newest = Some((last_tx, stamp, retx_count)),
        }
    }

    /// Scan for holes that the evidence now declares lost.
    ///
    /// Walks the hole-run index instead of every segment: a hole run is
    /// contiguous (no SACKed segment inside) and shares one `last_tx`, so
    /// both the dup-threshold and the RACK rule decide the whole run at
    /// once — one pass over O(runs), not O(window).
    fn detect_losses(&mut self, store: &mut SegStore, rtt: &RttEstimator) -> u64 {
        // Highest sacked seq and count of sacked segments above each hole.
        if self.sacked_out == 0 {
            return 0;
        }
        let reo = Self::reo_wnd(rtt);
        let rack_tx = self.rack_delivered_tx;
        // Count sacked segments from the tail (walking the SACKed-run
        // index in tandem) so each hole run knows how many deliveries
        // happened above it.
        let mut sacked_above = 0u64;
        let mut newly_lost = 0u64;
        let mut si = self.sacked_runs.len();
        let mut any_marked = false;
        for h in (0..self.hole_runs.len()).rev() {
            let run = self.hole_runs[h];
            while si > 0 && self.sacked_runs[si - 1].0 >= run.hi {
                sacked_above += self.sacked_runs[si - 1].1 - self.sacked_runs[si - 1].0;
                si -= 1;
            }
            let dup_rule = sacked_above >= DUP_THRESH;
            let rack_rule = sacked_above > 0 && rack_tx > run.last_tx + reo;
            if dup_rule || rack_rule {
                for seq in run.lo..run.hi {
                    let idx = (seq - self.snd_una.0) as usize;
                    let seg = self.segs.get_mut(&mut store.slab, idx);
                    debug_assert!(!seg.sacked && !seg.lost, "hole index out of sync");
                    seg.lost = true;
                }
                let len = run.hi - run.lo;
                self.lost_out += len;
                newly_lost += len;
                // Freshly marked holes were never retransmitted, so they
                // join the retransmission queue wholesale.
                runs_insert(&mut self.retx_runs, run.lo, run.hi);
                self.hole_runs[h].hi = self.hole_runs[h].lo; // tombstone
                any_marked = true;
            }
        }
        if any_marked {
            self.hole_runs.retain(|r| r.hi > r.lo);
        }
        newly_lost
    }

    /// RTO expiry: everything outstanding and unsacked is presumed lost
    /// (`tcp_enter_loss`); retransmission state resets.
    pub fn on_rto(&mut self, store: &mut SegStore) -> u64 {
        let mut marked = 0;
        for i in 0..self.segs.len() {
            let seg = self.segs.get_mut(&mut store.slab, i);
            if seg.retx_count > 0 && seg.lost {
                self.retrans_out = self.retrans_out.saturating_sub(1);
            }
            if !seg.sacked && !seg.lost {
                seg.lost = true;
                self.lost_out += 1;
                marked += 1;
            }
            // Allow the retransmission to be re-sent.
            seg.last_tx = seg.sent_at;
        }
        // Rebuild the run indexes: no holes remain, and every unSACKed
        // outstanding segment is now lost and eligible for retransmission
        // (the complement of the SACKed runs over the window).
        self.hole_runs.clear();
        self.retx_runs.clear();
        let mut cursor = self.snd_una.0;
        for &(slo, shi) in &self.sacked_runs {
            if cursor < slo {
                self.retx_runs.push((cursor, slo));
            }
            cursor = shi;
        }
        if cursor < self.snd_nxt.0 {
            self.retx_runs.push((cursor, self.snd_nxt.0));
        }
        self.recovery_point = None;
        self.assert_invariants(store);
        marked
    }

    #[inline]
    fn assert_invariants(&self, _store: &SegStore) {
        debug_assert_eq!(self.packets_out() as usize, self.segs.len());
        debug_assert!(self.sacked_out + self.lost_out <= self.packets_out() + self.retrans_out);
        // Run indexes partition the window: every outstanding segment is
        // exactly one of SACKed, lost, or a hole.
        debug_assert_eq!(runs_len(&self.sacked_runs), self.sacked_out);
        debug_assert_eq!(
            self.hole_runs.iter().map(|r| r.hi - r.lo).sum::<u64>(),
            self.packets_out() - self.sacked_out - self.lost_out,
        );
        debug_assert!(runs_len(&self.retx_runs) <= self.lost_out);
        #[cfg(test)]
        self.check_run_indexes(_store);
    }

    /// Full reconciliation of the run indexes against the per-segment
    /// flags — the ground truth. Test builds only: O(window) per ACK.
    #[cfg(test)]
    fn check_run_indexes(&self, store: &SegStore) {
        let mut sacked = Vec::new();
        let mut holes: Vec<HoleRun> = Vec::new();
        let mut retx = Vec::new();
        for i in 0..self.segs.len() {
            let seg = self.segs.get(&store.slab, i);
            let s = seg.seq.0;
            if seg.sacked {
                runs_insert(&mut sacked, s, s + 1);
            } else if !seg.lost {
                match holes.last_mut() {
                    Some(r) if r.hi == s && r.last_tx == seg.last_tx => r.hi = s + 1,
                    _ => holes.push(HoleRun {
                        lo: s,
                        hi: s + 1,
                        last_tx: seg.last_tx,
                    }),
                }
            }
            if seg.lost && seg.last_tx == seg.sent_at {
                runs_insert(&mut retx, s, s + 1);
            }
        }
        assert_eq!(self.sacked_runs, sacked, "sacked_runs out of sync");
        assert_eq!(self.retx_runs, retx, "retx_runs out of sync");
        let want: Vec<(u64, u64, SimTime)> =
            holes.iter().map(|r| (r.lo, r.hi, r.last_tx)).collect();
        let got: Vec<(u64, u64, SimTime)> = self
            .hole_runs
            .iter()
            .map(|r| (r.lo, r.hi, r.last_tx))
            .collect();
        assert_eq!(got, want, "hole_runs out of sync");
    }
}

/// The classic single-flow sender bundle: a [`Scoreboard`] plus its own
/// private [`SegStore`], RTT estimator, and rate sampler, with the
/// original one-struct API.
///
/// The simulator itself stores these pieces in the
/// [`FlowArena`](crate::arena)'s dense arrays; this wrapper exists for
/// unit tests and as the boxed-layout reference the arena differential
/// test compares against. Both paths execute the same [`Scoreboard`]
/// code, so equivalence here is a layout statement, not a reimplementation
/// check.
pub struct Sender {
    board: Scoreboard,
    store: SegStore,
    /// RTT estimator (Karn-compliant: only clean segments sampled).
    pub rtt: RttEstimator,
    /// Delivery-rate sampler.
    pub rate: RateSampler,
}

impl Sender {
    /// A fresh sender for `mss`-byte packets.
    pub fn new(mss: u64) -> Self {
        Sender {
            board: Scoreboard::new(mss),
            store: SegStore::new(),
            rtt: RttEstimator::new(),
            rate: RateSampler::new(mss),
        }
    }

    /// Segment size in bytes.
    pub fn mss(&self) -> u64 {
        self.board.mss()
    }

    /// Oldest unacknowledged sequence.
    pub fn snd_una(&self) -> PktSeq {
        self.board.snd_una()
    }

    /// Next fresh sequence.
    pub fn snd_nxt(&self) -> PktSeq {
        self.board.snd_nxt()
    }

    /// Packets currently outstanding (sent, not cumulatively acked).
    pub fn packets_out(&self) -> u64 {
        self.board.packets_out()
    }

    /// The standard inflight estimate.
    pub fn packets_in_flight(&self) -> u64 {
        self.board.packets_in_flight()
    }

    /// Whether any data is outstanding (drives the RTO timer).
    pub fn has_outstanding(&self) -> bool {
        self.board.has_outstanding()
    }

    /// Whether fast recovery is in progress.
    pub fn in_recovery(&self) -> bool {
        self.board.in_recovery()
    }

    /// Lifetime retransmission count.
    pub fn total_retx(&self) -> u64 {
        self.board.total_retx()
    }

    /// Cumulative delivered packets (goodput numerator).
    pub fn delivered_pkts(&self) -> u64 {
        self.rate.delivered()
    }

    /// Plan the next transmission: retransmissions first, then new data,
    /// respecting `cwnd` and at most `max_pkts` in this buffer.
    /// Returns `None` if nothing can be sent.
    pub fn plan_send(&self, cwnd: u64, max_pkts: u64) -> Option<SendPlan> {
        let mut plan = SendPlan {
            runs: Vec::new(),
            is_retx: false,
        };
        self.plan_send_into(cwnd, max_pkts, &mut plan)
            .then_some(plan)
    }

    /// Allocation-free [`Sender::plan_send`]; see
    /// [`Scoreboard::plan_send_into`].
    pub fn plan_send_into(&self, cwnd: u64, max_pkts: u64, plan: &mut SendPlan) -> bool {
        self.board.plan_send_into(cwnd, max_pkts, plan)
    }

    /// Record that a plan was transmitted at `now`. `pacing_limited` marks
    /// sends released after a pacer-created idle drained the flight.
    pub fn on_sent(&mut self, plan: &SendPlan, now: SimTime, pacing_limited: bool) {
        self.board
            .on_sent(&mut self.store, &mut self.rate, plan, now, pacing_limited)
    }

    /// Process an acknowledgement at `now`.
    pub fn on_ack(&mut self, ack: &AckInfo, now: SimTime) -> AckOutcome {
        self.board
            .on_ack(&mut self.store, &mut self.rtt, &mut self.rate, ack, now)
    }

    /// RTO expiry: everything outstanding and unsacked is presumed lost
    /// (`tcp_enter_loss`); retransmission state resets.
    pub fn on_rto(&mut self) -> u64 {
        self.board.on_rto(&mut self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::Receiver;

    fn send_n(s: &mut Sender, n: u64, at: SimTime) -> SendPlan {
        let plan = s.plan_send(u64::MAX, n).expect("plan");
        assert!(!plan.is_retx);
        s.on_sent(&plan, at, false);
        plan
    }

    fn cum_ack(cum: u64) -> AckInfo {
        AckInfo {
            cum: PktSeq(cum),
            sacks: vec![],
        }
    }

    fn sack(cum: u64, ranges: &[(u64, u64)]) -> AckInfo {
        AckInfo {
            cum: PktSeq(cum),
            sacks: ranges
                .iter()
                .map(|&(a, b)| (PktSeq(a), PktSeq(b)))
                .collect(),
        }
    }

    #[test]
    fn clean_ack_advances_and_samples_rtt() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 10, SimTime::from_millis(0));
        assert_eq!(s.packets_in_flight(), 10);
        let out = s.on_ack(&cum_ack(10), SimTime::from_millis(20));
        assert_eq!(out.newly_delivered, 10);
        assert_eq!(s.packets_in_flight(), 0);
        assert_eq!(out.rtt_sample, Some(SimDuration::from_millis(20)));
        assert!(out.rate_sample.is_some());
        assert!(!out.is_duplicate);
        assert_eq!(s.snd_una(), PktSeq(10));
    }

    #[test]
    fn plan_respects_cwnd_and_buffer_limit() {
        let mut s = Sender::new(1448);
        let plan = s.plan_send(10, 4).unwrap();
        assert_eq!(plan.packets(), 4, "buffer limit binds");
        s.on_sent(&plan, SimTime::ZERO, false);
        let plan2 = s.plan_send(10, 100).unwrap();
        assert_eq!(plan2.packets(), 6, "cwnd limit binds");
        s.on_sent(&plan2, SimTime::ZERO, false);
        assert!(s.plan_send(10, 100).is_none(), "window full");
    }

    #[test]
    fn dup_threshold_marks_hole_lost() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 10, SimTime::from_millis(0));
        // Packet 0 lost; 1..4 sacked (3 above the hole).
        let out = s.on_ack(&sack(0, &[(1, 4)]), SimTime::from_millis(20));
        assert_eq!(out.newly_delivered, 3);
        assert_eq!(out.newly_lost, 1, "3 SACKed above ⇒ hole lost");
        assert!(out.recovery_entered);
        assert!(s.in_recovery());
    }

    #[test]
    fn below_threshold_waits() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 10, SimTime::from_millis(0));
        let out = s.on_ack(&sack(0, &[(1, 3)]), SimTime::from_millis(1));
        assert_eq!(out.newly_lost, 0, "only 2 SACKed above: not yet");
        assert!(!s.in_recovery());
    }

    #[test]
    fn rack_time_rule_catches_tail_loss() {
        let mut s = Sender::new(1448);
        // Establish srtt = 20 ms.
        send_n(&mut s, 1, SimTime::from_millis(0));
        s.on_ack(&cum_ack(1), SimTime::from_millis(20));
        // Send pkt 1 at t=30, pkt 2 at t=60 (well beyond reo_wnd = 5 ms).
        let p = s.plan_send(u64::MAX, 1).unwrap();
        s.on_sent(&p, SimTime::from_millis(30), false);
        let p = s.plan_send(u64::MAX, 1).unwrap();
        s.on_sent(&p, SimTime::from_millis(60), false);
        // Pkt 2 is sacked; pkt 1 (sent 30 ms earlier) must be RACK-lost
        // even though only one packet is above the hole.
        let out = s.on_ack(&sack(1, &[(2, 3)]), SimTime::from_millis(80));
        assert_eq!(out.newly_lost, 1, "RACK time rule");
    }

    #[test]
    fn retransmission_flow() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 10, SimTime::from_millis(0));
        s.on_ack(&sack(0, &[(1, 5)]), SimTime::from_millis(20));
        assert_eq!(s.total_retx(), 0);
        // The retransmission plan covers exactly the lost head.
        let plan = s.plan_send(100, 10).unwrap();
        assert!(plan.is_retx);
        assert_eq!(plan.runs, vec![(PktSeq(0), PktSeq(1))]);
        s.on_sent(&plan, SimTime::from_millis(21), false);
        assert_eq!(s.total_retx(), 1);
        // Don't retransmit the same hole twice.
        let plan2 = s.plan_send(100, 10).unwrap();
        assert!(
            !plan2.is_retx,
            "hole already retransmitted; next is new data"
        );
        // The retransmission is delivered; recovery persists until snd_una
        // passes the recovery point (snd_nxt at entry = 10)…
        let out = s.on_ack(&cum_ack(5), SimTime::from_millis(40));
        assert!(
            !out.recovery_exited,
            "recovery holds until the high-water mark"
        );
        assert!(s.in_recovery());
        // …and completes when the whole pre-loss window is acked.
        let out = s.on_ack(&cum_ack(10), SimTime::from_millis(50));
        assert!(out.recovery_exited);
        assert!(!s.in_recovery());
    }

    #[test]
    fn karn_rule_skips_retransmitted_rtt() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 5, SimTime::from_millis(0));
        s.on_ack(&sack(0, &[(1, 5)]), SimTime::from_millis(10));
        let plan = s.plan_send(100, 10).unwrap();
        s.on_sent(&plan, SimTime::from_millis(12), false);
        // Cum-ack of the retransmitted head: newest delivered is the
        // retransmitted packet 0 ⇒ no RTT sample.
        let out = s.on_ack(&cum_ack(5), SimTime::from_millis(30));
        assert!(
            out.rtt_sample.is_none(),
            "Karn: retransmitted segment not sampled"
        );
        assert_eq!(out.newly_delivered, 1);
    }

    #[test]
    fn duplicate_ack_flagged() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 5, SimTime::ZERO);
        s.on_ack(&cum_ack(2), SimTime::from_millis(10));
        let out = s.on_ack(&cum_ack(2), SimTime::from_millis(11));
        assert!(out.is_duplicate);
        assert_eq!(out.newly_delivered, 0);
    }

    #[test]
    fn rto_marks_all_unsacked_lost() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 10, SimTime::ZERO);
        s.on_ack(&sack(0, &[(4, 6)]), SimTime::from_millis(10));
        let marked = s.on_rto();
        assert_eq!(marked, 8, "10 outstanding − 2 sacked");
        assert_eq!(s.packets_in_flight(), 0, "everything unsacked is lost");
        // All lost packets become retransmittable.
        let plan = s.plan_send(100, 100).unwrap();
        assert!(plan.is_retx);
        assert_eq!(plan.packets(), 8);
    }

    #[test]
    fn inflight_identity_holds_through_scenario() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 20, SimTime::ZERO);
        let check = |s: &Sender| {
            assert_eq!(
                s.packets_in_flight(),
                (s.packets_out() + s.board.retrans_out) - s.board.sacked_out - s.board.lost_out
            );
        };
        check(&s);
        s.on_ack(&sack(3, &[(6, 12)]), SimTime::from_millis(15));
        check(&s);
        let plan = s.plan_send(100, 100).unwrap();
        s.on_sent(&plan, SimTime::from_millis(16), false);
        check(&s);
        s.on_ack(&cum_ack(12), SimTime::from_millis(30));
        check(&s);
    }

    #[test]
    fn ack_beyond_sent_data_is_clamped() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 5, SimTime::ZERO);
        // A (corrupt/stale) cumulative ack beyond snd_nxt must clamp, not
        // panic or corrupt the scoreboard.
        let out = s.on_ack(&cum_ack(1_000), SimTime::from_millis(10));
        assert_eq!(out.newly_delivered, 5);
        assert_eq!(s.snd_una(), PktSeq(5));
        assert_eq!(s.packets_out(), 0);
    }

    #[test]
    fn sack_below_snd_una_is_ignored() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 10, SimTime::ZERO);
        s.on_ack(&cum_ack(6), SimTime::from_millis(10));
        // Stale SACK entirely below the cumulative point.
        let out = s.on_ack(&sack(6, &[(2, 5)]), SimTime::from_millis(11));
        assert_eq!(out.newly_delivered, 0);
        assert!(out.is_duplicate);
        assert_eq!(s.packets_in_flight(), 4);
    }

    #[test]
    fn duplicate_sack_of_same_range_counts_once() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 10, SimTime::ZERO);
        let first = s.on_ack(&sack(0, &[(4, 6)]), SimTime::from_millis(10));
        assert_eq!(first.newly_delivered, 2);
        let second = s.on_ack(&sack(0, &[(4, 6)]), SimTime::from_millis(11));
        assert_eq!(second.newly_delivered, 0, "re-announced SACK adds nothing");
    }

    #[test]
    fn plan_send_zero_budget_is_none() {
        let s = Sender::new(1448);
        assert!(s.plan_send(10, 0).is_none());
        assert!(s.plan_send(0, 10).is_none());
    }

    #[test]
    fn rto_with_everything_sacked_marks_nothing() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 4, SimTime::ZERO);
        s.on_ack(&sack(0, &[(0, 4)]), SimTime::from_millis(5));
        // Hole at nothing: everything above una is sacked (pure reorder);
        // RTO marks only unsacked segments.
        assert_eq!(s.on_rto(), 0);
    }

    #[test]
    fn recovery_spans_multiple_loss_waves() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 20, SimTime::ZERO);
        // Wave 1: 0..2 lost.
        let out = s.on_ack(&sack(0, &[(2, 6)]), SimTime::from_millis(10));
        assert!(out.recovery_entered);
        // Wave 2 within the same recovery: more losses detected.
        let out = s.on_ack(&sack(0, &[(2, 6), (9, 13)]), SimTime::from_millis(12));
        assert!(!out.recovery_entered, "still the same episode");
        assert!(out.newly_lost > 0, "new holes marked");
        assert!(s.in_recovery());
    }

    #[test]
    fn retransmit_of_discontiguous_holes_in_one_plan() {
        let mut s = Sender::new(1448);
        send_n(&mut s, 12, SimTime::ZERO);
        s.on_ack(
            &sack(0, &[(1, 4), (5, 9), (10, 12)]),
            SimTime::from_millis(10),
        );
        let plan = s.plan_send(100, 10).expect("retransmissions pending");
        assert!(plan.is_retx);
        // Holes 0 and 4 have ≥3 SACKed packets above them; hole 9 has only
        // two (10, 11), so the dup-threshold correctly leaves it pending —
        // TCP stays conservative until more evidence arrives.
        assert_eq!(
            plan.runs,
            vec![(PktSeq(0), PktSeq(1)), (PktSeq(4), PktSeq(5))]
        );
        // More SACKs above hole 9 tip it over the threshold.
        let mut s2 = Sender::new(1448);
        send_n(&mut s2, 14, SimTime::ZERO);
        s2.on_ack(
            &sack(0, &[(1, 4), (5, 9), (10, 14)]),
            SimTime::from_millis(10),
        );
        let plan2 = s2.plan_send(100, 10).expect("retransmissions pending");
        assert_eq!(
            plan2.runs,
            vec![
                (PktSeq(0), PktSeq(1)),
                (PktSeq(4), PktSeq(5)),
                (PktSeq(9), PktSeq(10))
            ]
        );
    }

    #[test]
    fn sender_receiver_integration_with_loss() {
        // End-to-end: 20 packets, 5..8 dropped, retransmitted, converges.
        let mut s = Sender::new(1448);
        let mut r = Receiver::new();
        let plan = send_n(&mut s, 20, SimTime::ZERO);
        let (lo, hi) = plan.runs[0];
        // Deliver all but 5..8.
        r.on_data(lo, PktSeq(5));
        r.on_data(PktSeq(8), hi);
        let out = s.on_ack(&r.build_ack(), SimTime::from_millis(20));
        assert_eq!(out.newly_delivered, 17);
        assert_eq!(out.newly_lost, 3);
        // Retransmit the hole.
        let retx = s.plan_send(1000, 100).unwrap();
        assert!(retx.is_retx);
        assert_eq!(retx.runs, vec![(PktSeq(5), PktSeq(8))]);
        s.on_sent(&retx, SimTime::from_millis(21), false);
        for &(a, b) in &retx.runs {
            r.on_data(a, b);
        }
        let out = s.on_ack(&r.build_ack(), SimTime::from_millis(40));
        assert_eq!(out.newly_delivered, 3);
        assert!(out.recovery_exited);
        assert_eq!(s.packets_out(), 0);
        assert_eq!(s.delivered_pkts(), 20);
        assert_eq!(r.total_received(), 20);
    }

    #[test]
    fn scoreboard_slab_chunks_recycle_across_flows() {
        // Two scoreboards sharing one store: when one flow's window
        // drains, its chunks serve the other flow's growth.
        let mut store = SegStore::new();
        let mut rate_a = RateSampler::new(1448);
        let mut rate_b = RateSampler::new(1448);
        let mut rtt = RttEstimator::new();
        let mut a = Scoreboard::new(1448);
        let mut b = Scoreboard::new(1448);
        let mut plan = SendPlan::default();
        // Flow A sends a multi-chunk window, then fully drains it.
        assert!(a.plan_send_into(u64::MAX, 200, &mut plan));
        a.on_sent(&mut store, &mut rate_a, &plan, SimTime::ZERO, false);
        let cold = store.misses();
        assert!(cold >= 3, "200 packets must span several chunks");
        a.on_ack(
            &mut store,
            &mut rtt,
            &mut rate_a,
            &cum_ack(200),
            SimTime::from_millis(20),
        );
        // Flow B's window now reuses A's chunks: no new cold growth.
        assert!(b.plan_send_into(u64::MAX, 200, &mut plan));
        b.on_sent(
            &mut store,
            &mut rate_b,
            &plan,
            SimTime::from_millis(30),
            false,
        );
        assert_eq!(store.misses(), cold, "B must be served from A's chunks");
        assert!(store.reuses() > 0);
        assert_eq!(store.misses(), store.takes() - store.reuses());
    }
}
