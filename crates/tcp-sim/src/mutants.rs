//! Intentional behaviour mutations for oracle-sensitivity testing.
//!
//! A fuzzer whose oracles never fire proves nothing: the oracles might be
//! vacuous. This module provides ~4 single-line behaviour mutations at
//! hot spots of the stack — each a realistic bug class — that the
//! `simcheck --mutant-check` harness activates one at a time and requires
//! at least one oracle to catch.
//!
//! The mutations are compiled only under the `simcheck-mutants` cargo
//! feature. Without it, [`is`] is a `const false` and every call site
//! folds away — a production build cannot activate a mutant even by
//! accident. With the feature on, exactly one mutant (or none) is active
//! process-wide at a time via [`set_active`].
//!
//! | Mutant | Site | Bug class | Caught by |
//! |---|---|---|---|
//! | `SkipTimerFireCharge` | `StackSim::try_send` | CPU cost not charged | `timer-cycles-consistent` |
//! | `SackClaimExtra` | `Receiver::on_data` | off-by-one claims a phantom packet | `rx-conservation` |
//! | `SkipRetxCount` | `StackSim::try_send` | retransmit accounting drift | `retx-accounting` |
//! | `DropPacingArm` | `StackSim::try_send` | lost timer arm wedges a flow | `conn-progress` |
//! | `FleetSharedBypass` | `StackSim::try_send` | shared bottleneck not enforced | `fleet-conservation` |
//! | `FleetJainMiscount` | `FleetResult::compute` | fairness divisor off-by-one | `fleet-jain-bounds` |
//! | `AqmDropMiscount` | drop tallies in `StackSim` | per-qdisc drop attribution drift | `aqm-accounting` |
//! | `Bbr3PacingDisarm` | `StackSim` CC cache refresh | new CC variant loses pacing | `paced-cc-arms-timers` |

#[cfg(feature = "simcheck-mutants")]
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// The built-in single-line behaviour mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Mutant {
    /// `try_send` forgets to charge [`cpu_model::CostModel::timer_fire`]
    /// when a pacing timer expires (the cycles the paper's whole finding
    /// rests on). Breaks the exact identity
    /// `cycles[timers] == fires·cost.timer_fire + arms·cost.timer_arm`.
    SkipTimerFireCharge = 1,
    /// The receiver claims one packet beyond every arriving run
    /// (`on_data(lo, hi)` behaves as `on_data(lo, hi+1)`) — a classic
    /// SACK/merge off-by-one. Breaks receive-side conservation: packets
    /// accepted at the receiver exceed packets that survived the wire.
    SackClaimExtra = 2,
    /// Retransmitted packets are not added to the `retx_pkts` counter,
    /// so the counter diverges from the scoreboard's own retransmission
    /// total.
    SkipRetxCount = 3,
    /// Every 64th pacing-timer arm is silently dropped: the flow believes
    /// a timer is pending (`pacing_timer_armed` stays set) but none ever
    /// fires, wedging the connection — the lost-wakeup bug class.
    DropPacingArm = 4,
    /// Every 64th packet admitted by a device's access link skips the
    /// shared fleet bottleneck and arrives as if the common hop were free
    /// — an arbitration-enforcement hole. The fleet delivers more than the
    /// shared capacity permits, breaking shared-bottleneck conservation.
    FleetSharedBypass = 5,
    /// `FleetResult::compute` divides Jain's index by `n − 1` instead of
    /// `n` — a fairness-accounting off-by-one. Equal shares then score
    /// `n/(n−1) > 1`, violating the index's `[1/n, 1]` bounds.
    FleetJainMiscount = 6,
    /// The stack-side AQM drop tally skips CoDel/FQ-CoDel drops, so the
    /// `aqm_drops` counter diverges from the links' own
    /// `LinkStats::aqm_drops` ground truth — the attribution-drift bug
    /// class the per-qdisc drop accounting was added to rule out.
    AqmDropMiscount = 7,
    /// The CC cache refresh reports `wants_pacing == false` for BBRv3
    /// flows — a "new variant missed a dispatch site" bug. A paced-CC run
    /// then never arms pacing timers, which `paced-cc-arms-timers`
    /// detects.
    Bbr3PacingDisarm = 8,
}

/// Every built-in mutant, in id order (the `--mutant-check` iteration).
pub const ALL: [Mutant; 8] = [
    Mutant::SkipTimerFireCharge,
    Mutant::SackClaimExtra,
    Mutant::SkipRetxCount,
    Mutant::DropPacingArm,
    Mutant::FleetSharedBypass,
    Mutant::FleetJainMiscount,
    Mutant::AqmDropMiscount,
    Mutant::Bbr3PacingDisarm,
];

impl Mutant {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Mutant::SkipTimerFireCharge => "skip-timer-fire-charge",
            Mutant::SackClaimExtra => "sack-claim-extra",
            Mutant::SkipRetxCount => "skip-retx-count",
            Mutant::DropPacingArm => "drop-pacing-arm",
            Mutant::FleetSharedBypass => "fleet-shared-bypass",
            Mutant::FleetJainMiscount => "fleet-jain-miscount",
            Mutant::AqmDropMiscount => "aqm-drop-miscount",
            Mutant::Bbr3PacingDisarm => "bbr3-pacing-disarm",
        }
    }

    /// Parse a CLI name back into a mutant.
    pub fn from_name(name: &str) -> Option<Mutant> {
        ALL.into_iter().find(|m| m.name() == name)
    }
}

impl std::fmt::Display for Mutant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether this build can activate mutants at all (`simcheck-mutants` on).
pub const fn enabled() -> bool {
    cfg!(feature = "simcheck-mutants")
}

#[cfg(feature = "simcheck-mutants")]
static ACTIVE: AtomicU8 = AtomicU8::new(0);
#[cfg(feature = "simcheck-mutants")]
static ARM_TICK: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "simcheck-mutants")]
static SHARED_TICK: AtomicU64 = AtomicU64::new(0);

/// Activate `mutant` (or deactivate all with `None`) process-wide.
///
/// Returns `false` (and does nothing) when the `simcheck-mutants` feature
/// is compiled out. Activation is global, so callers must not run
/// mutant batches concurrently with clean batches.
pub fn set_active(mutant: Option<Mutant>) -> bool {
    #[cfg(feature = "simcheck-mutants")]
    {
        ACTIVE.store(mutant.map(|m| m as u8).unwrap_or(0), Ordering::SeqCst);
        ARM_TICK.store(0, Ordering::SeqCst);
        SHARED_TICK.store(0, Ordering::SeqCst);
        true
    }
    #[cfg(not(feature = "simcheck-mutants"))]
    {
        let _ = mutant;
        false
    }
}

/// The currently active mutant, if any.
pub fn active() -> Option<Mutant> {
    #[cfg(feature = "simcheck-mutants")]
    {
        ALL.into_iter()
            .find(|m| *m as u8 == ACTIVE.load(Ordering::Relaxed))
    }
    #[cfg(not(feature = "simcheck-mutants"))]
    {
        None
    }
}

/// Is `mutant` active? `const false` without the feature, so call sites
/// compile to nothing in ordinary builds.
#[inline(always)]
pub fn is(mutant: Mutant) -> bool {
    #[cfg(feature = "simcheck-mutants")]
    {
        ACTIVE.load(Ordering::Relaxed) == mutant as u8
    }
    #[cfg(not(feature = "simcheck-mutants"))]
    {
        let _ = mutant;
        false
    }
}

/// [`Mutant::DropPacingArm`]'s trigger: true on every 64th pacing-timer
/// arm since activation (so the run makes progress before wedging —
/// a realistic intermittent lost-wakeup, not an instant stall).
#[cfg(feature = "simcheck-mutants")]
pub fn drop_this_arm() -> bool {
    ARM_TICK.fetch_add(1, Ordering::Relaxed) % 64 == 63
}

/// Feature-off stub of [`drop_this_arm`]; never taken because [`is`]
/// is false, but keeps call sites cfg-free.
#[cfg(not(feature = "simcheck-mutants"))]
pub fn drop_this_arm() -> bool {
    false
}

/// [`Mutant::FleetSharedBypass`]'s trigger: true on every 64th packet
/// offered to the shared fleet bottleneck since activation, so the
/// overshoot is intermittent (a realistic enforcement hole, not a
/// wholesale removal of the link).
#[cfg(feature = "simcheck-mutants")]
pub fn bypass_this_shared_pkt() -> bool {
    SHARED_TICK.fetch_add(1, Ordering::Relaxed) % 64 == 63
}

/// Feature-off stub of [`bypass_this_shared_pkt`]; never taken because
/// [`is`] is false, but keeps call sites cfg-free.
#[cfg(not(feature = "simcheck-mutants"))]
pub fn bypass_this_shared_pkt() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in ALL {
            assert_eq!(Mutant::from_name(m.name()), Some(m));
        }
        assert_eq!(Mutant::from_name("no-such-mutant"), None);
    }

    #[test]
    fn inactive_by_default() {
        assert_eq!(active(), None);
        for m in ALL {
            assert!(!is(m));
        }
    }

    #[cfg(feature = "simcheck-mutants")]
    #[test]
    fn activation_is_exclusive() {
        set_active(Some(Mutant::SkipRetxCount));
        assert!(is(Mutant::SkipRetxCount));
        assert!(!is(Mutant::SackClaimExtra));
        assert_eq!(active(), Some(Mutant::SkipRetxCount));
        set_active(None);
        assert_eq!(active(), None);
    }
}
