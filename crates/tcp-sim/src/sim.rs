//! The end-to-end simulation: N TCP connections uploading from a modelled
//! phone, through a bottleneck path, to an ideal server — the paper's
//! Figure 1 testbed as a discrete-event program.
//!
//! The event flow mirrors the Linux transmit path the paper instruments:
//!
//! 1. **SendReady** — the socket is processed (by the ACK clock, or by a
//!    pacing-timer expiration, which costs [`CostModel::timer_fire`]
//!    cycles). A socket buffer is sized by TSO autosizing, charged to the
//!    CPU, split into wire packets, and offered to the netem stage + the
//!    bottleneck queue. If pacing is on, Eq. (1)×stride idle time is
//!    computed and the next SendReady is scheduled as a *timer* event
//!    (arming charged [`CostModel::timer_arm`]).
//! 2. **SkbArrival** — the (GRO-aggregated) buffer reaches the server;
//!    the receiver classifies it and either ACKs immediately (holes) or
//!    within the coalescing window.
//! 3. **AckArrival** — the ACK returns over the reverse path; the phone
//!    charges ACK processing plus the CC's model cost, updates the
//!    scoreboard, feeds the congestion controller, re-arms the RTO, and
//!    tries to send again.
//!
//! Every CPU charge serialises on [`cpu_model::Cpu`], which is the entire
//! mechanism behind the paper's findings: on a 576 MHz core with twenty
//! paced flows the timer-fire + small-buffer costs exceed the cycle budget
//! and goodput collapses, while the same workload at 2.8 GHz runs at line
//! rate.

use crate::arena::{CcCache, FlowArena, FlowHot};
use crate::fleet::{DeviceOutcome, FleetConfig, FleetResult};
use crate::mutants::{self, Mutant};
use crate::pacing::{Pacer, PacingConfig, GSO_MAX_BYTES};
use crate::pool::{SlotStore, VecPool};
use crate::receiver::{AckInfo, AckUrgency};
use crate::rtt::RttEstimator;
use crate::sender::SendPlan;
use crate::seq::PktSeq;
use congestion::master::{Master, MasterConfig};
use congestion::{AckSample, CcKind, CongestionControl, LossEvent};
use cpu_model::{CostModel, Cpu, CpuConfig, CpuStats, DeviceProfile};
use netsim::link::{BottleneckLink, SendOutcome};
use netsim::media::PathConfig;
use netsim::netem::{Netem, NetemVerdict};
use netsim::{wire_bytes, MSS};
use serde::Serialize;
use sim_core::event::EventQueue;
use sim_core::metrics::{Counters, Histogram, Summary};
use sim_core::rng::SimRng;
use sim_core::telemetry::{FlowSample, QueueSample, TelemetryLog, TelemetrySink};
use sim_core::time::{SimDuration, SimTime};
use sim_core::trace::{TraceKind, TraceLog, TraceSink};
use sim_core::units::Bandwidth;
use std::collections::BTreeMap;

/// Auto-stride controller epoch (§7.1.2 extension).
const ADAPT_EPOCH: SimDuration = SimDuration::from_millis(300);

/// Full configuration of one simulation run.
///
/// Derives `Serialize` so the sweep engine can build a canonical,
/// content-addressed cache key from the whole configuration (see
/// `sim_core::sweep`).
#[derive(Debug, Clone, Serialize)]
pub struct SimConfig {
    /// The phone being modelled.
    pub device: DeviceProfile,
    /// Which Table 1 CPU configuration to apply.
    pub cpu_config: CpuConfig,
    /// Stack operation costs.
    pub cost: CostModel,
    /// The network path (medium, queue depth, impairments).
    pub path: PathConfig,
    /// Congestion-control algorithm.
    pub cc: CcKind,
    /// Master-module knobs (§5), default pass-through.
    pub master: MasterConfig,
    /// Pacing configuration (stride, buffer cap).
    pub pacing: PacingConfig,
    /// Number of parallel connections (the paper sweeps 1–20).
    pub connections: usize,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Goodput measurement starts here (slow-start warmup excluded), as in
    /// steady-state iPerf reporting.
    pub warmup: SimDuration,
    /// RNG seed (netem draws, WiFi variation).
    pub seed: u64,
    /// Stagger between connection starts.
    pub start_stagger: SimDuration,
    /// Server-side ACK coalescing window (GRO).
    pub ack_coalesce: SimDuration,
    /// Optional pcap capture of every simulated wire packet (synthesized
    /// Ethernet/IPv4/TCP frames; open the result in Wireshark). Payload
    /// bytes are zero-filled — only headers carry simulation state.
    pub pcap: Option<std::path::PathBuf>,
    /// Optional Poisson cross-traffic sharing the uplink bottleneck
    /// (competition ablations; the paper's testbed itself is private).
    pub cross_traffic: Option<netsim::crosstraffic::CrossTrafficConfig>,
    /// Interval for the goodput timeline (iPerf3's per-interval lines);
    /// `None` disables timeline collection.
    pub sample_interval: Option<SimDuration>,
    /// Flight-data telemetry sampling interval; `None` (the default)
    /// disables sampling. When set, the run snapshots per-flow cwnd,
    /// inflight, pacing rate, srtt, delivery rate, and CC phase plus the
    /// bottleneck queue at this sim-time interval
    /// (see [`sim_core::telemetry`]); retrieve the log with
    /// [`StackSim::run_with_telemetry`]. Sampling observes state without
    /// scheduling events, so the [`SimResult`] is byte-identical with it on
    /// or off — but, like `pcap`, a telemetry-carrying config is a
    /// side-effectful run and is never sweep-cached.
    pub telemetry: Option<SimDuration>,
    /// ACK generation granularity: `None` models a GRO-coalescing server
    /// (one ACK per aggregated buffer — modern reality); `Some(n)` acks
    /// every `n` segments (classic delayed-ACK behaviour), multiplying the
    /// phone's per-ACK CPU load — the ack-frequency ablation's knob.
    pub ack_per_segs: Option<u64>,
    /// Fleet mode (`None` = the classic single-device testbed). When set,
    /// each [`crate::fleet::DeviceSpec`] brings its own CPU tier, CC, and
    /// access path; `connections` must equal the fleet's total and the
    /// top-level `cpu_config`/`cc`/`path` serve only as the non-fleet
    /// defaults. Skipped in serialization when absent so every existing
    /// single-device sweep-cache key keeps its exact bytes.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fleet: Option<FleetConfig>,
}

impl SimConfig {
    /// A baseline configuration: the given CC on the given device config,
    /// Ethernet path, 5 simulated seconds after 1 s of warmup.
    ///
    /// Deprecated: performs no validation (it silently accepts e.g.
    /// `warmup >= duration`, which reports 0 Mbps from an empty
    /// measurement window). Use [`SimConfig::builder`], which validates at
    /// `build()`. The public fields remain for one deprecation cycle.
    #[deprecated(
        since = "0.2.0",
        note = "use SimConfig::builder(..).build() — it validates the configuration"
    )]
    pub fn new(
        device: DeviceProfile,
        cpu_config: CpuConfig,
        cc: CcKind,
        connections: usize,
    ) -> Self {
        SimConfig {
            path: netsim::media::MediaProfile::Ethernet.path_config(),
            device,
            cpu_config,
            cost: CostModel::mobile_default(),
            cc,
            master: MasterConfig::passthrough(),
            pacing: PacingConfig::default(),
            connections,
            duration: SimDuration::from_secs(6),
            warmup: SimDuration::from_secs(1),
            seed: 1,
            start_stagger: SimDuration::from_millis(3),
            ack_coalesce: SimDuration::from_micros(50),
            pcap: None,
            cross_traffic: None,
            sample_interval: Some(SimDuration::from_millis(500)),
            telemetry: None,
            ack_per_segs: None,
            fleet: None,
        }
    }
}

/// Per-connection results.
#[derive(Debug, Clone, Serialize)]
pub struct ConnStats {
    /// Packets delivered during the measurement window.
    pub delivered_pkts: u64,
    /// Goodput over the measurement window.
    pub goodput: Bandwidth,
    /// Retransmitted packets (whole run).
    pub retx_pkts: u64,
    /// Mean of TCP's RTT samples (measurement window).
    pub rtt_mean_ms: f64,
    /// 95th-percentile RTT.
    pub rtt_p95_ms: f64,
    /// Socket buffers sent (whole run).
    pub skbs_sent: u64,
    /// Mean socket-buffer length, bytes (Table 2's "Skbuff Len").
    pub mean_skb_bytes: f64,
    /// Mean pacing idle time, ms (Table 2's "Idle Time"); 0 if unpaced.
    pub mean_idle_ms: f64,
    /// Final smoothed RTT, ms.
    pub srtt_ms: f64,
}

/// Aggregate results of one run.
#[derive(Debug, Clone, Serialize)]
pub struct SimResult {
    /// Sum of per-connection goodputs over the measurement window.
    pub total_goodput: Bandwidth,
    /// Mean RTT across all samples in the window.
    pub mean_rtt_ms: f64,
    /// 95th-percentile RTT across connections (mean of per-conn p95s).
    pub p95_rtt_ms: f64,
    /// Total retransmissions (whole run) — §5.2.3's metric.
    pub total_retx: u64,
    /// Per-connection detail.
    pub per_conn: Vec<ConnStats>,
    /// CPU statistics.
    pub cpu: CpuStats,
    /// Mean skb length across connections, bytes.
    pub mean_skb_bytes: f64,
    /// Mean pacing idle across connections, ms.
    pub mean_idle_ms: f64,
    /// Event counters (timer fires, drops, …).
    pub counters: Counters,
    /// Jain fairness index of per-connection goodput.
    pub fairness: f64,
    /// Peak memory-footprint proxy summed over connections, bytes
    /// (scoreboard + device backlog; §7.1.1's RAM question).
    pub peak_mem_bytes: u64,
    /// Per-interval goodput timeline `(seconds, Mbps)` — iPerf3's
    /// per-interval lines (empty if sampling was disabled).
    pub timeline: Vec<(f64, f64)>,
    /// Fleet-level metrics (`Some` exactly when the run carried a
    /// [`SimConfig::fleet`]); skipped in serialization when absent so
    /// single-device scorecards keep their exact bytes.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fleet: Option<FleetResult>,
}

impl SimResult {
    /// Goodput in Mbps, the unit every figure uses.
    pub fn goodput_mbps(&self) -> f64 {
        self.total_goodput.as_mbps_f64()
    }
}

/// Events are deliberately small: a timer-wheel cell moves every time a
/// slot cascades, so fat payloads (run lists, SACK vectors) ride in
/// [`SlotStore`]s as `u32` ids and only the id crosses the wheel.
enum Event {
    Start(u32),
    SendReady {
        conn: u32,
        from_timer: bool,
    },
    /// A socket buffer cleared the CPU/device path (TSQ completion).
    DeviceDone {
        conn: u32,
        bytes: u64,
    },
    /// §7.1.2 auto-stride controller epoch (host-global, like the sysctl
    /// the paper's kernel patch would expose).
    AdaptStride,
    /// A background cross-traffic packet reaches the bottleneck.
    CrossArrival,
    /// Periodic timeline sample (iPerf3-style per-interval reporting).
    StatsSample,
    SkbArrival {
        conn: u32,
        /// Run-list slot id ([`StackSim::run_slots`]).
        runs: u32,
    },
    EmitAck {
        conn: u32,
    },
    AckArrival {
        conn: u32,
        cum: PktSeq,
        /// SACK-vector slot id ([`StackSim::sack_slots`]).
        sacks: u32,
    },
    RtoFire {
        conn: u32,
        epoch: u64,
    },
    /// Frequency-governor epoch for one device's CPU (one tick stream per
    /// dynamic-governor device in the fleet).
    GovernorTick {
        dev: u32,
    },
    MeasureStart,
}

/// Hot-path event tallies, kept as plain fields and folded into the
/// [`Counters`] map once at the end of the run: a B-tree lookup per
/// packet was a measurable slice of the per-event budget at 1000 flows.
///
/// Flushing preserves the exact key-existence semantics of the previous
/// per-event `inc`/`add` calls: a key appears in the final map iff the
/// corresponding call would have happened at least once.
#[derive(Default)]
struct HotCounters {
    timer_fires: u64,
    timer_arms: u64,
    retx_pkts: u64,
    skbs_sent: u64,
    pkts_sent: u64,
    netem_drops: u64,
    queue_drops: u64,
    acks_emitted: u64,
    sack_incoherent: u64,
    ack_drops: u64,
    acks_processed: u64,
    recovery_entries: u64,
    recovery_exits: u64,
    rto_fires: u64,
    rto_marked_lost: u64,
    cross_pkts: u64,
    cross_drops: u64,
    stride_adaptations: u64,
    stride_reverts: u64,
    shared_pkts: u64,
    shared_drops: u64,
    aqm_drops: u64,
}

impl HotCounters {
    fn flush(&self, counters: &mut Counters) {
        let mut put = |name: &'static str, v: u64| {
            if v > 0 {
                counters.add(name, v);
            }
        };
        put("timer_fires", self.timer_fires);
        put("timer_arms", self.timer_arms);
        put("retx_pkts", self.retx_pkts);
        put("skbs_sent", self.skbs_sent);
        put("pkts_sent", self.pkts_sent);
        put("netem_drops", self.netem_drops);
        put("queue_drops", self.queue_drops);
        put("acks_emitted", self.acks_emitted);
        put("sack_incoherent", self.sack_incoherent);
        put("ack_drops", self.ack_drops);
        put("acks_processed", self.acks_processed);
        put("recovery_entries", self.recovery_entries);
        put("recovery_exits", self.recovery_exits);
        put("rto_fires", self.rto_fires);
        put("cross_pkts", self.cross_pkts);
        put("cross_drops", self.cross_drops);
        put("stride_adaptations", self.stride_adaptations);
        put("stride_reverts", self.stride_reverts);
        put("shared_pkts", self.shared_pkts);
        put("shared_drops", self.shared_drops);
        put("aqm_drops", self.aqm_drops);
        // `rto_marked_lost` was `add`ed once per RTO fire, possibly with
        // zero — so its key exists exactly when any RTO fired.
        if self.rto_fires > 0 {
            counters.add("rto_marked_lost", self.rto_marked_lost);
        }
    }
}

/// The effective pacing rate for a connection: the CC's rate, else
/// TCP's internal fallback `1.2 × mss·cwnd/srtt` (§5.2.2), else the
/// pre-RTT bootstrap (`init_cwnd/1 ms`, as the kernel does).
fn effective_pacing_rate(cache: &CcCache, rtt: &RttEstimator, pacer: &Pacer) -> Bandwidth {
    if let Some(rate) = cache.pacing_rate {
        return rate;
    }
    if let Some(srtt) = rtt.srtt() {
        let fb = pacer.fallback_rate(cache.cwnd, srtt);
        if !fb.is_zero() {
            return fb;
        }
    }
    Bandwidth::from_bytes_over(cache.cwnd * MSS, SimDuration::from_millis(1))
        .mul_f64(congestion::bbr::HIGH_GAIN)
}

/// The simulation engine.
///
/// Per-connection state lives in a [`FlowArena`] — dense parallel arrays
/// indexed by connection id (see `crate::arena` for the layout contract).
///
/// ```
/// use congestion::CcKind;
/// use cpu_model::{CpuConfig, DeviceProfile};
/// use sim_core::time::SimDuration;
/// use tcp_sim::{SimConfig, StackSim};
///
/// let cfg = SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::LowEnd, CcKind::Bbr, 2)
///     .duration(SimDuration::from_millis(400))
///     .warmup(SimDuration::from_millis(150))
///     .build()
///     .expect("valid config");
/// let result = StackSim::new(cfg).run();
/// assert!(result.goodput_mbps() > 0.0);
/// ```
pub struct StackSim {
    cfg: std::sync::Arc<SimConfig>,
    queue: EventQueue<Event>,
    // Per-device state, indexed by device id (one entry each in the
    // classic single-device mode, one per `DeviceSpec` in fleet mode).
    // `device_of` maps connection id → device id; it is all-zeros without
    // a fleet, so the indexing compiles to the historical single-device
    // behaviour bit-for-bit.
    cpus: Vec<Cpu>,
    fwd_netems: Vec<Netem>,
    fwd_links: Vec<BottleneckLink>,
    rev_netems: Vec<Netem>,
    rev_links: Vec<BottleneckLink>,
    device_of: Vec<u32>,
    /// The fleet's common bottleneck; every device's accepted uplink
    /// packet is offered here at its access-link arrival instant.
    shared_link: Option<BottleneckLink>,
    arena: FlowArena,
    tallies: HotCounters,
    end: SimTime,
    pcap: Option<netsim::pcap::PcapWriter<std::io::BufWriter<std::fs::File>>>,
    cross: Option<netsim::crosstraffic::CrossTraffic>,
    timeline: Vec<(SimTime, u64)>,
    // Hot-path buffer recycling: run lists ride `SkbArrival`, SACK vectors
    // ride `AckArrival` — as slot ids, with the buffers parked in the slot
    // stores — and one scratch plan serves every `try_send`. Together with
    // the slab-backed event queue this keeps the steady-state send/ack
    // path off the allocator entirely.
    run_pool: VecPool<(PktSeq, PktSeq)>,
    sack_pool: VecPool<(PktSeq, PktSeq)>,
    run_slots: SlotStore<(PktSeq, PktSeq)>,
    sack_slots: SlotStore<(PktSeq, PktSeq)>,
    plan_scratch: SendPlan,
    /// Scratch buffer for coalesced same-timestamp ACK runs: the dispatch
    /// loop collects consecutive `AckArrival`s for one connection here and
    /// [`StackSim::on_ack_run`] drains it in a single stack pass.
    ack_batch: Vec<AckInfo>,
    // §7.1.2 host-global auto-stride controller.
    adapt_epochs: u32,
    adapt_prev_busy: SimDuration,
    adapt_prev_delivered: u64,
    adapt_cooldown: u32,
    adapt_hold: u32,
    adapt_pending_eval: bool,
    adapt_pre_change_rate: f64,
    adapt_pre_change_stride: u64,
    adapt_ceiling: u64,
    adapt_floor: u64,
    adapt_armed: bool,
    // sim-trace: the stack's own tracepoint sink (the timer wheel and the
    // CPU model carry their own; `collect_trace` merges all three).
    trace: TraceSink,
    // Flight-data telemetry: fixed-interval state sampling, polled by the
    // dispatch loop (never scheduled on the wheel, so enabling it cannot
    // perturb event ordering or counters).
    telemetry: TelemetrySink,
    // Per-flow cumulative delivered packets as of the previous telemetry
    // sample, for the windowed delivery-rate column. Empty when telemetry
    // is off.
    telemetry_prev_delivered: Vec<u64>,
    // MeasureStart snapshots for steady-state attribution: cycle and
    // pool-miss totals as of the end of warmup, so `finish` can report
    // measurement-window deltas.
    measure_cycles: BTreeMap<&'static str, u64>,
    measure_cycles_total: u64,
    measure_run_misses: u64,
    measure_sack_misses: u64,
    measure_slab_misses: u64,
}

impl StackSim {
    /// Build a simulation from its configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Self::from_arc(std::sync::Arc::new(cfg))
    }

    /// Build a simulation from a shared configuration without copying it.
    ///
    /// Sweep drivers hold one config per cell; sharing it into the
    /// simulator avoids a deep `SimConfig` clone (frequency ladders, netem
    /// tables, …) per seed.
    pub fn from_arc(cfg: std::sync::Arc<SimConfig>) -> Self {
        assert!(cfg.connections >= 1, "need at least one connection");
        assert!(cfg.warmup < cfg.duration, "warmup must precede the end");
        let rng = SimRng::new(cfg.seed);

        // Device table: one row per `DeviceSpec` in fleet mode, one row
        // synthesized from the top-level config otherwise. RNG streams are
        // per-device at `split(1 + 4d)`/`(2 + 4d)`/`(3 + 4d)` — device 0
        // draws from exactly the historical splits 1/2/3, and no device
        // ever collides with cross-traffic's `split(4)` (4d+{1,2,3} is
        // never ≡ 0 mod 4).
        let n_devices = cfg.fleet.as_ref().map_or(1, |f| f.devices.len());
        let mut cpus = Vec::with_capacity(n_devices);
        let mut fwd_netems = Vec::with_capacity(n_devices);
        let mut fwd_links = Vec::with_capacity(n_devices);
        let mut rev_netems = Vec::with_capacity(n_devices);
        let mut rev_links = Vec::with_capacity(n_devices);
        let mut device_of = Vec::with_capacity(cfg.connections);
        for d in 0..n_devices {
            let (cpu_config, path, conns) = match &cfg.fleet {
                Some(fleet) => {
                    let spec = &fleet.devices[d];
                    let mut path = spec.media.path_config();
                    // RTT-unfairness axis: extra propagation on the
                    // device's private forward link.
                    path.forward.propagation += spec.extra_rtt;
                    (spec.cpu, path, spec.connections)
                }
                None => (cfg.cpu_config, cfg.path.clone(), cfg.connections),
            };
            let d64 = d as u64;
            fwd_links.push(match &path.forward_var {
                Some(var) => BottleneckLink::with_variable_rate(
                    path.forward.clone(),
                    var.clone(),
                    rng.split(1 + 4 * d64),
                ),
                None => BottleneckLink::new(path.forward.clone()),
            });
            fwd_netems.push(Netem::new(
                path.forward_netem.clone(),
                rng.split(2 + 4 * d64),
            ));
            rev_netems.push(Netem::new(
                path.reverse_netem.clone(),
                rng.split(3 + 4 * d64),
            ));
            rev_links.push(BottleneckLink::new(path.reverse.clone()));
            cpus.push(Cpu::new(
                cfg.device.topology.clone(),
                cfg.device.policy(cpu_config),
            ));
            device_of.extend(std::iter::repeat_n(d as u32, conns));
        }
        assert_eq!(
            device_of.len(),
            cfg.connections,
            "fleet device connections must sum to cfg.connections"
        );
        let shared_link = cfg
            .fleet
            .as_ref()
            .and_then(|f| f.shared.clone())
            .map(BottleneckLink::new);

        let arena = FlowArena::new(cfg.connections, MSS, cfg.pacing, |i| {
            let kind = match &cfg.fleet {
                Some(fleet) => fleet.devices[device_of[i] as usize].cc,
                None => cfg.cc,
            };
            let inner: Box<dyn CongestionControl> = match kind {
                CcKind::Bbr => Box::new(congestion::bbr::Bbr::new(MSS).with_cycle_offset(i)),
                CcKind::Bbr2 => Box::new(congestion::bbr2::Bbr2::new(MSS).with_probe_offset(i)),
                CcKind::Bbr3 => Box::new(congestion::bbr3::Bbr3::new(MSS).with_probe_offset(i)),
                other => other.build(MSS),
            };
            Master::new(inner, cfg.master)
        });

        let mut telemetry = TelemetrySink::disabled();
        let mut telemetry_prev_delivered = Vec::new();
        if let Some(interval) = cfg.telemetry {
            telemetry.enable(interval, sim_core::telemetry::DEFAULT_MAX_SAMPLES);
            telemetry_prev_delivered = vec![0u64; cfg.connections];
        }

        StackSim {
            end: SimTime::ZERO + cfg.duration,
            fwd_netems,
            rev_netems,
            fwd_links,
            rev_links,
            device_of,
            shared_link,
            queue: EventQueue::new(),
            cpus,
            arena,
            tallies: HotCounters::default(),
            adapt_epochs: 0,
            adapt_prev_busy: SimDuration::ZERO,
            adapt_prev_delivered: 0,
            adapt_cooldown: 0,
            adapt_hold: 0,
            adapt_pending_eval: false,
            adapt_pre_change_rate: 0.0,
            adapt_pre_change_stride: 1,
            adapt_ceiling: 64,
            adapt_floor: 1,
            adapt_armed: false,
            trace: TraceSink::disabled(),
            telemetry,
            telemetry_prev_delivered,
            measure_cycles: BTreeMap::new(),
            measure_cycles_total: 0,
            measure_run_misses: 0,
            measure_sack_misses: 0,
            measure_slab_misses: 0,
            timeline: Vec::new(),
            run_pool: VecPool::new(),
            ack_batch: Vec::new(),
            sack_pool: VecPool::new(),
            run_slots: SlotStore::new(),
            sack_slots: SlotStore::new(),
            plan_scratch: SendPlan::default(),
            cross: cfg
                .cross_traffic
                .map(|c| netsim::crosstraffic::CrossTraffic::new(c, rng.split(4))),
            pcap: cfg.pcap.as_ref().map(|path| {
                let file = std::fs::File::create(path).expect("create pcap file");
                netsim::pcap::PcapWriter::new(std::io::BufWriter::new(file))
                    .expect("write pcap header")
            }),
            cfg,
        }
    }

    /// Turn on flight-recorder tracing: the stack, the timer wheel and the
    /// CPU model each get a fixed-capacity ring of `capacity` records, and
    /// the CPU model starts a windowed cycle profiler
    /// ([`cpu_model::profile::DEFAULT_WINDOW`]).
    ///
    /// Tracing never changes simulation behaviour — a traced run produces a
    /// bit-identical [`SimResult`] to an untraced one. When `sim-core` is
    /// built with `--no-default-features` (no `trace` feature) the rings
    /// stay off and only the profiler runs.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace.enable(capacity);
        self.queue.set_tracer(capacity);
        for cpu in &mut self.cpus {
            cpu.set_tracer(capacity);
            cpu.enable_profiler(cpu_model::profile::DEFAULT_WINDOW);
        }
    }

    /// Run to completion and report.
    pub fn run(mut self) -> SimResult {
        self.run_to_end();
        self.finish()
    }

    /// Run to completion with tracing enabled, returning both the result
    /// and the merged trace log (events from the timer wheel, the CPU
    /// model and the stack, plus the windowed cycle-profile counter
    /// series).
    ///
    /// Enables tracing at [`sim_core::trace::DEFAULT_CAPACITY`] unless
    /// [`StackSim::enable_tracing`] was already called with a custom
    /// capacity.
    pub fn run_traced(mut self) -> (SimResult, TraceLog) {
        if !self.trace.is_enabled() {
            self.enable_tracing(sim_core::trace::DEFAULT_CAPACITY);
        }
        self.run_to_end();
        let log = self.collect_trace();
        (self.finish(), log)
    }

    /// Run to completion, returning the result and the flight-data
    /// telemetry collected along the way.
    ///
    /// Sampling is configured by [`SimConfig::telemetry`]; the log is empty
    /// (`None`) when the config carries no interval or `sim-core` was built
    /// without the `telemetry` feature. The [`SimResult`] is byte-identical
    /// to [`StackSim::run`]'s — sampling only observes.
    pub fn run_with_telemetry(mut self) -> (SimResult, Option<TelemetryLog>) {
        self.run_to_end();
        let log = self.telemetry.take();
        (self.finish(), log)
    }

    /// Snapshot every started flow and the bottleneck queue, stamped with
    /// the nominal instant `at`. Read-only with respect to simulation
    /// state (the `occupancy` call only prunes already-departed packets,
    /// which `send` would prune anyway).
    fn sample_telemetry(&mut self, at: SimTime) {
        for c in 0..self.arena.len() {
            if !self.arena.hot[c].started {
                continue;
            }
            let cache = &self.arena.cc_cache[c];
            let delivered = self.arena.rate[c].delivered();
            let prev = std::mem::replace(&mut self.telemetry_prev_delivered[c], delivered);
            let delta_pkts = delivered.saturating_sub(prev);
            let delivery_rate_bps = match self.cfg.telemetry {
                Some(interval) if !interval.is_zero() => {
                    (delta_pkts * MSS * 8) as f64 / interval.as_secs_f64()
                }
                _ => 0.0,
            } as u64;
            self.telemetry.flow(FlowSample {
                at,
                conn: c as u32,
                cwnd: cache.cwnd.min(u32::MAX as u64) as u32,
                inflight: self.arena.board[c].packets_in_flight().min(u32::MAX as u64) as u32,
                pacing_rate_bps: cache.pacing_rate.map(|r| r.as_bps()).unwrap_or(0),
                srtt_us: self.arena.rtt[c].srtt().map(|d| d.as_micros()).unwrap_or(0),
                delivery_rate_bps,
                phase: self.arena.cc[c].phase(),
            });
        }
        // Queue telemetry watches the binding constraint: the shared
        // bottleneck in fleet mode, device 0's uplink otherwise.
        let link = match self.shared_link.as_mut() {
            Some(shared) => shared,
            None => &mut self.fwd_links[0],
        };
        let depth = link.occupancy(at);
        self.telemetry.queue(QueueSample {
            at,
            depth_pkts: depth.min(u32::MAX as usize) as u32,
            dropped: link.stats().dropped,
        });
    }

    /// Emit any telemetry samples whose nominal instant is `<= upto`. The
    /// state observed is exactly the state at each nominal instant: no
    /// event fired between the previous batch and `upto`.
    #[inline]
    fn pump_telemetry(&mut self, upto: SimTime) {
        while let Some(due) = self.telemetry.next_due() {
            if due > upto {
                break;
            }
            self.sample_telemetry(due);
            self.telemetry.advance();
        }
    }

    /// Drain the per-domain rings into one chronologically merged log.
    /// Buffer order (wheel, CPU, stack) is fixed — it is the deterministic
    /// tie-break for records carrying the same timestamp.
    fn collect_trace(&mut self) -> TraceLog {
        let mut buffers = Vec::new();
        if let Some(b) = self.queue.take_tracer() {
            buffers.push(b);
        }
        for cpu in &mut self.cpus {
            if let Some(b) = cpu.take_tracer() {
                buffers.push(b);
            }
        }
        if let Some(b) = self.trace.take() {
            buffers.push(b);
        }
        let mut log = TraceLog::merge(buffers);
        for cpu in &mut self.cpus {
            if let Some(profile) = cpu.take_profile() {
                log.counters.extend(profile.to_series());
            }
        }
        log
    }

    fn run_to_end(&mut self) {
        for c in 0..self.arena.len() {
            let at = SimTime::ZERO + self.cfg.start_stagger * c as u64;
            self.queue.schedule_at(at, Event::Start(c as u32));
        }
        self.queue
            .schedule_at(SimTime::ZERO + self.cfg.warmup, Event::MeasureStart);
        for d in 0..self.cpus.len() {
            if self.cpus[d].is_dynamic() {
                self.queue.schedule_at(
                    SimTime::ZERO + SimDuration::from_millis(10),
                    Event::GovernorTick { dev: d as u32 },
                );
            }
        }
        if let Some(cross) = &self.cross {
            self.queue
                .schedule_at(cross.next_arrival(), Event::CrossArrival);
        }
        if let Some(interval) = self.cfg.sample_interval {
            self.queue
                .schedule_at(SimTime::ZERO + interval, Event::StatsSample);
        }

        // Batched dispatch: pop whole same-timestamp runs off the wheel
        // (one occupancy scan per run instead of per event), and coalesce
        // consecutive ACK arrivals for one connection into a single stack
        // pass. The run's head is delivered by the pop itself (singleton
        // runs — the common shape — never touch the staging buffer); tail
        // events stay staged and cancellable, so a handler cancelling a
        // same-timestamp timer (delayed-ACK vs. data arrival) behaves
        // exactly as under one-at-a-time `pop`.
        while let Some(first) = self.queue.pop_run_first() {
            let at = first.at;
            if at > self.end {
                break;
            }
            if self.telemetry.is_enabled() {
                // Sample every nominal instant up to (and including) this
                // batch's timestamp *before* its events run: the state seen
                // is the state at those instants, since nothing fired in
                // between.
                self.pump_telemetry(at);
            }
            self.dispatch(at, first.event);
            while let Some(ev) = self.queue.run_next() {
                self.dispatch(at, ev.event);
            }
        }
        if self.telemetry.is_enabled() {
            // Fill the tail: instants between the last dispatched batch and
            // the end of the run (including a possibly event-free tail).
            let end = self.end;
            self.pump_telemetry(end);
        }
    }

    /// Dispatch one event of the current same-timestamp run, coalescing a
    /// streak of consecutive same-connection [`Event::AckArrival`]s (staged
    /// behind it in the run) into a single [`StackSim::on_ack_run`] pass.
    #[inline]
    fn dispatch(&mut self, at: SimTime, ev: Event) {
        match ev {
            Event::AckArrival { conn, cum, sacks } => {
                let mut batch = std::mem::take(&mut self.ack_batch);
                batch.push(AckInfo {
                    cum,
                    sacks: self.sack_slots.unstash(sacks),
                });
                // `AckArrival`s are never cancelled, so consuming the
                // run's consecutive same-connection ACKs up front is
                // observationally identical to dispatching them one
                // at a time (nothing can fire between them).
                while matches!(
                    self.queue.run_peek(),
                    Some(Event::AckArrival { conn: c2, .. }) if *c2 == conn
                ) {
                    match self.queue.run_next().map(|e| e.event) {
                        Some(Event::AckArrival { cum, sacks, .. }) => batch.push(AckInfo {
                            cum,
                            sacks: self.sack_slots.unstash(sacks),
                        }),
                        _ => unreachable!("run_peek promised an AckArrival"),
                    }
                }
                self.on_ack_run(conn as usize, at, &mut batch);
                self.ack_batch = batch;
            }
            event => self.handle(at, event),
        }
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Start(c) => {
                let c = c as usize;
                self.arena.hot[c].started = true;
                if self.cfg.pacing.auto_stride
                    && self.arena.cc_cache[c].wants_pacing
                    && !self.adapt_armed
                {
                    self.adapt_armed = true;
                    self.queue
                        .schedule_at(now + ADAPT_EPOCH, Event::AdaptStride);
                }
                self.try_send(c, now, false);
            }
            Event::SendReady { conn, from_timer } => {
                let conn = conn as usize;
                if from_timer {
                    self.arena.hot[conn].pacing_timer_armed = false;
                } else {
                    self.arena.hot[conn].send_scheduled = false;
                }
                self.try_send(conn, now, from_timer);
            }
            Event::DeviceDone { conn, bytes } => {
                let conn = conn as usize;
                let hot = &mut self.arena.hot[conn];
                hot.device_chunks = hot.device_chunks.saturating_sub(1);
                hot.device_bytes = hot.device_bytes.saturating_sub(bytes);
                self.try_send(conn, now, false);
            }
            Event::AdaptStride => self.adapt_stride(now),
            Event::StatsSample => {
                let delivered: u64 = self.arena.rate.iter().map(|r| r.delivered()).sum();
                self.timeline.push((now, delivered));
                if let Some(interval) = self.cfg.sample_interval {
                    self.queue.schedule_at(now + interval, Event::StatsSample);
                }
            }
            Event::CrossArrival => {
                let cross = self.cross.as_mut().expect("cross event without source");
                let bytes = cross.pkt_bytes();
                cross.pop();
                // Open-loop: offered straight to the bottleneck queue (the
                // shared link in fleet mode — cross traffic competes where
                // the fleet competes); drops are the queue's business.
                let link = match self.shared_link.as_mut() {
                    Some(shared) => shared,
                    None => &mut self.fwd_links[0],
                };
                // Cross traffic is one aggregate flow; u64::MAX keeps its
                // FQ-CoDel bucket clear of any connection's (conn ids are
                // dense from 0).
                match link.send_flow(now, bytes, u64::MAX) {
                    SendOutcome::Dropped { aqm } => {
                        self.tallies.cross_drops += 1;
                        if aqm && !mutants::is(Mutant::AqmDropMiscount) {
                            self.tallies.aqm_drops += 1;
                        }
                    }
                    SendOutcome::Accepted { .. } => {
                        self.tallies.cross_pkts += 1;
                    }
                }
                let next = self.cross.as_ref().expect("still present").next_arrival();
                self.queue.schedule_at(next.max(now), Event::CrossArrival);
            }
            Event::SkbArrival { conn, runs } => {
                let runs = self.run_slots.unstash(runs);
                self.on_skb_arrival(conn as usize, now, runs)
            }
            Event::EmitAck { conn } => {
                let conn = conn as usize;
                self.arena.hot[conn].ack_timer = None;
                self.emit_ack(conn, now);
            }
            Event::AckArrival { conn, cum, sacks } => {
                let ack = AckInfo {
                    cum,
                    sacks: self.sack_slots.unstash(sacks),
                };
                self.on_ack_arrival(conn as usize, now, ack)
            }
            Event::RtoFire { conn, epoch } => self.on_rto(conn as usize, now, epoch),
            Event::GovernorTick { dev } => {
                if let Some(next) = self.cpus[dev as usize].governor_tick(now) {
                    self.queue.schedule_at(next, Event::GovernorTick { dev });
                }
            }
            Event::MeasureStart => {
                for i in 0..self.arena.len() {
                    self.arena.cold[i].delivered_at_measure = self.arena.rate[i].delivered();
                    self.arena.hot[i].measuring = true;
                    self.arena.cold[i].rtt_summary = Summary::new();
                    self.arena.cold[i].rtt_hist = Histogram::new();
                }
                // Steady-state attribution baseline: everything charged or
                // missed after this point is measurement-window work
                // (summed over all device CPUs in fleet mode).
                self.measure_cycles = Self::cycles_by_category_all(&self.cpus);
                self.measure_cycles_total = self.cpus.iter().map(Cpu::total_cycles).sum();
                self.measure_run_misses = self.run_pool.misses();
                self.measure_sack_misses = self.sack_pool.misses();
                self.measure_slab_misses = self.arena.store.misses();
            }
        }
    }

    fn try_send(&mut self, c: usize, now: SimTime, from_timer: bool) {
        let dev = self.device_of[c] as usize;
        // Timer expiration costs CPU whether or not data flows (§6.1: the
        // callbacks "continually reschedule connections to be processed").
        let mut pre_cycles = 0u64;
        if from_timer {
            // Mutant M1: the fire is counted but its cycles are never
            // charged — the exact cost the paper's finding rests on.
            // Breaks `cycles[timers] == fires·c_fire + arms·c_arm`.
            if !mutants::is(Mutant::SkipTimerFireCharge) {
                pre_cycles += self.cfg.cost.timer_fire;
            }
            self.tallies.timer_fires += 1;
            self.trace
                .record(now, TraceKind::PacingFire, c as u32, 0, 0);
        }

        if !self.arena.hot[c].started {
            return;
        }
        // TSQ: at most 2 buffers per socket in the device path; the
        // DeviceDone completion re-enters this function.
        if self.arena.hot[c].device_chunks >= 2 {
            if pre_cycles > 0 {
                self.cpus[dev].execute_tagged(now, pre_cycles, "timers");
            }
            return;
        }
        let pacing = self.arena.cc_cache[c].wants_pacing;
        let rate = effective_pacing_rate(
            &self.arena.cc_cache[c],
            &self.arena.rtt[c],
            &self.arena.pacer[c],
        );

        // Between pacing periods the gate must be open before anything
        // can happen; the new period itself is only *opened* (EDT clock
        // advanced, budget granted) once we know a send will occur, so a
        // cwnd-blocked wakeup never wastes a period.
        //
        // Eligibility is computed branchlessly (bitwise `&` over pure
        // predicates, no short-circuit jumps): this gate runs once per ACK
        // and once per timer fire, and its three inputs are near-free loads,
        // so one well-predicted test beats three data-dependent branches.
        let gate_closed =
            pacing & (self.arena.hot[c].burst_remaining == 0) & !self.arena.pacer[c].can_send(now);
        if gate_closed {
            if pre_cycles > 0 {
                self.cpus[dev].execute_tagged(now, pre_cycles, "timers");
            }
            if !self.arena.hot[c].pacing_timer_armed {
                self.arena.hot[c].pacing_timer_armed = true;
                let at = self.arena.pacer[c].next_release().max(now);
                self.trace
                    .record(now, TraceKind::TimerArm, c as u32, at.as_nanos(), 0);
                self.queue.schedule_at(
                    at,
                    Event::SendReady {
                        conn: c as u32,
                        from_timer: true,
                    },
                );
            }
            return;
        }

        // One autosized chunk per invocation; a strided burst continues via
        // a chained event so concurrent flows contend for the CPU between
        // chunks (as softirq round-robins sockets on a real phone).
        let max_pkts = if pacing {
            let budget = if self.arena.hot[c].burst_remaining > 0 {
                self.arena.hot[c].burst_remaining
            } else {
                self.arena.pacer[c].burst_segs(rate)
            };
            self.arena.pacer[c].autosize_segs(rate).min(budget)
        } else {
            (GSO_MAX_BYTES / MSS).max(1)
        };
        let cwnd = self.arena.cc_cache[c].cwnd;
        // One scratch plan serves every send: take it out of `self` (so the
        // arena borrows stay disjoint) and put it back on every exit.
        let mut plan = std::mem::take(&mut self.plan_scratch);
        if !self.arena.board[c].plan_send_into(cwnd, max_pkts, &mut plan) {
            // cwnd-limited (or nothing to retransmit): the ACK clock will
            // wake us. Spurious timer fires still cost cycles.
            self.plan_scratch = plan;
            if pre_cycles > 0 {
                self.cpus[dev].execute_tagged(now, pre_cycles, "timers");
            }
            return;
        }

        if pacing && self.arena.hot[c].burst_remaining == 0 {
            // Open the new pacing period: grant the stride x autosize
            // budget ("more data per pacing period", Sec. 6.2). The EDT
            // gate advances per actual chunk sent, below; if the socket-
            // buffer cap cut the budget, the idle residue is charged now
            // (Eq. 2's full idle applies even to a capped period).
            self.arena.hot[c].burst_remaining = self.arena.pacer[c].burst_segs(rate);
            self.arena.pacer[c].charge_cap_deficit(now, rate);
            pre_cycles += self.cfg.cost.timer_arm;
            self.tallies.timer_arms += 1;
            // Table 2 statistics: finalise the previous period's buffer.
            let cold = &mut self.arena.cold[c];
            if cold.cur_period_bytes > 0 {
                cold.period_bytes_sum += cold.cur_period_bytes;
                cold.period_count += 1;
                cold.cur_period_bytes = 0;
            }
        }

        let pkts = plan.packets();
        let bytes = pkts * MSS;
        // Mutant M3: retransmissions silently missing from the counter,
        // which then diverges from the scoreboard's own `total_retx`.
        if plan.is_retx && !mutants::is(Mutant::SkipRetxCount) {
            self.tallies.retx_pkts += pkts;
        }
        // A send released after the pacer's gate drained the whole flight:
        // the delivery-rate sample bridging that gap measures our own
        // (possibly strided) pacer, not the path.
        let pacing_limited =
            pacing & (self.arena.pacer[c].stride() > 1) & (self.arena.board[c].packets_out() == 0);

        // Charge the CPU by category so reports can show where the cycles
        // went (the whole chunk still serialises as one back-to-back span).
        if pre_cycles > 0 {
            self.cpus[dev].execute_tagged(now, pre_cycles, "timers");
        }
        if plan.is_retx {
            self.cpus[dev].execute_tagged(now, self.cfg.cost.retransmit_fixed, "retransmit");
        }
        self.cpus[dev].execute_tagged(now, self.cfg.cost.skb_xmit_fixed, "skb-fixed");
        let done = self.cpus[dev].execute_tagged(now, self.cfg.cost.per_byte * bytes, "bytes");

        // TCP stamps the segment when it is *built* (`tcp_transmit_skb`),
        // before the copy/checksum/driver work completes: a backlogged CPU
        // therefore inflates the RTT TCP measures, which is exactly the
        // Table 2 effect (3.7 ms at 1x falling to ~1.1 ms at good strides).
        self.arena.board[c].on_sent(
            &mut self.arena.store,
            &mut self.arena.rate[c],
            &plan,
            now,
            pacing_limited,
        );
        {
            let cold = &mut self.arena.cold[c];
            cold.skb_bytes_sum += bytes;
            cold.skb_count += 1;
            cold.cur_period_bytes += bytes;
        }
        if pacing {
            // Advance the EDT gate by the bytes actually sent (Eq. 1 x
            // Eq. 2): a cwnd-clipped chunk charges only its own length.
            self.arena.pacer[c].on_send(now, bytes, rate);
            self.arena.hot[c].burst_remaining =
                self.arena.hot[c].burst_remaining.saturating_sub(pkts);
        }
        self.tallies.skbs_sent += 1;
        self.tallies.pkts_sent += pkts;
        let tx_kind = if plan.is_retx {
            TraceKind::SegRetx
        } else {
            TraceKind::SegTx
        };
        self.trace.record(now, tx_kind, c as u32, pkts, bytes);

        // Wire transmission: the CPU prepares the whole buffer (charged
        // above), then the NIC/adapter bursts its packets at line rate —
        // which is exactly what floods a shallow droptail queue (§5.2.3).
        // Each MSS packet passes netem and the bottleneck individually.
        // GRO at the server aggregates the chunk into one delivery event
        // at its last packet's arrival.
        let mut accepted_runs = self.run_pool.take();
        let mut last_arrival = SimTime::ZERO;
        let mut accepted_pkts = 0u64;
        for &(lo, hi) in &plan.runs {
            for seq in lo.0..hi.0 {
                let wire = wire_bytes(MSS);
                let release = match self.fwd_netems[dev].process(done, wire) {
                    NetemVerdict::Drop => {
                        self.tallies.netem_drops += 1;
                        continue;
                    }
                    NetemVerdict::Pass { release } => release,
                };
                match self.fwd_links[dev].send_flow(release, wire, c as u64) {
                    SendOutcome::Dropped { aqm } => {
                        self.tallies.queue_drops += 1;
                        // Mutant M7: the stack-side AQM tally "forgets"
                        // CoDel/FQ-CoDel drops; the aqm-accounting oracle
                        // compares against LinkStats::aqm_drops ground
                        // truth and must notice.
                        if aqm && !mutants::is(Mutant::AqmDropMiscount) {
                            self.tallies.aqm_drops += 1;
                        }
                    }
                    SendOutcome::Accepted { arrival, .. } => {
                        // Fleet mode: the access-link egress feeds the
                        // shared bottleneck, admission stamped at the
                        // access arrival instant. A shared-queue drop
                        // loses the packet exactly like an access drop.
                        let arrival = match self.shared_link.as_mut() {
                            Some(shared) => {
                                // Mutant M5: every 64th packet teleports
                                // past the shared bottleneck — no
                                // serialisation, no queueing, no drop
                                // accounting. Fleet throughput can then
                                // exceed the shared capacity, which the
                                // fleet-conservation oracle must flag.
                                if mutants::is(Mutant::FleetSharedBypass)
                                    && mutants::bypass_this_shared_pkt()
                                {
                                    arrival
                                } else {
                                    match shared.send_flow(arrival, wire, c as u64) {
                                        SendOutcome::Dropped { aqm } => {
                                            self.tallies.shared_drops += 1;
                                            if aqm && !mutants::is(Mutant::AqmDropMiscount) {
                                                self.tallies.aqm_drops += 1;
                                            }
                                            continue;
                                        }
                                        SendOutcome::Accepted { arrival, .. } => {
                                            self.tallies.shared_pkts += 1;
                                            arrival
                                        }
                                    }
                                }
                            }
                            None => arrival,
                        };
                        last_arrival = last_arrival.max(arrival);
                        accepted_pkts += 1;
                        match accepted_runs.last_mut() {
                            Some((_, h)) if h.0 == seq => *h = PktSeq(seq + 1),
                            _ => accepted_runs.push((PktSeq(seq), PktSeq(seq + 1))),
                        }
                        if let Some(pcap) = self.pcap.as_mut() {
                            Self::capture_data(pcap, c, done, PktSeq(seq));
                        }
                    }
                }
            }
        }
        if accepted_runs.is_empty() {
            self.run_pool.put(accepted_runs);
        } else {
            let runs = self.run_slots.stash(accepted_runs);
            self.queue.schedule_at(
                last_arrival,
                Event::SkbArrival {
                    conn: c as u32,
                    runs,
                },
            );
        }
        self.plan_scratch = plan;

        self.arena.hot[c].accepted_pkts += accepted_pkts;
        // Arm/refresh the RTO.
        if !self.arena.hot[c].rto_armed {
            Self::arm_rto(
                &mut self.queue,
                &mut self.arena.hot[c],
                &self.arena.rtt[c],
                c,
                done,
            );
        }

        // The buffer occupies the device path until `done`; its completion
        // (TSQ) drives burst continuation and unpaced window draining.
        self.arena.hot[c].device_chunks += 1;
        self.arena.hot[c].device_bytes += bytes;
        self.queue.schedule_at(
            done,
            Event::DeviceDone {
                conn: c as u32,
                bytes,
            },
        );
        // §7.1.1 memory proxy: retransmission scoreboard + device backlog.
        let mem = self.arena.board[c].packets_out() * MSS + self.arena.hot[c].device_bytes;
        let hot = &mut self.arena.hot[c];
        hot.mem_peak_bytes = hot.mem_peak_bytes.max(mem);

        if pacing && hot.burst_remaining == 0 && !hot.pacing_timer_armed {
            hot.pacing_timer_armed = true;
            // Mutant M4: every 64th arm is silently lost — the flow
            // believes a timer is pending but none ever fires (the
            // lost-wakeup bug class; only the ACK clock can revive it).
            if mutants::is(Mutant::DropPacingArm) && mutants::drop_this_arm() {
                return;
            }
            let at = self.arena.pacer[c].next_release().max(done);
            self.trace
                .record(now, TraceKind::TimerArm, c as u32, at.as_nanos(), 0);
            self.queue.schedule_at(
                at,
                Event::SendReady {
                    conn: c as u32,
                    from_timer: true,
                },
            );
        }
    }

    fn arm_rto(
        queue: &mut EventQueue<Event>,
        hot: &mut FlowHot,
        rtt: &RttEstimator,
        c: usize,
        now: SimTime,
    ) {
        hot.rto_epoch += 1;
        hot.rto_armed = true;
        if let Some(tok) = hot.rto_timer.take() {
            queue.cancel(tok);
        }
        let backoff = 1u64 << hot.rto_backoff.min(6);
        let rto = rtt.rto() * backoff;
        let tok = queue.schedule_at(
            now + rto,
            Event::RtoFire {
                conn: c as u32,
                epoch: hot.rto_epoch,
            },
        );
        hot.rto_timer = Some(tok);
    }

    fn on_skb_arrival(&mut self, c: usize, now: SimTime, runs: Vec<(PktSeq, PktSeq)>) {
        // Non-GRO mode: the server acks every `n` in-order segments, as a
        // classic stack would — each ACK costs the phone CPU.
        if let Some(n) = self.cfg.ack_per_segs {
            let mut pending = 0u64;
            {
                let receiver = &mut self.arena.receiver[c];
                for &(lo, hi) in &runs {
                    let mut seg = lo;
                    while seg < hi {
                        let end = PktSeq((seg.0 + n).min(hi.0));
                        receiver.on_data(seg, end);
                        pending += 1;
                        seg = end;
                    }
                }
            }
            self.run_pool.put(runs);
            for _ in 0..pending {
                self.emit_ack(c, now);
            }
            return;
        }

        let mut urgency = AckUrgency::Coalesce;
        {
            let receiver = &mut self.arena.receiver[c];
            for &(lo, hi) in &runs {
                if receiver.on_data(lo, hi) == AckUrgency::Immediate {
                    urgency = AckUrgency::Immediate;
                }
            }
        }
        self.run_pool.put(runs);
        match urgency {
            AckUrgency::Immediate => {
                if let Some(tok) = self.arena.hot[c].ack_timer.take() {
                    self.queue.cancel(tok);
                }
                self.emit_ack(c, now);
            }
            AckUrgency::Coalesce => {
                if self.arena.hot[c].ack_timer.is_none() {
                    let tok = self.queue.schedule_at(
                        now + self.cfg.ack_coalesce,
                        Event::EmitAck { conn: c as u32 },
                    );
                    self.arena.hot[c].ack_timer = Some(tok);
                }
            }
        }
    }

    fn emit_ack(&mut self, c: usize, now: SimTime) {
        let dev = self.device_of[c] as usize;
        let mut ack = AckInfo {
            cum: PktSeq(0),
            sacks: self.sack_pool.take(),
        };
        self.arena.receiver[c].build_ack_into(&mut ack);
        // SACK coherence check on every emitted ACK: blocks must sit
        // strictly above the cumulative point, be non-empty, and be
        // strictly increasing and disjoint (adjacent blocks would mean the
        // receiver failed to merge runs). Violations are counted, not
        // panicked on — the `sack-coherence` oracle turns them into
        // first-class fuzz failures with a shrunk repro.
        let mut prev_hi = ack.cum;
        for &(lo, hi) in &ack.sacks {
            if lo <= prev_hi || hi <= lo {
                self.tallies.sack_incoherent += 1;
            }
            prev_hi = hi;
        }
        self.tallies.acks_emitted += 1;
        // Reverse path: netem + link (the server's NIC is never the
        // bottleneck, but serialisation and propagation still apply).
        // ACKs ride each device's private reverse path — the download
        // direction never traverses the fleet's shared uplink bottleneck.
        let wire = wire_bytes(0);
        let release = match self.rev_netems[dev].process(now, wire) {
            NetemVerdict::Drop => {
                self.tallies.ack_drops += 1;
                self.sack_pool.put(ack.sacks);
                return; // lost ACK; a later one supersedes it
            }
            NetemVerdict::Pass { release } => release,
        };
        match self.rev_links[dev].send_flow(release, wire, c as u64) {
            SendOutcome::Dropped { aqm } => {
                self.tallies.ack_drops += 1;
                if aqm && !mutants::is(Mutant::AqmDropMiscount) {
                    self.tallies.aqm_drops += 1;
                }
                self.sack_pool.put(ack.sacks);
            }
            SendOutcome::Accepted { arrival, .. } => {
                if let Some(pcap) = self.pcap.as_mut() {
                    Self::capture_ack(pcap, c, now, &ack);
                }
                let sacks = self.sack_slots.stash(ack.sacks);
                self.queue.schedule_at(
                    arrival,
                    Event::AckArrival {
                        conn: c as u32,
                        cum: ack.cum,
                        sacks,
                    },
                );
            }
        }
    }

    /// Process a coalesced run of same-timestamp ACKs for one connection in
    /// one stack pass over the pooled batch.
    ///
    /// Semantically identical to dispatching each `AckArrival` separately:
    /// every ACK still pays its own CPU charges (the simcheck accounting
    /// identities see the same per-ACK costs), drives the CC callbacks in
    /// order, and is followed by its own send attempt — only the event-loop
    /// overhead (wheel re-scan, dispatch, scratch hand-off) is paid once per
    /// run instead of once per ACK.
    fn on_ack_run(&mut self, c: usize, now: SimTime, batch: &mut Vec<AckInfo>) {
        for ack in batch.drain(..) {
            self.on_ack_arrival(c, now, ack);
        }
    }

    fn on_ack_arrival(&mut self, c: usize, now: SimTime, ack: AckInfo) {
        let dev = self.device_of[c] as usize;
        // Phone-side ACK processing cost: generic path + the CC's model.
        self.cpus[dev].execute_tagged(now, self.cfg.cost.ack_process, "acks");
        let done =
            self.cpus[dev].execute_tagged(now, self.arena.cc_cache[c].model_cost, "cc-model");
        self.tallies.acks_processed += 1;

        let outcome = self.arena.board[c].on_ack(
            &mut self.arena.store,
            &mut self.arena.rtt[c],
            &mut self.arena.rate[c],
            &ack,
            done,
        );
        if self.trace.is_enabled() {
            let rtt_ns = outcome.rtt_sample.map(SimDuration::as_nanos).unwrap_or(0);
            self.trace.record(
                done,
                TraceKind::AckRx,
                c as u32,
                outcome.newly_delivered * MSS,
                rtt_ns,
            );
        }

        if let Some(rtt) = outcome.rtt_sample {
            if self.arena.hot[c].measuring {
                let cold = &mut self.arena.cold[c];
                cold.rtt_summary.record(rtt.as_millis_f64());
                cold.rtt_hist.record(rtt.as_millis_f64());
            }
        }

        // The CC's cached outputs are refreshed once after all of this
        // ACK's mutations (loss event, ack sample, recovery exit).
        let mut cc_touched = false;

        if outcome.recovery_entered {
            self.arena.cc[c].on_loss_event(&LossEvent {
                now: done,
                inflight: self.arena.board[c].packets_in_flight(),
                lost: outcome.newly_lost,
            });
            cc_touched = true;
            self.tallies.recovery_entries += 1;
        }

        if outcome.newly_delivered > 0 {
            let sample = AckSample {
                now: done,
                rtt: outcome
                    .rtt_sample
                    .or(self.arena.rtt[c].latest())
                    .unwrap_or(SimDuration::ZERO),
                delivery_rate: outcome
                    .rate_sample
                    .map(|r| r.rate)
                    .unwrap_or(Bandwidth::ZERO),
                delivered: self.arena.rate[c].delivered(),
                prior_delivered: outcome.prior_delivered,
                acked: outcome.newly_delivered,
                lost: outcome.newly_lost,
                inflight: self.arena.board[c].packets_in_flight(),
                app_limited: outcome.app_limited || outcome.pacing_limited,
                in_recovery: self.arena.board[c].in_recovery(),
            };
            self.arena.cc[c].on_ack(&sample);
            cc_touched = true;
            self.arena.hot[c].rto_backoff = 0;
        }

        if outcome.recovery_exited {
            self.arena.cc[c].on_recovery_exit(done);
            cc_touched = true;
            self.tallies.recovery_exits += 1;
        }

        if cc_touched {
            self.arena.refresh_cc(c);
        }

        // Flight-recorder view of the CC's outputs: record transitions
        // only, so a converged model costs nothing but the comparisons.
        if self.trace.is_enabled() {
            let cwnd = self.arena.cc_cache[c].cwnd;
            if cwnd != self.arena.cold[c].last_cwnd {
                self.arena.cold[c].last_cwnd = cwnd;
                self.trace
                    .record(done, TraceKind::CwndUpdate, c as u32, cwnd, 0);
            }
            let rate = self.arena.cc_cache[c]
                .pacing_rate
                .map(|r| r.as_bps())
                .unwrap_or(0);
            if rate != self.arena.cold[c].last_rate_bps {
                self.arena.cold[c].last_rate_bps = rate;
                self.trace
                    .record(done, TraceKind::PacingRate, c as u32, rate, 0);
            }
            let phase = self.arena.cc[c].phase();
            if phase != self.arena.cold[c].last_phase {
                let from = self.trace.intern(self.arena.cold[c].last_phase);
                let to = self.trace.intern(phase);
                self.arena.cold[c].last_phase = phase;
                self.trace
                    .record(done, TraceKind::CcPhase, c as u32, from, to);
            }
        }

        // Re-arm (or disarm) the RTO from this ACK.
        if self.arena.board[c].has_outstanding() {
            Self::arm_rto(
                &mut self.queue,
                &mut self.arena.hot[c],
                &self.arena.rtt[c],
                c,
                done,
            );
        } else {
            let hot = &mut self.arena.hot[c];
            hot.rto_epoch += 1; // invalidate pending fire
            hot.rto_armed = false;
            if let Some(tok) = hot.rto_timer.take() {
                self.queue.cancel(tok);
            }
        }

        self.sack_pool.put(ack.sacks);
        self.try_send(c, done, false);
    }

    fn on_rto(&mut self, c: usize, now: SimTime, epoch: u64) {
        {
            let has_outstanding = self.arena.board[c].has_outstanding();
            let hot = &mut self.arena.hot[c];
            if epoch == hot.rto_epoch {
                // This fire consumed the pending timer.
                hot.rto_timer = None;
            }
            if epoch != hot.rto_epoch || !has_outstanding {
                if epoch == hot.rto_epoch {
                    hot.rto_armed = false;
                }
                return;
            }
        }
        let done = self.cpus[self.device_of[c] as usize].execute_tagged(
            now,
            self.cfg.cost.rto_process,
            "rto",
        );
        self.tallies.rto_fires += 1;
        let marked = self.arena.board[c].on_rto(&mut self.arena.store);
        self.tallies.rto_marked_lost += marked;
        let inflight = self.arena.board[c].packets_in_flight();
        self.arena.cc[c].on_rto(done, inflight);
        self.arena.refresh_cc(c);
        self.arena.hot[c].rto_backoff += 1;
        self.trace.record(
            done,
            TraceKind::RtoFire,
            c as u32,
            u64::from(self.arena.hot[c].rto_backoff),
            0,
        );
        Self::arm_rto(
            &mut self.queue,
            &mut self.arena.hot[c],
            &self.arena.rtt[c],
            c,
            done,
        );
        self.try_send(c, done, false);
    }

    /// §7.1.2 extension: host-global stride adaptation (the stride is a
    /// host-wide knob, as the paper's kernel patch would expose via
    /// sysctl). The controller combines two signals:
    ///
    /// * **direction** comes from the mechanism: while the CPU is
    ///   saturated, coarser pacing amortises timer overhead (the rising
    ///   side of Fig. 8); with CPU slack, finer pacing is free goodput and
    ///   lower RTT (the falling side);
    /// * **commitment** comes from outcomes: after each move and a
    ///   settling cooldown (BBR's model needs ~a second to grow into new
    ///   headroom), the move is kept only if delivered goodput did not
    ///   regress — otherwise it is reverted and the controller holds,
    ///   which parks it at the Fig. 8 optimum instead of limit-cycling
    ///   around it.
    fn adapt_stride(&mut self, now: SimTime) {
        self.adapt_epochs += 1;
        // Epoch-level utilisation: trailing-window snapshots are far too
        // noisy under bursty pacing. Host-global by design — the builder
        // rejects auto-stride in fleet mode, so device 0 is the host.
        let busy = self.cpus[0].busy_time();
        let util = (busy.saturating_sub(self.adapt_prev_busy)) / ADAPT_EPOCH;
        self.adapt_prev_busy = busy;
        let delivered: u64 = self.arena.rate.iter().map(|r| r.delivered()).sum();
        let epoch_rate = (delivered - self.adapt_prev_delivered) as f64;
        self.adapt_prev_delivered = delivered;

        if self.adapt_epochs <= 3 {
            self.queue
                .schedule_at(now + ADAPT_EPOCH, Event::AdaptStride);
            return;
        }
        if self.adapt_cooldown > 0 {
            self.adapt_cooldown -= 1;
            self.queue
                .schedule_at(now + ADAPT_EPOCH, Event::AdaptStride);
            return;
        }

        let cur = self.arena.pacer[0].stride();
        if self.adapt_pending_eval {
            self.adapt_pending_eval = false;
            // An up-move was justified by CPU saturation, so it must *pay*
            // in delivered goodput to be kept; a down-move was justified by
            // idle headroom and merely must not regress.
            let keep_floor = if cur > self.adapt_pre_change_stride {
                1.02
            } else {
                0.97
            };
            if epoch_rate < self.adapt_pre_change_rate * keep_floor {
                // The move hurt: revert, and permanently fence off that
                // direction past the reverted-from point — a one-shot
                // search that parks at the optimum instead of limit-
                // cycling around it.
                if cur > self.adapt_pre_change_stride {
                    self.adapt_ceiling = self.adapt_pre_change_stride;
                } else {
                    self.adapt_floor = self.adapt_pre_change_stride;
                }
                self.set_all_strides(self.adapt_pre_change_stride);
                self.trace.record(
                    now,
                    TraceKind::StrideAdapt,
                    0,
                    cur,
                    self.adapt_pre_change_stride,
                );
                self.adapt_hold = 12;
                self.tallies.stride_reverts += 1;
                self.adapt_cooldown = 2;
                self.queue
                    .schedule_at(now + ADAPT_EPOCH, Event::AdaptStride);
                return;
            }
            // Committed: fall through and consider the next move.
        }
        if self.adapt_hold > 0 {
            self.adapt_hold -= 1;
            self.queue
                .schedule_at(now + ADAPT_EPOCH, Event::AdaptStride);
            return;
        }

        let next = if util > 0.92 {
            (cur * 2).min(self.adapt_ceiling)
        } else if util < 0.70 {
            (cur / 2).max(self.adapt_floor)
        } else {
            cur
        };
        if next != cur {
            self.set_all_strides(next);
            self.adapt_pre_change_rate = epoch_rate;
            self.adapt_pre_change_stride = cur;
            self.adapt_pending_eval = true;
            self.adapt_cooldown = 3;
            self.tallies.stride_adaptations += 1;
            self.trace.record(now, TraceKind::StrideAdapt, 0, cur, next);
        }
        self.queue
            .schedule_at(now + ADAPT_EPOCH, Event::AdaptStride);
    }

    /// Synthesize and record a data packet (phone -> server).
    fn capture_data(
        pcap: &mut netsim::pcap::PcapWriter<std::io::BufWriter<std::fs::File>>,
        conn: usize,
        at: SimTime,
        seq: PktSeq,
    ) {
        use crate::wire::{build_frame, Ipv4Addr, MacAddr, TcpFlags, TcpHeader};
        let header = TcpHeader {
            src_port: 50_000 + conn as u16,
            dst_port: 5_201, // iperf3
            seq: PktSeq(seq.0 * MSS).to_wire(),
            ack: crate::seq::WireSeq(0),
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            window: 65_535,
            sacks: vec![],
        };
        let payload = vec![0u8; MSS as usize];
        let frame = build_frame(
            MacAddr::host(2),
            MacAddr::host(1),
            Ipv4Addr::lan(2),
            Ipv4Addr::lan(1),
            &header,
            &payload,
        );
        pcap.write_frame(at, &frame).expect("pcap write");
    }

    /// Synthesize and record an ACK (server -> phone).
    fn capture_ack(
        pcap: &mut netsim::pcap::PcapWriter<std::io::BufWriter<std::fs::File>>,
        conn: usize,
        at: SimTime,
        ack: &AckInfo,
    ) {
        use crate::wire::{build_frame, Ipv4Addr, MacAddr, TcpFlags, TcpHeader};
        let header = TcpHeader {
            src_port: 5_201,
            dst_port: 50_000 + conn as u16,
            seq: crate::seq::WireSeq(0),
            ack: PktSeq(ack.cum.0 * MSS).to_wire(),
            flags: TcpFlags {
                ack: true,
                ..Default::default()
            },
            window: 65_535,
            sacks: ack
                .sacks
                .iter()
                .take(3)
                .map(|&(lo, hi)| (PktSeq(lo.0 * MSS).to_wire(), PktSeq(hi.0 * MSS).to_wire()))
                .collect(),
        };
        let frame = build_frame(
            MacAddr::host(1),
            MacAddr::host(2),
            Ipv4Addr::lan(1),
            Ipv4Addr::lan(2),
            &header,
            &[],
        );
        pcap.write_frame(at, &frame).expect("pcap write");
    }

    fn set_all_strides(&mut self, stride: u64) {
        for pacer in &mut self.arena.pacer {
            pacer.set_stride(stride);
        }
    }

    /// Key-wise sum of every device CPU's per-category cycle counters
    /// (identical to the single CPU's map when there is only one device).
    fn cycles_by_category_all(cpus: &[Cpu]) -> BTreeMap<&'static str, u64> {
        let mut all = BTreeMap::new();
        for cpu in cpus {
            for (k, v) in cpu.cycles_by_category() {
                *all.entry(k).or_insert(0) += v;
            }
        }
        all
    }

    /// Fleet aggregate of per-device CPU statistics: cycle/op counts and
    /// queue delay sum across devices, `busy_time` reports the busiest
    /// device (keeping "busy ≤ wall clock" a per-core invariant), and the
    /// mean frequency is cycle-weighted.
    fn aggregate_cpu_stats(cpus: &[Cpu], end: SimTime) -> CpuStats {
        let stats: Vec<CpuStats> = cpus.iter().map(|c| c.stats(end)).collect();
        let total_cycles = stats.iter().map(|s| s.total_cycles).sum::<u64>();
        let mean_freq_hz = if total_cycles == 0 {
            stats.iter().map(|s| s.mean_freq_hz).sum::<f64>() / stats.len().max(1) as f64
        } else {
            stats
                .iter()
                .map(|s| s.mean_freq_hz * s.total_cycles as f64)
                .sum::<f64>()
                / total_cycles as f64
        };
        let mut cycles_by_category = BTreeMap::new();
        for s in &stats {
            for (&k, &v) in &s.cycles_by_category {
                *cycles_by_category.entry(k).or_insert(0) += v;
            }
        }
        CpuStats {
            total_cycles,
            busy_time: stats
                .iter()
                .map(|s| s.busy_time)
                .max()
                .unwrap_or(SimDuration::ZERO),
            ops: stats.iter().map(|s| s.ops).sum(),
            queued_ops: stats.iter().map(|s| s.queued_ops).sum(),
            queue_delay: stats
                .iter()
                .fold(SimDuration::ZERO, |acc, s| acc + s.queue_delay),
            freq_changes: stats.iter().map(|s| s.freq_changes).sum(),
            migrations: stats.iter().map(|s| s.migrations).sum(),
            mean_freq_hz,
            cycles_by_category,
        }
    }

    fn finish(self) -> SimResult {
        let window = self.cfg.duration - self.cfg.warmup;
        let mut per_conn = Vec::with_capacity(self.arena.len());
        let mut total_goodput = Bandwidth::ZERO;
        let mut rtt_all = Summary::new();
        let mut p95_sum = 0.0;
        let mut p95_n = 0u32;
        let mut total_retx = 0;
        let mut skb_sum = 0u64;
        let mut skb_cnt = 0u64;
        let mut idle_ms_sum = 0.0;
        let mut idle_n = 0u32;
        let mut peak_mem = 0u64;
        let mut rx_received = 0u64;
        let mut rx_duplicates = 0u64;
        let mut rx_accepted = 0u64;
        let mut seq_regressions = 0u64;
        let mut snd_nxt_total = 0u64;

        for i in 0..self.arena.len() {
            let board = &self.arena.board[i];
            let hot = &self.arena.hot[i];
            let cold = &self.arena.cold[i];
            let receiver = &self.arena.receiver[i];
            let pacer = &self.arena.pacer[i];
            peak_mem += hot.mem_peak_bytes;
            rx_received += receiver.total_received();
            rx_duplicates += receiver.duplicates();
            rx_accepted += hot.accepted_pkts;
            snd_nxt_total += board.snd_nxt().0;
            // Terminal sequence sanity: the unacknowledged edge never
            // overtakes the send edge, and the receiver never claims data
            // the sender has not produced.
            if board.snd_una() > board.snd_nxt() {
                seq_regressions += 1;
            }
            if receiver.rcv_nxt() > board.snd_nxt() {
                seq_regressions += 1;
            }
            let delivered = self.arena.rate[i].delivered() - cold.delivered_at_measure;
            let goodput = Bandwidth::from_bytes_over(delivered * MSS, window);
            total_goodput = total_goodput.saturating_add(goodput);
            total_retx += board.total_retx();
            rtt_all.merge(&cold.rtt_summary);
            let p95 = cold.rtt_hist.quantile(0.95).unwrap_or(0.0);
            if cold.rtt_hist.count() > 0 {
                p95_sum += p95;
                p95_n += 1;
            }
            // Table 2 semantics: buffer length and idle time are per pacing
            // *period* (one timer fire releases one period's buffer).
            let (mean_skb, mean_idle_ms) = if cold.period_count > 0 {
                (
                    cold.period_bytes_sum as f64 / cold.period_count as f64,
                    pacer.total_idle().as_millis_f64() / cold.period_count as f64,
                )
            } else if cold.skb_count > 0 {
                (cold.skb_bytes_sum as f64 / cold.skb_count as f64, 0.0)
            } else {
                (0.0, 0.0)
            };
            skb_sum += cold.period_bytes_sum.max(cold.skb_bytes_sum);
            skb_cnt += cold.period_count.max(if cold.period_count == 0 {
                cold.skb_count
            } else {
                0
            });
            if pacer.paced_sends() > 0 {
                idle_ms_sum += mean_idle_ms;
                idle_n += 1;
            }
            per_conn.push(ConnStats {
                delivered_pkts: delivered,
                goodput,
                retx_pkts: board.total_retx(),
                rtt_mean_ms: cold.rtt_summary.mean(),
                rtt_p95_ms: p95,
                skbs_sent: cold.skb_count,
                mean_skb_bytes: mean_skb,
                mean_idle_ms,
                srtt_ms: self.arena.rtt[i]
                    .srtt()
                    .map(|s| s.as_millis_f64())
                    .unwrap_or(0.0),
            });
        }

        // Fold the hot-path tallies into the counter map, then the
        // end-of-run accounting counters below. With one device the stats
        // come straight from its CPU (byte-identical to pre-fleet output);
        // fleets aggregate across device CPUs.
        let cpu_stats = if self.cpus.len() == 1 {
            self.cpus[0].stats(self.end)
        } else {
            Self::aggregate_cpu_stats(&self.cpus, self.end)
        };
        let mut counters = Counters::new();
        self.tallies.flush(&mut counters);

        // Link-side AQM ground truth: every CoDel/FQ-CoDel drop the links
        // themselves recorded. The stack-side `aqm_drops` tally above must
        // agree exactly (the aqm-accounting oracle); keeping both sides
        // independently counted is what makes the check non-vacuous.
        let link_aqm_drops: u64 = self
            .fwd_links
            .iter()
            .chain(self.rev_links.iter())
            .chain(self.shared_link.iter())
            .map(|l| l.stats().aqm_drops)
            .sum();
        if link_aqm_drops > 0 {
            counters.add("link_aqm_drops", link_aqm_drops);
        }

        // Pool health: in steady state misses stay at the cold-start count
        // (bounded by events in flight), making regressions visible in
        // counter dumps without touching the serialized scorecard. The
        // `_steady` variants count only measurement-window misses, which a
        // healthy run keeps at exactly zero. Categories are reported
        // separately — segment-run lists, SACK vectors, and the shared
        // scoreboard slab have independent populations and failure modes.
        counters.add("pool_run_misses", self.run_pool.misses());
        counters.add("pool_sack_misses", self.sack_pool.misses());
        counters.add(
            "pool_run_misses_steady",
            self.run_pool.misses() - self.measure_run_misses,
        );
        counters.add(
            "pool_sack_misses_steady",
            self.sack_pool.misses() - self.measure_sack_misses,
        );
        // Independent take/reuse tallies so `misses == takes − reuses` is a
        // genuine cross-check, not a derived quantity.
        counters.add("pool_run_takes", self.run_pool.takes());
        counters.add("pool_run_reuses", self.run_pool.reuses());
        counters.add("pool_sack_takes", self.sack_pool.takes());
        counters.add("pool_sack_reuses", self.sack_pool.reuses());
        // The scoreboard-slab category (shared segment chunks).
        let (slab_takes, slab_reuses, slab_misses) = self.arena.store_stats();
        counters.add("pool_slab_takes", slab_takes);
        counters.add("pool_slab_reuses", slab_reuses);
        counters.add("pool_slab_misses", slab_misses);
        counters.add(
            "pool_slab_misses_steady",
            slab_misses - self.measure_slab_misses,
        );

        // Timer-wheel conservation: every scheduled token is eventually
        // popped, cancelled, or still pending — nothing duplicated, nothing
        // lost (the wheel-conservation oracle).
        counters.add("wheel_scheduled", self.queue.scheduled());
        counters.add("wheel_popped", self.queue.popped());
        counters.add("wheel_cancelled", self.queue.cancelled());
        counters.add("wheel_pending", self.queue.len() as u64);

        // Receive-side conservation and terminal sequence sanity (see the
        // per-conn loop above).
        counters.add("rx_pkts_received", rx_received);
        counters.add("rx_duplicates", rx_duplicates);
        counters.add("rx_pkts_accepted", rx_accepted);
        counters.add("seq_regressions", seq_regressions);
        counters.add("snd_nxt_total", snd_nxt_total);

        // Steady-state cycle attribution (Fig. 4/5's breakdown): cycles
        // charged after MeasureStart, split into the categories the paper
        // discusses. `other` absorbs retransmit/RTO and anything new.
        let steady = |cat: &str| -> u64 {
            let total = cpu_stats.cycles_by_category.get(cat).copied().unwrap_or(0);
            total.saturating_sub(self.measure_cycles.get(cat).copied().unwrap_or(0))
        };
        let steady_total = cpu_stats
            .total_cycles
            .saturating_sub(self.measure_cycles_total);
        let steady_timers = steady("timers");
        let steady_acks = steady("acks");
        let steady_cc = steady("cc-model");
        let steady_data = steady("bytes") + steady("skb-fixed");
        counters.add("cycles_steady_total", steady_total);
        counters.add("cycles_steady_timers", steady_timers);
        counters.add("cycles_steady_acks", steady_acks);
        counters.add("cycles_steady_cc_model", steady_cc);
        counters.add("cycles_steady_data", steady_data);
        counters.add(
            "cycles_steady_other",
            steady_total.saturating_sub(steady_timers + steady_acks + steady_cc + steady_data),
        );

        // Jain fairness over per-connection goodput.
        let rates: Vec<f64> = per_conn.iter().map(|c| c.goodput.as_bps() as f64).collect();
        let fairness = sim_core::metrics::jain(&rates);

        // Fleet metrics: connections were assigned to devices contiguously
        // in `from_arc`, so a running cursor over `per_conn` recovers each
        // device's share. Delivered bytes cover the whole run (not just the
        // measurement window) because the conservation oracle compares them
        // against capacity × full duration.
        let fleet = self.cfg.fleet.as_ref().map(|fleet| {
            let mut outcomes = Vec::with_capacity(fleet.devices.len());
            let mut delivered_bytes = 0u64;
            let mut conn = 0usize;
            for (d, spec) in fleet.devices.iter().enumerate() {
                let mut goodput = Bandwidth::ZERO;
                let mut wants_pacing = false;
                for _ in 0..spec.connections {
                    goodput = goodput.saturating_add(per_conn[conn].goodput);
                    wants_pacing |= self.arena.cc_cache[conn].wants_pacing;
                    delivered_bytes += self.arena.rate[conn].delivered() * MSS;
                    conn += 1;
                }
                outcomes.push(DeviceOutcome {
                    goodput_mbps: goodput.as_mbps_f64(),
                    wants_pacing,
                    busy_fraction: self.cpus[d].busy_time() / self.cfg.duration,
                });
            }
            FleetResult::compute(
                fleet,
                &outcomes,
                self.tallies.shared_pkts,
                self.tallies.shared_drops,
                delivered_bytes,
            )
        });

        SimResult {
            total_goodput,
            mean_rtt_ms: rtt_all.mean(),
            p95_rtt_ms: if p95_n == 0 {
                0.0
            } else {
                p95_sum / p95_n as f64
            },
            total_retx,
            cpu: cpu_stats,
            mean_skb_bytes: if skb_cnt == 0 {
                0.0
            } else {
                skb_sum as f64 / skb_cnt as f64
            },
            mean_idle_ms: if idle_n == 0 {
                0.0
            } else {
                idle_ms_sum / idle_n as f64
            },
            counters,
            per_conn,
            fairness,
            fleet,
            peak_mem_bytes: peak_mem,
            timeline: {
                let mut out = Vec::new();
                for w in self.timeline.windows(2) {
                    let (t0, d0) = w[0];
                    let (t1, d1) = w[1];
                    let rate = Bandwidth::from_bytes_over((d1 - d0) * MSS, t1 - t0);
                    out.push((t1.as_secs_f64(), rate.as_mbps_f64()));
                }
                out
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_model::configs::DeviceProfile;
    use netsim::media::MediaProfile;

    fn quick(cc: CcKind, cpu: CpuConfig, conns: usize) -> SimConfig {
        SimConfig::builder(DeviceProfile::pixel4(), cpu, cc, conns)
            .duration(SimDuration::from_secs(3))
            .warmup(SimDuration::from_millis(500))
            .build()
            .expect("valid config")
    }

    #[test]
    fn telemetry_sampling_does_not_change_results() {
        // The determinism contract for flight-data telemetry: sampling only
        // observes, so a sampled run's SimResult is byte-identical to an
        // unsampled one (serialize both to canonical JSON and compare).
        let plain = StackSim::new(quick(CcKind::Bbr, CpuConfig::LowEnd, 3)).run();
        let mut cfg = quick(CcKind::Bbr, CpuConfig::LowEnd, 3);
        cfg.telemetry = Some(SimDuration::from_millis(10));
        let (sampled, log) = StackSim::new(cfg).run_with_telemetry();
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&sampled).unwrap(),
            "telemetry sampling must not perturb any result byte"
        );
        // `log` is `Some` whenever sim-core was built with its default
        // `telemetry` feature (the workspace default); `None` only under
        // `--no-default-features`, where the sink is compiled out.
        if let Some(log) = log {
            assert!(!log.flows.is_empty(), "flow samples collected");
            assert!(!log.queues.is_empty(), "queue samples collected");
            assert_eq!(log.dropped_rows, 0);
            // Rows are time-major and, within an instant, connection-minor.
            for w in log.flows.windows(2) {
                assert!(
                    w[0].at < w[1].at || (w[0].at == w[1].at && w[0].conn < w[1].conn),
                    "flow rows out of order: {:?} then {:?}",
                    (w[0].at, w[0].conn),
                    (w[1].at, w[1].conn),
                );
            }
            // One queue row per sampled instant, covering the whole run.
            for w in log.queues.windows(2) {
                assert_eq!(
                    w[1].at.saturating_since(w[0].at),
                    SimDuration::from_millis(10)
                );
            }
            // Phase strings come from the live CC objects.
            assert!(log.flows.iter().all(|f| !f.phase.is_empty()));
        }
    }

    #[test]
    fn telemetry_log_is_deterministic_across_runs() {
        let run = || {
            let mut cfg = quick(CcKind::Bbr, CpuConfig::LowEnd, 2);
            cfg.telemetry = Some(SimDuration::from_millis(20));
            let (_, log) = StackSim::new(cfg).run_with_telemetry();
            let mut out = Vec::new();
            if let Some(log) = log {
                sim_core::telemetry::write_jsonl(&log, &mut out).unwrap();
            }
            out
        };
        assert_eq!(run(), run(), "flight data must be byte-identical");
    }

    #[test]
    fn mixed_fleet_competes_through_the_shared_bottleneck() {
        use crate::fleet::FleetConfig;
        use netsim::Qdisc;

        let rate = Bandwidth::from_mbps(150);
        let fleet = FleetConfig::mixed(6).with_shared(FleetConfig::pop_uplink(rate, Qdisc::Codel));
        let cfg = SimConfig::builder(
            DeviceProfile::pixel4(),
            CpuConfig::MidEnd,
            CcKind::Cubic,
            1, // overwritten by .fleet()
        )
        .fleet(fleet)
        .duration(SimDuration::from_secs(3))
        .warmup(SimDuration::from_millis(500))
        .build()
        .expect("valid fleet config");
        let res = StackSim::new(cfg.clone()).run();
        let f = res.fleet.as_ref().expect("fleet runs report fleet metrics");
        assert_eq!(f.devices, 6);
        assert!(f.shared_pkts > 0, "traffic crossed the shared hop");
        assert!(f.aggregate_goodput_mbps > 0.0);
        assert!(
            f.aggregate_goodput_mbps <= rate.as_mbps_f64() * 1.05,
            "fleet goodput {} cannot exceed the shared bottleneck {}",
            f.aggregate_goodput_mbps,
            rate.as_mbps_f64()
        );
        assert!((1.0 / f.devices as f64..=1.0 + 1e-12).contains(&f.jain_devices));
        assert!(!f.cc_groups.is_empty() && !f.tiers.is_empty());
        // Conservation over the whole run: the shared link cannot carry
        // more payload than capacity × duration.
        let cap_bytes = (rate.as_bps() as f64 / 8.0) * cfg.duration.as_secs_f64();
        assert!(
            (f.delivered_bytes as f64) <= cap_bytes,
            "delivered {} > capacity {}",
            f.delivered_bytes,
            cap_bytes
        );
        // Determinism: the same fleet config reproduces byte-identically.
        let again = StackSim::new(cfg).run();
        assert_eq!(
            serde_json::to_string(&res).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn non_fleet_results_omit_the_fleet_field() {
        let res = StackSim::new(quick(CcKind::Cubic, CpuConfig::HighEnd, 1)).run();
        assert!(res.fleet.is_none());
        let json = serde_json::to_string(&res).unwrap();
        assert!(
            !json.contains("\"fleet\""),
            "serialized non-fleet results must not grow a fleet key"
        );
    }

    #[test]
    fn cubic_high_end_reaches_near_line_rate() {
        let res = StackSim::new(quick(CcKind::Cubic, CpuConfig::HighEnd, 1)).run();
        let mbps = res.goodput_mbps();
        assert!(
            mbps > 850.0,
            "High-End Cubic should near 1 Gbps line rate, got {mbps:.0}"
        );
    }

    #[test]
    fn bbr_high_end_reaches_near_line_rate() {
        let res = StackSim::new(quick(CcKind::Bbr, CpuConfig::HighEnd, 1)).run();
        let mbps = res.goodput_mbps();
        assert!(
            mbps > 800.0,
            "High-End BBR should near line rate, got {mbps:.0}"
        );
    }

    #[test]
    fn low_end_cubic_is_cpu_limited() {
        let res = StackSim::new(quick(CcKind::Cubic, CpuConfig::LowEnd, 1)).run();
        let mbps = res.goodput_mbps();
        assert!(
            (250.0..500.0).contains(&mbps),
            "Low-End Cubic should be CPU-limited near the paper's 364 Mbps, got {mbps:.0}"
        );
    }

    #[test]
    fn low_end_bbr_below_cubic() {
        let cubic = StackSim::new(quick(CcKind::Cubic, CpuConfig::LowEnd, 1)).run();
        let bbr = StackSim::new(quick(CcKind::Bbr, CpuConfig::LowEnd, 1)).run();
        assert!(
            bbr.goodput_mbps() < cubic.goodput_mbps(),
            "Fig 2a: BBR ({:.0}) below Cubic ({:.0}) at Low-End",
            bbr.goodput_mbps(),
            cubic.goodput_mbps()
        );
    }

    #[test]
    fn bbr_degrades_with_connections_on_low_end() {
        let one = StackSim::new(quick(CcKind::Bbr, CpuConfig::LowEnd, 1)).run();
        let twenty = StackSim::new(quick(CcKind::Bbr, CpuConfig::LowEnd, 20)).run();
        assert!(
            twenty.goodput_mbps() < 0.75 * one.goodput_mbps(),
            "Fig 2a: BBR@20 ({:.0}) should drop well below BBR@1 ({:.0})",
            twenty.goodput_mbps(),
            one.goodput_mbps()
        );
    }

    #[test]
    fn disabling_pacing_recovers_bbr_low_end() {
        let mut paced = quick(CcKind::Bbr, CpuConfig::LowEnd, 20);
        paced.duration = SimDuration::from_secs(3);
        let mut unpaced = paced.clone();
        unpaced.master = MasterConfig::pacing_off();
        let paced = StackSim::new(paced).run();
        let unpaced = StackSim::new(unpaced).run();
        assert!(
            unpaced.goodput_mbps() > 1.5 * paced.goodput_mbps(),
            "Fig 4: unpaced BBR ({:.0}) ≫ paced ({:.0}) on Low-End/20conns",
            unpaced.goodput_mbps(),
            paced.goodput_mbps()
        );
    }

    #[test]
    fn unpaced_bbr_has_higher_rtt() {
        let paced = quick(CcKind::Bbr, CpuConfig::LowEnd, 20);
        let mut unpaced = paced.clone();
        unpaced.master = MasterConfig::pacing_off();
        let paced = StackSim::new(paced).run();
        let unpaced = StackSim::new(unpaced).run();
        assert!(
            unpaced.mean_rtt_ms > 1.5 * paced.mean_rtt_ms,
            "Fig 7: unpaced RTT ({:.2}ms) should far exceed paced ({:.2}ms)",
            unpaced.mean_rtt_ms,
            paced.mean_rtt_ms
        );
    }

    #[test]
    fn shallow_buffer_explodes_retx_when_unpaced() {
        let mut paced = quick(CcKind::Bbr, CpuConfig::LowEnd, 20);
        paced.path = MediaProfile::Ethernet.path_config().with_queue_packets(10);
        let mut unpaced = paced.clone();
        unpaced.master = MasterConfig::pacing_off();
        let paced = StackSim::new(paced).run();
        let unpaced = StackSim::new(unpaced).run();
        assert!(
            unpaced.total_retx > 10 * paced.total_retx.max(1),
            "§5.2.3: unpaced retx ({}) ≫ paced ({})",
            unpaced.total_retx,
            paced.total_retx
        );
    }

    #[test]
    fn stride_improves_low_end_bbr() {
        let stride1 = quick(CcKind::Bbr, CpuConfig::LowEnd, 20);
        let mut stride10 = stride1.clone();
        stride10.pacing = PacingConfig::with_stride(10);
        let r1 = StackSim::new(stride1).run();
        let r10 = StackSim::new(stride10).run();
        assert!(
            r10.goodput_mbps() > 1.3 * r1.goodput_mbps(),
            "Fig 8: stride 10 ({:.0}) should beat stride 1 ({:.0}) on Low-End",
            r10.goodput_mbps(),
            r1.goodput_mbps()
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = StackSim::new(quick(CcKind::Bbr, CpuConfig::LowEnd, 5)).run();
        let b = StackSim::new(quick(CcKind::Bbr, CpuConfig::LowEnd, 5)).run();
        assert_eq!(a.total_goodput, b.total_goodput);
        assert_eq!(a.total_retx, b.total_retx);
        assert_eq!(a.counters.get("skbs_sent"), b.counters.get("skbs_sent"));
    }

    #[test]
    fn lte_is_bandwidth_limited_bbr_matches_cubic() {
        let mut cfg = quick(CcKind::Bbr, CpuConfig::LowEnd, 4);
        cfg.path = MediaProfile::Lte.path_config();
        let bbr = StackSim::new(cfg).run();
        let mut cfg2 = quick(CcKind::Cubic, CpuConfig::LowEnd, 4);
        cfg2.path = MediaProfile::Lte.path_config();
        let cubic = StackSim::new(cfg2).run();
        let ratio = bbr.goodput_mbps() / cubic.goodput_mbps();
        assert!(
            (0.8..1.25).contains(&ratio),
            "Fig 9: on LTE BBR ({:.1}) ≈ Cubic ({:.1})",
            bbr.goodput_mbps(),
            cubic.goodput_mbps()
        );
    }

    #[test]
    fn pacing_improves_cubic_fairness() {
        // Sec 5.2.3 cites Aggarwal'00 / Wei'06: "packet pacing improves ...
        // TCP fairness". Unpaced Cubic through a droptail queue shows
        // capture effects; the same Cubic with TCP-internal pacing spreads
        // arrivals and shares better. (BBRv1's own same-path fairness is
        // poor on sub-10 s horizons — the stale-min_rtt cwnd lock — both
        // here and in the literature, so Cubic carries this claim.)
        let mut unpaced_cfg = quick(CcKind::Cubic, CpuConfig::HighEnd, 10);
        unpaced_cfg.duration = SimDuration::from_secs(8);
        let mut paced_cfg = unpaced_cfg.clone();
        paced_cfg.master = MasterConfig::pacing_on();
        let unpaced = StackSim::new(unpaced_cfg).run();
        let paced = StackSim::new(paced_cfg).run();
        assert!(
            paced.fairness > unpaced.fairness,
            "paced Cubic ({:.2}) should out-share unpaced Cubic ({:.2})",
            paced.fairness,
            unpaced.fairness
        );
        assert!(
            paced.fairness > 0.6,
            "paced Cubic Jain index {} too unfair",
            paced.fairness
        );
    }

    #[test]
    fn random_loss_recovers_and_still_delivers() {
        // 0.5% netem loss on the uplink: recovery machinery must keep the
        // pipe productive and every loss must be repaired eventually.
        let mut cfg = quick(CcKind::Cubic, CpuConfig::HighEnd, 2);
        cfg.duration = SimDuration::from_secs(2);
        cfg.path = MediaProfile::Ethernet
            .path_config()
            .with_forward_netem(netsim::netem::NetemConfig::none().with_loss(0.005));
        let res = StackSim::new(cfg).run();
        assert!(res.total_retx > 0, "losses must occur");
        assert!(
            res.goodput_mbps() > 100.0,
            "loss recovery keeps the pipe productive: {:.0}",
            res.goodput_mbps()
        );
        assert!(
            res.counters.get("rto_fires") < 50,
            "fast recovery, not RTO storms"
        );
    }

    #[test]
    fn cross_traffic_consumes_capacity() {
        let mut clean = quick(CcKind::Cubic, CpuConfig::HighEnd, 4);
        clean.duration = SimDuration::from_secs(2);
        let mut loaded = clean.clone();
        loaded.cross_traffic = Some(netsim::crosstraffic::CrossTrafficConfig::at(
            Bandwidth::from_mbps(600),
        ));
        let clean = StackSim::new(clean).run();
        let loaded = StackSim::new(loaded).run();
        assert!(
            loaded.counters.get("cross_pkts") > 0,
            "cross source must inject"
        );
        assert!(
            loaded.goodput_mbps() < 0.75 * clean.goodput_mbps(),
            "600 Mbps of cross traffic must take a real bite: {:.0} vs {:.0}",
            loaded.goodput_mbps(),
            clean.goodput_mbps()
        );
    }

    #[test]
    fn pcap_capture_is_readable_and_complete() {
        let path = std::env::temp_dir().join("tcp_sim_test_capture.pcap");
        let mut cfg = quick(CcKind::Bbr, CpuConfig::HighEnd, 1);
        cfg.duration = SimDuration::from_millis(120);
        cfg.warmup = SimDuration::from_millis(40);
        cfg.pcap = Some(path.clone());
        let res = StackSim::new(cfg).run();
        let bytes = std::fs::read(&path).expect("pcap exists");
        let (linktype, records) = netsim::pcap::read_pcap(&bytes[..]).expect("valid pcap");
        std::fs::remove_file(&path).ok();
        assert_eq!(linktype, netsim::pcap::LINKTYPE_EN10MB);
        // Data packets + ACKs are all captured.
        let sent = res.counters.get("pkts_sent")
            - res.counters.get("queue_drops")
            - res.counters.get("netem_drops");
        let acks = res.counters.get("acks_emitted") - res.counters.get("ack_drops");
        assert_eq!(
            records.len() as u64,
            sent + acks,
            "every wire packet captured"
        );
        // Every frame decodes with valid checksums.
        for rec in &records {
            let (src, dst, tcp) = crate::wire::parse_frame(&rec.frame).expect("frame ok");
            crate::wire::TcpHeader::decode(src, dst, tcp).expect("tcp ok");
        }
    }

    #[test]
    fn cycle_breakdown_shows_the_pacing_tax() {
        // The paper's claim, visible in the accounting: paced BBR spends a
        // substantial share of its cycles on timer traffic; unpaced BBR
        // spends none.
        let paced = StackSim::new(quick(CcKind::Bbr, CpuConfig::LowEnd, 20)).run();
        let mut unpaced_cfg = quick(CcKind::Bbr, CpuConfig::LowEnd, 20);
        unpaced_cfg.master = MasterConfig::pacing_off();
        let unpaced = StackSim::new(unpaced_cfg).run();

        let share = |stats: &cpu_model::CpuStats, cat: &str| {
            *stats.cycles_by_category.get(cat).unwrap_or(&0) as f64
                / stats.total_cycles.max(1) as f64
        };
        assert!(
            share(&paced.cpu, "timers") > 0.05,
            "paced timers share {:.3} should be substantial",
            share(&paced.cpu, "timers")
        );
        assert_eq!(
            share(&unpaced.cpu, "timers"),
            0.0,
            "no pacing timers when unpaced"
        );
        // Categories partition the total.
        assert_eq!(
            paced.cpu.cycles_by_category.values().sum::<u64>(),
            paced.cpu.total_cycles
        );
    }

    #[test]
    fn steady_state_never_misses_the_buffer_pools() {
        // The run/SACK pools warm up during slow start; once measurement
        // begins every take() must be served from the pool — a steady-state
        // miss means the hot path hit the allocator.
        let res = StackSim::new(quick(CcKind::Bbr, CpuConfig::LowEnd, 5)).run();
        assert_eq!(
            res.counters.get("pool_run_misses_steady"),
            0,
            "run-list pool missed during the measurement window"
        );
        assert_eq!(
            res.counters.get("pool_sack_misses_steady"),
            0,
            "SACK pool missed during the measurement window"
        );
        // And the steady-cycle partition must add up.
        let parts = res.counters.get("cycles_steady_timers")
            + res.counters.get("cycles_steady_acks")
            + res.counters.get("cycles_steady_cc_model")
            + res.counters.get("cycles_steady_data")
            + res.counters.get("cycles_steady_other");
        assert_eq!(parts, res.counters.get("cycles_steady_total"));
        assert!(res.counters.get("cycles_steady_total") > 0);
    }

    #[test]
    fn accounting_identities_hold_in_results() {
        // The identities simcheck's oracles rely on, checked once here on a
        // representative run: pool misses equal takes minus reuses, the
        // timer wheel conserves tokens, receive-side conservation holds,
        // and no terminal sequence regression occurred.
        let res = StackSim::new(quick(CcKind::Bbr, CpuConfig::MidEnd, 3)).run();
        let g = |name| res.counters.get(name);
        assert!(g("pool_run_takes") > 0, "run pool must see traffic");
        assert_eq!(
            g("pool_run_misses"),
            g("pool_run_takes") - g("pool_run_reuses")
        );
        assert_eq!(
            g("pool_sack_misses"),
            g("pool_sack_takes") - g("pool_sack_reuses")
        );
        assert!(g("pool_slab_takes") > 0, "slab must see traffic");
        assert_eq!(
            g("pool_slab_misses"),
            g("pool_slab_takes") - g("pool_slab_reuses")
        );
        assert_eq!(
            g("wheel_scheduled"),
            g("wheel_popped") + g("wheel_cancelled") + g("wheel_pending"),
            "timer wheel must conserve tokens"
        );
        assert!(
            g("rx_pkts_received") + g("rx_duplicates") <= g("rx_pkts_accepted"),
            "receiver cannot see more packets than survived the wire"
        );
        assert_eq!(g("seq_regressions"), 0);
        assert_eq!(g("sack_incoherent"), 0);
    }

    #[test]
    fn traced_run_is_bit_identical_to_untraced() {
        // The flight recorder must be an observer: same config, same seed,
        // tracing on vs off, identical results.
        let plain = StackSim::new(quick(CcKind::Bbr, CpuConfig::LowEnd, 3)).run();
        let (traced, log) = StackSim::new(quick(CcKind::Bbr, CpuConfig::LowEnd, 3)).run_traced();
        assert_eq!(plain.total_goodput, traced.total_goodput);
        assert_eq!(plain.total_retx, traced.total_retx);
        assert_eq!(plain.mean_rtt_ms, traced.mean_rtt_ms);
        assert_eq!(
            plain.counters.get("skbs_sent"),
            traced.counters.get("skbs_sent")
        );
        assert_eq!(plain.cpu.total_cycles, traced.cpu.total_cycles);
        // The log itself is well-formed: time-ordered, with the windowed
        // CPU profile appended as counter series.
        assert!(log.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(log.counters.iter().any(|s| s.name.starts_with("cycles.")));
        // With the default `trace` feature on, paced BBR must have left
        // pacing-timer and CC tracepoints behind (the ring is empty only
        // when sim-core was built without the feature).
        if !log.events.is_empty() {
            use sim_core::trace::TraceKind;
            assert!(log.events.iter().any(|e| e.kind == TraceKind::PacingFire));
            assert!(log.events.iter().any(|e| e.kind == TraceKind::CwndUpdate));
            assert!(log.events.iter().any(|e| e.kind == TraceKind::CpuSpan));
            assert!(log.events.iter().any(|e| e.kind == TraceKind::WheelPop));
        }
    }

    #[test]
    fn counters_track_pacing_activity() {
        let res = StackSim::new(quick(CcKind::Bbr, CpuConfig::MidEnd, 2)).run();
        assert!(
            res.counters.get("timer_fires") > 0,
            "paced BBR must fire timers"
        );
        assert!(res.counters.get("skbs_sent") > 0);
        let cubic = StackSim::new(quick(CcKind::Cubic, CpuConfig::MidEnd, 2)).run();
        assert_eq!(
            cubic.counters.get("timer_arms"),
            0,
            "unpaced Cubic arms no pacing timers"
        );
    }
}
