//! TCP-internal packet pacing (§6.1) and the pacing stride (§6.2).
//!
//! Linux's internal pacer limits transmission of *socket buffers*: after a
//! buffer of `socketBufferLength` bytes is sent at `pacingRate`, the socket
//! idles for
//!
//! ```text
//! idleTime = socketBufferLength / pacingRate            (Eq. 1)
//! ```
//!
//! implemented as an hrtimer whose "expiration reschedules a callback to
//! process the socket and send the next socket buffer". The paper's fix
//! scales that idle time by a *pacing stride*:
//!
//! ```text
//! idleTime = idleTime × pacingStride                    (Eq. 2)
//! ```
//!
//! so the stack paces `stride×` less often. Because ACKs keep clocking data
//! into the socket during the longer idle, the next buffer is
//! correspondingly larger — until the socket-buffer cap binds (Table 2's
//! plateau at ~121 Kb), after which throughput falls as `1/stride`.
//!
//! This module also implements `tcp_tso_autosize`: a paced socket sizes
//! each buffer to about 1 ms of the pacing rate (at least 2 segments, at
//! most the buffer cap), which is why low per-flow pacing rates degenerate
//! into tiny 2-MSS sends with huge per-send overhead — the mechanism behind
//! Figure 2's collapse with many connections.

use serde::{Deserialize, Serialize};
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;

/// Target time-per-buffer for TSO autosizing (Linux sizes GSO chunks to
/// ~1 ms of pacing rate).
pub const AUTOSIZE_PERIOD: SimDuration = SimDuration::from_millis(1);
/// Minimum paced buffer, in segments (`tcp_min_tso_segs`).
pub const MIN_TSO_SEGS: u64 = 2;
/// Largest unpaced GSO burst, bytes (64 KiB, `GSO_MAX_SIZE`).
pub const GSO_MAX_BYTES: u64 = 65_536;

/// Static pacing configuration for a connection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacingConfig {
    /// The paper's pacing stride (Eq. 2); 1 is stock kernel behaviour.
    pub stride: u64,
    /// §7.1.2 extension: adapt the stride online per connection (hill
    /// climbing on delivered goodput). When set, `stride` is the starting
    /// point and the controller explores `[1, 64]`.
    pub auto_stride: bool,
    /// Socket-buffer cap on a single paced send, bytes. Default ≈ 15 KB,
    /// which reproduces Table 2's ~121 Kb skb plateau.
    pub skb_cap_bytes: u64,
    /// Fallback-rate multiplier when the CC sets no rate: Linux paces at
    /// `factor × mss·cwnd/srtt` (×2 in slow start, ×1.2 in avoidance; we
    /// use the congestion-avoidance value, §5.2.2's formula).
    pub fallback_gain: f64,
}

impl Default for PacingConfig {
    fn default() -> Self {
        PacingConfig {
            stride: 1,
            auto_stride: false,
            skb_cap_bytes: 15_000,
            fallback_gain: 1.2,
        }
    }
}

impl PacingConfig {
    /// Stock pacing with the given stride (the Fig. 8 sweep).
    pub fn with_stride(stride: u64) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        PacingConfig {
            stride,
            ..Default::default()
        }
    }

    /// §7.1.2 extension: the adaptive stride controller, starting at 1x.
    pub fn auto() -> Self {
        PacingConfig {
            auto_stride: true,
            ..Default::default()
        }
    }
}

/// Per-connection pacing state.
#[derive(Debug, Clone)]
pub struct Pacer {
    config: PacingConfig,
    mss: u64,
    /// Earliest instant the next buffer may be released.
    next_release: SimTime,
    /// Statistics for Table 2: buffer lengths and idle times.
    last_idle: SimDuration,
    total_idle: SimDuration,
    paced_sends: u64,
    /// `(rate_bps, autosize_segs)` memo: in steady state the CC's pacing
    /// rate changes rarely relative to sends, and autosizing does 128-bit
    /// arithmetic per call. Exact-result cache; `Cell` because the sizing
    /// queries are `&self`.
    auto_memo: std::cell::Cell<(u64, u64)>,
    /// `(rate_bps, bytes, idle)` memo for the Eq. (1) gate advance — the
    /// per-send `len/rate` division hits the same (rate, chunk size) pair
    /// almost every time.
    idle_memo: (u64, u64, SimDuration),
}

impl Pacer {
    /// A pacer for `mss`-byte segments.
    pub fn new(config: PacingConfig, mss: u64) -> Self {
        assert!(mss > 0, "mss must be positive");
        assert!(config.stride >= 1, "stride must be at least 1");
        assert!(
            config.skb_cap_bytes >= 2 * mss,
            "buffer cap must admit 2 segments"
        );
        Pacer {
            config,
            mss,
            next_release: SimTime::ZERO,
            last_idle: SimDuration::ZERO,
            total_idle: SimDuration::ZERO,
            paced_sends: 0,
            auto_memo: std::cell::Cell::new((u64::MAX, 0)),
            idle_memo: (u64::MAX, 0, SimDuration::ZERO),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PacingConfig {
        &self.config
    }

    /// Current stride (mutable under the §7.1.2 auto-stride controller).
    pub fn stride(&self) -> u64 {
        self.config.stride
    }

    /// Set the stride (auto-stride controller). Clamped to `[1, 64]`.
    pub fn set_stride(&mut self, stride: u64) {
        self.config.stride = stride.clamp(1, 64);
    }

    /// Can a paced buffer be released at `now`?
    pub fn can_send(&self, now: SimTime) -> bool {
        now >= self.next_release
    }

    /// The earliest release instant for the next buffer.
    pub fn next_release(&self) -> SimTime {
        self.next_release
    }

    /// TSO autosize: the paced buffer size, in whole segments, for the
    /// given pacing rate — `clamp(rate × 1 ms, 2 segs, cap)`.
    pub fn autosize_segs(&self, rate: Bandwidth) -> u64 {
        if rate.is_zero() {
            return MIN_TSO_SEGS;
        }
        let (memo_bps, memo_segs) = self.auto_memo.get();
        if memo_bps == rate.as_bps() {
            return memo_segs;
        }
        let bytes_per_period = rate.bytes_in(AUTOSIZE_PERIOD);
        let segs = bytes_per_period / self.mss;
        let segs = segs.clamp(MIN_TSO_SEGS, self.cap_segs());
        self.auto_memo.set((rate.as_bps(), segs));
        segs
    }

    /// The buffer cap in whole segments.
    pub fn cap_segs(&self) -> u64 {
        (self.config.skb_cap_bytes / self.mss).max(MIN_TSO_SEGS)
    }

    /// The whole pacing-period budget, in segments: with a stride of `s`,
    /// one timer fire releases up to `s` autosized chunks' worth of
    /// accumulated data ("paces less frequently but sends more data per
    /// pacing period", §6.2), bounded by the socket-buffer cap — the
    /// mechanism behind Table 2's skb-length growth and plateau.
    pub fn burst_segs(&self, rate: Bandwidth) -> u64 {
        (self.autosize_segs(rate) * self.config.stride).min(self.cap_segs())
    }

    /// The Eq. (1) × Eq. (2) stride decomposition: a pacing period's total
    /// idle is `autosize × stride / rate`. The enlarged burst *absorbs*
    /// that idle as long as it fits under the socket-buffer cap (data flows
    /// at the full pacing rate, just in coarser quanta); once the cap
    /// binds, the residue is charged as a cap deficit and throughput falls
    /// as `cap/(autosize × stride)` — Table 2's plateau-then-decline.
    ///
    /// This returns the deficit to charge when a period opens (zero until
    /// the cap binds).
    pub fn cap_deficit_segs(&self, rate: Bandwidth) -> u64 {
        (self.autosize_segs(rate) * self.config.stride).saturating_sub(self.burst_segs(rate))
    }

    /// Charge the capped period's idle residue at period open (see
    /// [`Pacer::cap_deficit_segs`]).
    pub fn charge_cap_deficit(&mut self, now: SimTime, rate: Bandwidth) {
        let deficit = self.cap_deficit_segs(rate);
        if deficit > 0 {
            self.advance(now, deficit * self.mss, rate);
        }
    }

    /// Record a paced transmission of `bytes` at `rate`, advancing the
    /// release gate with **EDT semantics** (Linux `tcp_wstamp_ns =
    /// max(wstamp, now) + len/rate`):
    ///
    /// * the gate advances from the *schedule*, not from when the CPU
    ///   finished the send — stack processing overlaps the idle gap, and a
    ///   slow CPU shows up as timers firing late, not as a longer schedule;
    /// * the gate charges the bytes *actually* sent, so a cwnd-clipped
    ///   short send never burns a full period's budget;
    /// * the stride enters through the period's burst budget and the cap
    ///   deficit, not here (charging it per send too would double-count).
    ///
    /// Returns the idle duration added.
    pub fn on_send(&mut self, now: SimTime, bytes: u64, rate: Bandwidth) -> SimDuration {
        let idle = self.advance(now, bytes, rate);
        self.paced_sends += 1;
        idle
    }

    fn advance(&mut self, now: SimTime, bytes: u64, rate: Bandwidth) -> SimDuration {
        assert!(!rate.is_zero(), "paced send requires a positive rate");
        let idle = if self.idle_memo.0 == rate.as_bps() && self.idle_memo.1 == bytes {
            self.idle_memo.2
        } else {
            let idle = rate.time_to_send(bytes);
            self.idle_memo = (rate.as_bps(), bytes, idle);
            idle
        };
        let base = self.next_release.max(now);
        self.next_release = base + idle;
        self.last_idle = idle;
        self.total_idle += idle;
        idle
    }

    /// Total idle time armed over the connection's lifetime (Table 2's
    /// per-period idle is `total_idle / periods`).
    pub fn total_idle(&self) -> SimDuration {
        self.total_idle
    }

    /// The fallback pacing rate when the CC supplies none (§5.2.2):
    /// `fallback_gain × mss × cwnd / srtt`.
    pub fn fallback_rate(&self, cwnd_pkts: u64, srtt: SimDuration) -> Bandwidth {
        if srtt.is_zero() {
            return Bandwidth::ZERO;
        }
        Bandwidth::from_bytes_over(cwnd_pkts * self.mss, srtt).mul_f64(self.config.fallback_gain)
    }

    /// Idle time of the most recent paced send (Table 2 column).
    pub fn last_idle(&self) -> SimDuration {
        self.last_idle
    }

    /// Mean idle time across all paced sends (Table 2 column).
    pub fn mean_idle(&self) -> SimDuration {
        if self.paced_sends == 0 {
            SimDuration::ZERO
        } else {
            self.total_idle / self.paced_sends
        }
    }

    /// Number of paced sends so far.
    pub fn paced_sends(&self) -> u64 {
        self.paced_sends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const MSS: u64 = 1448;

    #[test]
    fn eq1_idle_time() {
        // Eq. (1): the idle after a paced send is the time the autosized
        // chunk takes at the pacing rate — at ~36.5 Mbps the chunk is 3
        // segments and the idle just under a millisecond (Table 2 row 1×
        // reports 0.88 ms on the physical phone).
        let mut p = Pacer::new(PacingConfig::default(), MSS);
        let rate = Bandwidth::from_bps(36_477_272);
        let chunk = p.autosize_segs(rate) * MSS;
        let idle = p.on_send(SimTime::ZERO, chunk, rate);
        assert_eq!(idle, rate.time_to_send(chunk));
        assert!((0.7..1.1).contains(&idle.as_millis_f64()), "idle {idle}");
    }

    #[test]
    fn eq2_period_idle_scales_linearly_with_stride() {
        // Eq. (1) x Eq. (2): a whole pacing period's idle is
        // `autosize x stride / rate`, decomposed into the enlarged burst's
        // own serialisation plus the cap deficit. The decomposition must
        // reconstruct the linear law exactly, capped or not.
        let rate = Bandwidth::from_mbps(36); // autosize = 3 segs
        let mut period_idles = Vec::new();
        for stride in [1u64, 2, 5, 10, 20, 50] {
            let mut p = Pacer::new(PacingConfig::with_stride(stride), MSS);
            let t0 = SimTime::from_millis(5);
            p.charge_cap_deficit(t0, rate);
            let burst = p.burst_segs(rate);
            p.on_send(t0, burst * MSS, rate);
            period_idles.push((stride, p.next_release() - t0));
        }
        let chunk = 3 * MSS;
        for &(stride, idle) in &period_idles {
            let want = rate.time_to_send(chunk).saturating_mul(stride);
            let diff = idle.as_nanos().abs_diff(want.as_nanos());
            assert!(
                diff <= stride + 1,
                "stride {stride}: period idle {idle} vs {want} (integer-ceil rounding only)"
            );
        }
    }

    #[test]
    fn burst_grows_with_stride_until_cap() {
        // Table 2's skb-length column: ∝ stride, then plateaus at the
        // socket-buffer cap.
        let rate = Bandwidth::from_mbps(36); // chunk = 3 segs
        let bursts: Vec<u64> = [1u64, 2, 5, 10, 20, 50]
            .iter()
            .map(|&s| Pacer::new(PacingConfig::with_stride(s), MSS).burst_segs(rate))
            .collect();
        assert_eq!(
            bursts,
            vec![3, 6, 10, 10, 10, 10],
            "growth then plateau at cap"
        );
    }

    #[test]
    fn gate_blocks_until_release() {
        let mut p = Pacer::new(PacingConfig::default(), MSS);
        assert!(p.can_send(SimTime::ZERO), "fresh pacer is open");
        let start = SimTime::from_millis(10);
        let rate = Bandwidth::from_mbps(80);
        let idle = p.on_send(start, 10_000, rate);
        assert!(!p.can_send(start));
        assert!(!p.can_send(start + idle - SimDuration::from_nanos(1)));
        assert!(p.can_send(start + idle));
        assert_eq!(p.next_release(), start + idle);
    }

    #[test]
    fn edt_schedule_advances_from_schedule_not_completion() {
        // Linux `tcp_wstamp_ns = max(wstamp, now) + len/rate`: if the next
        // send happens exactly at the release instant, the following
        // release is one idle later — no drift from processing delays.
        let mut p = Pacer::new(PacingConfig::default(), MSS);
        let rate = Bandwidth::from_mbps(80);
        let idle = p.on_send(SimTime::ZERO, 10_000, rate);
        let first_release = p.next_release();
        // Second send happens *at* the release time (timer fired on time).
        p.on_send(first_release, 10_000, rate);
        assert_eq!(p.next_release(), first_release + idle);
        // A late send (CPU was busy) pushes from the late time instead.
        let late = p.next_release() + SimDuration::from_millis(3);
        p.on_send(late, 10_000, rate);
        assert_eq!(p.next_release(), late + idle);
    }

    #[test]
    fn autosize_tracks_rate() {
        let p = Pacer::new(PacingConfig::default(), MSS);
        // 36 Mbps → 4.5 KB/ms → 3 segments.
        assert_eq!(p.autosize_segs(Bandwidth::from_mbps(36)), 3);
        // 1 Mbps → 125 B/ms → floor of 2 segments.
        assert_eq!(p.autosize_segs(Bandwidth::from_mbps(1)), MIN_TSO_SEGS);
        // 1 Gbps → 125 KB/ms → cap (15,000/1448 = 10 segments).
        assert_eq!(p.autosize_segs(Bandwidth::from_gbps(1)), 10);
        assert_eq!(p.cap_segs(), 10);
        // Zero rate (no estimate yet): the floor.
        assert_eq!(p.autosize_segs(Bandwidth::ZERO), MIN_TSO_SEGS);
    }

    #[test]
    fn small_rates_mean_tiny_buffers_mean_many_timers() {
        // The Fig. 2 mechanism in one assertion: splitting a rate across
        // 20 connections multiplies the per-byte timer count.
        let p = Pacer::new(PacingConfig::default(), MSS);
        let total = Bandwidth::from_mbps(320);
        let one_flow_segs = p.autosize_segs(total);
        let per_flow_segs = p.autosize_segs(total.div(20));
        // Timer fires per byte ∝ 1/buffer-size.
        let fires_1 = 1.0 / one_flow_segs as f64;
        let fires_20 = 20.0 / (20.0 * per_flow_segs as f64);
        assert!(
            fires_20 > 3.0 * fires_1,
            "per-byte timer cost should balloon: {fires_20:.4} vs {fires_1:.4}"
        );
    }

    #[test]
    fn fallback_rate_is_cwnd_over_srtt() {
        // §5.2.2: "Cubic uses TCP's internal pacing rate of mss·cwnd/rtt".
        let p = Pacer::new(PacingConfig::default(), MSS);
        let rate = p.fallback_rate(70, SimDuration::from_millis(10));
        let expect =
            Bandwidth::from_bytes_over(70 * MSS, SimDuration::from_millis(10)).mul_f64(1.2);
        assert_eq!(rate, expect);
        assert_eq!(p.fallback_rate(70, SimDuration::ZERO), Bandwidth::ZERO);
    }

    #[test]
    fn idle_statistics_accumulate() {
        let mut p = Pacer::new(PacingConfig::with_stride(5), MSS);
        let rate = Bandwidth::from_mbps(40);
        p.on_send(SimTime::ZERO, 5_000, rate);
        let first = p.last_idle();
        p.on_send(p.next_release(), 5_000, rate);
        assert_eq!(p.paced_sends(), 2);
        assert_eq!(p.mean_idle(), first);
        assert_eq!(p.last_idle(), first);
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_send_panics() {
        Pacer::new(PacingConfig::default(), MSS).on_send(SimTime::ZERO, 1_000, Bandwidth::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_stride_rejected() {
        PacingConfig::with_stride(0);
    }

    proptest! {
        /// Average paced rate over a long run equals rate/stride once the
        /// buffer cap binds, and equals the configured rate otherwise —
        /// i.e. pacing never releases early.
        #[test]
        fn prop_long_run_rate_bounded(
            stride in 1u64..50,
            rate_mbps in 5u64..200,
            sends in 10u64..100,
        ) {
            let mut p = Pacer::new(PacingConfig::with_stride(stride), MSS);
            let rate = Bandwidth::from_mbps(rate_mbps);
            let burst = p.burst_segs(rate) * MSS;
            let mut now = SimTime::ZERO;
            let mut sent = 0u64;
            for _ in 0..sends {
                p.on_send(now, burst, rate);
                sent += burst;
                now = p.next_release();
            }
            let achieved = Bandwidth::from_bytes_over(sent, now - SimTime::ZERO);
            // Pacing is an upper gate: never exceed the configured rate
            // (the cap can only slow the burst down, never speed it up).
            let ceiling = rate.as_bps() + rate.as_bps() / 50;
            prop_assert!(achieved.as_bps() <= ceiling,
                "achieved {achieved} exceeds rate {rate}");
        }

        /// The release gate is monotone: successive sends only push it
        /// forward, even when invoked at stale (earlier) times.
        #[test]
        fn prop_release_monotone(jitters in proptest::collection::vec(0u64..2_000_000, 1..50)) {
            let mut p = Pacer::new(PacingConfig::default(), MSS);
            let rate = Bandwidth::from_mbps(50);
            let mut last_release = SimTime::ZERO;
            for j in jitters {
                let now = SimTime::from_nanos(j);
                p.on_send(now, 5_000, rate);
                prop_assert!(p.next_release() >= last_release);
                last_release = p.next_release();
            }
        }
    }
}
