//! RTT estimation and retransmission-timeout computation (RFC 6298, with
//! Linux's constants).
//!
//! `SRTT ← 7/8·SRTT + 1/8·R`, `RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT − R|`,
//! `RTO = SRTT + 4·RTTVAR`, clamped to Linux's `[200 ms, 120 s]`.
//! Karn's rule (never sample retransmitted segments) is enforced by the
//! caller: the scoreboard only offers samples from un-retransmitted
//! segments.

use serde::Serialize;
use sim_core::time::SimDuration;

/// Linux `TCP_RTO_MIN`.
pub const RTO_MIN: SimDuration = SimDuration::from_millis(200);
/// Linux `TCP_RTO_MAX`.
pub const RTO_MAX: SimDuration = SimDuration::from_secs(120);
/// RTO before any RTT sample (Linux `TCP_TIMEOUT_INIT`): 1 s.
pub const RTO_INIT: SimDuration = SimDuration::from_secs(1);

/// RFC 6298 smoothed-RTT estimator.
#[derive(Debug, Clone, Serialize)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    latest: Option<SimDuration>,
    min_rtt: SimDuration,
}

impl RttEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            latest: None,
            min_rtt: SimDuration::MAX,
        }
    }

    /// Record one RTT sample.
    pub fn sample(&mut self, r: SimDuration) {
        if r.is_zero() {
            return; // degenerate measurement, ignore
        }
        self.latest = Some(r);
        self.min_rtt = self.min_rtt.min(r);
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2;
            }
            Some(srtt) => {
                let delta = if srtt > r { srtt - r } else { r - srtt };
                self.rttvar = (self.rttvar * 3 + delta) / 4;
                self.srtt = Some((srtt * 7 + r) / 8);
            }
        }
    }

    /// Smoothed RTT (`None` before the first sample).
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Most recent raw sample.
    pub fn latest(&self) -> Option<SimDuration> {
        self.latest
    }

    /// Connection-lifetime minimum RTT (`None` before the first sample).
    pub fn min_rtt(&self) -> Option<SimDuration> {
        (self.min_rtt != SimDuration::MAX).then_some(self.min_rtt)
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => RTO_INIT,
            Some(srtt) => {
                let raw = srtt + self.rttvar * 4;
                raw.max(RTO_MIN).min(RTO_MAX)
            }
        }
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_sample_seeds_estimator() {
        let mut e = RttEstimator::new();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.rto(), RTO_INIT);
        e.sample(SimDuration::from_millis(10));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(10)));
        // RTO = 10 + 4·5 = 30 ms → clamped to 200 ms.
        assert_eq!(e.rto(), RTO_MIN);
    }

    #[test]
    fn srtt_converges_to_stable_rtt() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(20));
        }
        let srtt = e.srtt().unwrap();
        assert_eq!(srtt.as_millis(), 20);
        assert!(e.rttvar.as_millis() < 1);
    }

    #[test]
    fn variance_grows_with_jitter() {
        // Base RTT large enough that RTO_MIN's clamp doesn't mask the
        // variance term.
        let mut steady = RttEstimator::new();
        let mut jittery = RttEstimator::new();
        for i in 0..100 {
            steady.sample(SimDuration::from_millis(300));
            jittery.sample(SimDuration::from_millis(if i % 2 == 0 { 200 } else { 400 }));
        }
        assert!(jittery.rto() > steady.rto());
    }

    #[test]
    fn rto_clamped_to_bounds() {
        let mut e = RttEstimator::new();
        e.sample(SimDuration::from_micros(100)); // LAN-fast
        assert_eq!(e.rto(), RTO_MIN);
        let mut slow = RttEstimator::new();
        slow.sample(SimDuration::from_secs(300)); // absurd
        assert_eq!(slow.rto(), RTO_MAX);
    }

    #[test]
    fn min_rtt_is_monotone_non_increasing() {
        let mut e = RttEstimator::new();
        e.sample(SimDuration::from_millis(30));
        e.sample(SimDuration::from_millis(10));
        e.sample(SimDuration::from_millis(50));
        assert_eq!(e.min_rtt(), Some(SimDuration::from_millis(10)));
        assert_eq!(e.latest(), Some(SimDuration::from_millis(50)));
    }

    #[test]
    fn zero_samples_ignored() {
        let mut e = RttEstimator::new();
        e.sample(SimDuration::ZERO);
        assert_eq!(e.srtt(), None);
        assert_eq!(e.min_rtt(), None);
    }

    proptest! {
        /// SRTT stays within the observed sample envelope.
        #[test]
        fn prop_srtt_within_envelope(samples in proptest::collection::vec(1u64..1_000_000u64, 1..100)) {
            let mut e = RttEstimator::new();
            for &us in &samples {
                e.sample(SimDuration::from_micros(us));
            }
            let lo = *samples.iter().min().unwrap();
            let hi = *samples.iter().max().unwrap();
            let srtt = e.srtt().unwrap().as_micros();
            prop_assert!(srtt >= lo.saturating_sub(1) && srtt <= hi + 1, "srtt {srtt} outside [{lo},{hi}]");
        }

        /// RTO is always within its clamp bounds and ≥ SRTT (when clamped up).
        #[test]
        fn prop_rto_bounds(samples in proptest::collection::vec(1u64..10_000_000u64, 1..50)) {
            let mut e = RttEstimator::new();
            for &us in &samples {
                e.sample(SimDuration::from_micros(us));
            }
            let rto = e.rto();
            prop_assert!(rto >= RTO_MIN && rto <= RTO_MAX);
        }
    }
}
