//! Struct-of-arrays flow-state arena: every per-connection field the hot
//! path touches, stored in dense parallel arrays indexed by [`FlowId`].
//!
//! # Layout
//!
//! ```text
//!                    FlowArena (owned by StackSim)
//!   FlowId(i) ──┬─> board:    Vec<Scoreboard>   seq/SACK/loss state
//!               ├─> rtt:      Vec<RttEstimator> RFC 6298 estimator (POD)
//!               ├─> rate:     Vec<RateSampler>  delivery-rate windows (POD)
//!               ├─> pacer:    Vec<Pacer>        EDT clock + stride state
//!               ├─> receiver: Vec<Receiver>     server-side reassembly
//!               ├─> cc:       Vec<Master>       boxed CC (cold: virtual calls)
//!               ├─> cc_cache: Vec<CcCache>      cwnd/rate/cost snapshot (hot)
//!               ├─> hot:      Vec<FlowHot>      control flags + device path
//!               └─> cold:     Vec<FlowCold>     measurement-only statistics
//!                        │
//!   SegStore (shared)  <─┘ every board's segment window is carved from
//!                          one chunked slab (chunk handles, not pointers)
//! ```
//!
//! # `FlowId` invariants
//!
//! * Flow ids are dense: `FlowId(i)` for `i < len()` indexes every array,
//!   and all arrays have identical length for the lifetime of the arena.
//! * Ids are assigned at construction and never move — an id observed in
//!   an event is valid for the whole run (there is no flow removal).
//! * Each id's state is independent: arena ops on `FlowId(a)` never read
//!   or write arrays at `b != a` (the shared [`SegStore`] recycles chunk
//!   storage across flows, but a chunk belongs to exactly one flow's
//!   window at a time).
//!
//! # Why determinism is layout-independent
//!
//! The arena changes *where* per-flow state lives, not *what* the state
//! is or *when* it is updated: every handler reads and writes exactly the
//! fields the boxed `Conn` struct held, in the same program order, and no
//! simulation quantity (time, RNG draw, cycle charge) depends on memory
//! addresses. Byte-identical `repro --exp all` output across the refactor
//! — and the arena-vs-boxed differential test — are the enforcement
//! mechanisms, not an aspiration.

use crate::mutants::{self, Mutant};
use crate::pacing::{Pacer, PacingConfig};
use crate::rate::RateSampler;
use crate::receiver::{AckInfo, Receiver};
use crate::rtt::RttEstimator;
use crate::sender::{AckOutcome, Scoreboard, SegStore, SendPlan};
use congestion::master::Master;
use congestion::CongestionControl;
use sim_core::event::TimerToken;
use sim_core::metrics::{Histogram, Summary};
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;

/// Dense index of one flow in a [`FlowArena`]. Ids are assigned at
/// construction (`0..len`), never move, and index every parallel array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The array index this id denotes.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Hot per-flow control state: the scalars every send/ack/timer handler
/// reads or writes. Grouped in one small record so a handler touches one
/// cache line here instead of a dozen scattered ones.
#[derive(Debug, Clone)]
pub(crate) struct FlowHot {
    /// Segments still permitted in the current pacing period (a strided
    /// period releases several autosized chunks, sent as chained events so
    /// concurrent flows contend for the CPU between chunks).
    pub burst_remaining: u64,
    /// Bytes currently in the CPU/device path (memory accounting).
    pub device_bytes: u64,
    pub rto_epoch: u64,
    /// Packets that survived netem + the bottleneck queue and were handed
    /// to the receiver's arrival event. The rx-conservation oracle checks
    /// `receiver.total_received() + receiver.duplicates() <=` this (strict
    /// equality can't hold: arrivals scheduled past the end of the run are
    /// never delivered).
    pub accepted_pkts: u64,
    /// Peak memory footprint proxy: scoreboard + device backlog bytes
    /// (§7.1.1's RAM question).
    pub mem_peak_bytes: u64,
    pub ack_timer: Option<TimerToken>,
    /// The pending `RtoFire`'s token. Re-arming cancels the previous fire
    /// eagerly (O(1) unlink) instead of letting a stale cell ride the wheel
    /// until its epoch check discards it: with per-ACK re-arming and an RTO
    /// close to the run length, lazy invalidation kept thousands of dead
    /// cells in the wheel at high connection counts, and every one of them
    /// cost cascade and pop work. Stale fires never charged CPU, so eager
    /// cancellation leaves simulation output bit-identical.
    pub rto_timer: Option<TimerToken>,
    /// Socket buffers currently in the CPU/device path. TCP Small Queues
    /// (TSQ) caps this at 2: without it, a lossless CPU-limited run lets
    /// cwnd stuff unbounded data into the device backlog and measured RTT
    /// grows without bound.
    pub device_chunks: u32,
    pub rto_backoff: u32,
    pub started: bool,
    pub send_scheduled: bool,
    pub pacing_timer_armed: bool,
    pub rto_armed: bool,
    pub measuring: bool,
}

impl FlowHot {
    fn new() -> Self {
        FlowHot {
            burst_remaining: 0,
            device_bytes: 0,
            rto_epoch: 0,
            accepted_pkts: 0,
            mem_peak_bytes: 0,
            ack_timer: None,
            rto_timer: None,
            device_chunks: 0,
            rto_backoff: 0,
            started: false,
            send_scheduled: false,
            pacing_timer_armed: false,
            rto_armed: false,
            measuring: false,
        }
    }
}

/// Cached congestion-controller outputs. The CC's getters are pure reads
/// of its internal model, but they sit behind a `Box<dyn>` virtual call —
/// so the arena snapshots them after every CC mutation (`on_ack`,
/// `on_loss_event`, `on_recovery_exit`, `on_rto`) and the hot path reads
/// the snapshot. Staleness is impossible by construction: every mutation
/// site is followed by [`FlowArena::refresh_cc`], and the byte-identity
/// gate would catch a missed one.
#[derive(Debug, Clone)]
pub(crate) struct CcCache {
    pub cwnd: u64,
    pub pacing_rate: Option<Bandwidth>,
    pub model_cost: u64,
    pub wants_pacing: bool,
}

/// Snapshot one controller's outputs into the hot cache. Mutant M8
/// ([`Mutant::Bbr3PacingDisarm`]) models a "new CC variant missed a
/// dispatch site" bug here: the cache reports `wants_pacing == false`
/// for BBRv3 flows even though the controller asks for pacing.
fn snapshot_cc(m: &Master) -> CcCache {
    let disarmed = mutants::is(Mutant::Bbr3PacingDisarm) && m.name() == "bbr3";
    CcCache {
        cwnd: m.cwnd(),
        pacing_rate: m.pacing_rate(),
        model_cost: m.model_cost_cycles(),
        wants_pacing: m.wants_pacing() && !disarmed,
    }
}

/// Cold per-flow state: measurement-window statistics and trace caches
/// that no steady-state decision reads. Kept in a side table so they
/// never share a cache line with [`FlowHot`].
#[derive(Debug, Clone)]
pub(crate) struct FlowCold {
    pub delivered_at_measure: u64,
    pub rtt_summary: Summary,
    /// RTT samples bucketed for percentile queries (Fig. 7's p95). A
    /// log-bucketed histogram, not a reservoir: fixed bucket boundaries
    /// make the p95 independent of sample order and exact under merge,
    /// which the scorecard's determinism contract requires.
    pub rtt_hist: Histogram,
    pub skb_bytes_sum: u64,
    pub skb_count: u64,
    /// Bytes sent in the current pacing period; finalized into
    /// `period_bytes_sum` when the next period opens (Table 2's per-period
    /// "Skbuff Len" statistic).
    pub cur_period_bytes: u64,
    pub period_bytes_sum: u64,
    pub period_count: u64,
    // sim-trace change detection: only transitions are recorded, so the
    // last-seen CC outputs are cached here (checked only when tracing).
    pub last_cwnd: u64,
    pub last_rate_bps: u64,
    pub last_phase: &'static str,
}

impl FlowCold {
    fn new() -> Self {
        FlowCold {
            delivered_at_measure: 0,
            rtt_summary: Summary::new(),
            rtt_hist: Histogram::new(),
            skb_bytes_sum: 0,
            skb_count: 0,
            cur_period_bytes: 0,
            period_bytes_sum: 0,
            period_count: 0,
            last_cwnd: 0,
            last_rate_bps: 0,
            last_phase: "",
        }
    }
}

/// Struct-of-arrays storage for every flow's TCP state, owned by the
/// simulator. See the module docs for the layout diagram and invariants.
///
/// The TCP operations ([`FlowArena::plan_send_into`],
/// [`FlowArena::on_sent`], [`FlowArena::on_ack`], [`FlowArena::on_rto`])
/// are the same [`Scoreboard`] code the boxed
/// [`Sender`](crate::sender::Sender) wrapper runs — the arena only routes
/// the borrows into its arrays — which is what the arena-vs-boxed
/// differential test leans on.
pub struct FlowArena {
    /// Shared segment slab every scoreboard window is carved from.
    pub(crate) store: SegStore,
    pub(crate) board: Vec<Scoreboard>,
    pub(crate) rtt: Vec<RttEstimator>,
    pub(crate) rate: Vec<RateSampler>,
    pub(crate) pacer: Vec<Pacer>,
    pub(crate) receiver: Vec<Receiver>,
    pub(crate) cc: Vec<Master>,
    pub(crate) cc_cache: Vec<CcCache>,
    pub(crate) hot: Vec<FlowHot>,
    pub(crate) cold: Vec<FlowCold>,
}

impl FlowArena {
    /// Build an arena of `count` flows for `mss`-byte packets, with one
    /// congestion controller per flow from `make_cc`.
    pub fn new(
        count: usize,
        mss: u64,
        pacing: PacingConfig,
        mut make_cc: impl FnMut(usize) -> Master,
    ) -> Self {
        let cc: Vec<Master> = (0..count).map(&mut make_cc).collect();
        let cc_cache = cc.iter().map(snapshot_cc).collect();
        FlowArena {
            store: SegStore::new(),
            board: (0..count).map(|_| Scoreboard::new(mss)).collect(),
            rtt: (0..count).map(|_| RttEstimator::new()).collect(),
            rate: (0..count).map(|_| RateSampler::new(mss)).collect(),
            pacer: (0..count).map(|_| Pacer::new(pacing, mss)).collect(),
            receiver: (0..count).map(|_| Receiver::new()).collect(),
            cc,
            cc_cache,
            hot: (0..count).map(|_| FlowHot::new()).collect(),
            cold: (0..count).map(|_| FlowCold::new()).collect(),
        }
    }

    /// Number of flows (every parallel array's length).
    pub fn len(&self) -> usize {
        self.board.len()
    }

    /// Whether the arena holds no flows.
    pub fn is_empty(&self) -> bool {
        self.board.is_empty()
    }

    /// Re-snapshot the CC output cache for flow `i`. Must be called after
    /// every CC mutation; see [`CcCache`].
    #[inline]
    pub(crate) fn refresh_cc(&mut self, i: usize) {
        self.cc_cache[i] = snapshot_cc(&self.cc[i]);
    }

    /// Plan the next transmission for one flow; see
    /// [`Scoreboard::plan_send_into`].
    pub fn plan_send_into(&self, f: FlowId, cwnd: u64, max_pkts: u64, plan: &mut SendPlan) -> bool {
        self.board[f.index()].plan_send_into(cwnd, max_pkts, plan)
    }

    /// Record a transmitted plan for one flow; see [`Scoreboard::on_sent`].
    pub fn on_sent(&mut self, f: FlowId, plan: &SendPlan, now: SimTime, pacing_limited: bool) {
        let i = f.index();
        self.board[i].on_sent(
            &mut self.store,
            &mut self.rate[i],
            plan,
            now,
            pacing_limited,
        )
    }

    /// Process an acknowledgement for one flow; see [`Scoreboard::on_ack`].
    pub fn on_ack(&mut self, f: FlowId, ack: &AckInfo, now: SimTime) -> AckOutcome {
        let i = f.index();
        self.board[i].on_ack(
            &mut self.store,
            &mut self.rtt[i],
            &mut self.rate[i],
            ack,
            now,
        )
    }

    /// RTO expiry for one flow; see [`Scoreboard::on_rto`].
    pub fn on_rto(&mut self, f: FlowId) -> u64 {
        let i = f.index();
        self.board[i].on_rto(&mut self.store)
    }

    /// The flow's scoreboard (sequence/SACK/loss state).
    pub fn scoreboard(&self, f: FlowId) -> &Scoreboard {
        &self.board[f.index()]
    }

    /// The flow's RTT estimator.
    pub fn rtt(&self, f: FlowId) -> &RttEstimator {
        &self.rtt[f.index()]
    }

    /// The flow's delivery-rate sampler.
    pub fn rate(&self, f: FlowId) -> &RateSampler {
        &self.rate[f.index()]
    }

    /// Cumulative delivered packets for one flow (goodput numerator).
    pub fn delivered_pkts(&self, f: FlowId) -> u64 {
        self.rate[f.index()].delivered()
    }

    /// The flow's smoothed RTT, if any samples have arrived.
    pub fn srtt(&self, f: FlowId) -> Option<SimDuration> {
        self.rtt[f.index()].srtt()
    }

    /// Scoreboard-slab pool counters `(takes, reuses, misses)`.
    pub fn store_stats(&self) -> (u64, u64, u64) {
        (self.store.takes(), self.store.reuses(), self.store.misses())
    }
}
