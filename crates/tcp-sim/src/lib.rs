//! # tcp-sim
//!
//! A userspace, segment-granularity TCP stack plus the discrete-event
//! simulation that runs it on a modelled mobile phone — the core substrate
//! of the *"Are Mobiles Ready for BBR?"* (IMC 2022) reproduction.
//!
//! The stack mirrors the structure of the Linux sender the paper measures:
//!
//! * [`seq`] — sequence-number types (monotonic bookkeeping + 32-bit wire
//!   arithmetic);
//! * [`rtt`] — RFC 6298 SRTT/RTO estimation with Linux clamps;
//! * [`rate`] — delivery-rate sampling after `tcp_rate.c` (BBR's input);
//! * [`pacing`] — TCP-internal pacing: Eq. (1) `idle = len/rate`, the
//!   paper's Eq. (2) stride, and `tcp_tso_autosize` buffer sizing;
//! * [`sender`] — the scoreboard: SACK processing, RACK + dup-threshold
//!   loss detection, retransmission planning, Karn-compliant RTT samples;
//! * [`receiver`] — the server side: reorder tracking, cumulative + SACK
//!   acknowledgement generation, GRO-style coalescing urgency;
//! * [`wire`] — Ethernet/IPv4/TCP wire codecs (checksums, SACK options)
//!   backing the pcap export;
//! * [`pool`] — free-list buffer pools, slot stores and the shared
//!   segment slab keeping the per-segment hot path allocation-free;
//! * [`arena`] — the struct-of-arrays flow-state arena: all per-connection
//!   state in dense parallel arrays indexed by [`arena::FlowId`];
//! * [`fleet`] — fleet mode: heterogeneous multi-device populations whose
//!   uplinks compete through one shared bottleneck, plus the fleet-level
//!   metrics (per-tier distributions, per-CC fairness, pacing-penalty
//!   fraction) the population question needs;
//! * [`mutants`] — intentional single-line behaviour mutations (feature
//!   `simcheck-mutants`) that the simcheck fuzzer's oracles must catch;
//! * [`sim`] — the event loop that binds the stack to the
//!   [`cpu_model::Cpu`] (every operation costs cycles and serialises) and
//!   to [`netsim`]'s bottleneck path, and reports goodput/RTT/retransmit
//!   statistics per run.
//!
//! Granularity: one simulated packet = one MSS (1448 bytes of payload).
//! Socket buffers (skbs) are runs of whole packets, so Table 2's buffer
//! lengths are quantised to MSS multiples — documented in DESIGN.md.

#![warn(missing_docs)]

pub mod arena;
pub mod config;
pub mod fleet;
pub mod mutants;
pub mod pacing;
pub mod pool;
pub mod rate;
pub mod receiver;
pub mod rtt;
pub mod sender;
pub mod seq;
pub mod sim;
pub mod wire;

pub use arena::{FlowArena, FlowId};
pub use config::SimConfigBuilder;
pub use fleet::{DeviceSpec, FleetConfig, FleetResult};
pub use pacing::{Pacer, PacingConfig};
pub use sim::{ConnStats, SimConfig, SimResult, StackSim};
