//! Fleet mode: N heterogeneous devices competing through one shared
//! bottleneck — the structural step from "one phone against its own path"
//! to "an edge PoP's worth of uploaders".
//!
//! The paper measures a single phone, but its real question — what
//! fraction of a user population lands in the pacing-penalty regime — is a
//! fleet-level one (the Dropbox BBRv2 evaluation makes CC rollout calls at
//! PoP scale). A [`FleetConfig`] describes that population: each
//! [`DeviceSpec`] picks a Table 1 CPU tier, a congestion control, an
//! access medium, and a connection count, and every device's uplink
//! traffic then funnels through one shared [`LinkConfig`] bottleneck with
//! a selectable queue discipline ([`netsim::Qdisc`]).
//!
//! **Arbitration model.** Each device keeps its own private access path
//! (its medium's forward/reverse links and netem stages, its own CPU). A
//! data packet that clears the device's access link is offered to the
//! shared link stamped with its access-link arrival time; the shared
//! queue serialises admissions in simulation event order (deterministic —
//! same-timestamp ties follow the timer wheel's stable run order), so a
//! fleet run is reproducible bit-for-bit at any worker count. ACKs return
//! over each device's private reverse path: the download direction of a
//! PoP uplink is never the bottleneck.
//!
//! **Degenerate fleets.** `shared: None` runs the same multi-device
//! plumbing with no shared hop at all. A 1-device fleet in this mode is
//! the differential anchor: it must reduce *byte-identically* to the
//! plain single-device simulation (`tests/fleet_differential.rs`). A
//! shared hop can never be byte-neutral — serialisation takes ≥ 1 ns per
//! packet by construction — which is why the degenerate mode exists.

use crate::mutants::{self, Mutant};
use congestion::group::GroupShares;
use congestion::CcKind;
use cpu_model::CpuConfig;
use netsim::media::MediaProfile;
use netsim::{LinkConfig, Qdisc};
use serde::Serialize;
use sim_core::time::SimDuration;
use sim_core::units::Bandwidth;

/// One device in the fleet: a CPU tier, an algorithm, an access medium,
/// and how many parallel upload connections it runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceSpec {
    /// Table 1 CPU configuration for this device's modelled core.
    pub cpu: CpuConfig,
    /// Congestion control on all of this device's connections.
    pub cc: CcKind,
    /// Access medium: the device's private path to the shared bottleneck.
    pub media: MediaProfile,
    /// Parallel upload connections (≥ 1).
    pub connections: usize,
    /// Extra one-way propagation added to this device's forward access
    /// link — the RTT-unfairness axis of the FAIRNESS experiment.
    /// Serialized only when non-zero so pre-existing fleet cache keys keep
    /// their exact bytes.
    #[serde(skip_serializing_if = "duration_is_zero")]
    pub extra_rtt: SimDuration,
}

/// Serde skip predicate (`is_zero` takes `self` by value).
fn duration_is_zero(d: &SimDuration) -> bool {
    d.is_zero()
}

impl DeviceSpec {
    /// A single-connection device.
    pub fn new(cpu: CpuConfig, cc: CcKind, media: MediaProfile) -> Self {
        DeviceSpec {
            cpu,
            cc,
            media,
            connections: 1,
            extra_rtt: SimDuration::ZERO,
        }
    }

    /// Set the connection count.
    pub fn with_connections(mut self, connections: usize) -> Self {
        self.connections = connections;
        self
    }

    /// Add one-way propagation to this device's forward access link (the
    /// RTT-unfairness knob).
    pub fn with_extra_rtt(mut self, extra: SimDuration) -> Self {
        self.extra_rtt = extra;
        self
    }
}

/// The canonical heterogeneous population [`FleetConfig::mixed`] cycles
/// through: CPU tiers weighted toward the low/mid market (where the
/// paper's pacing penalty lives), the paper's CC matrix, and a WiFi-heavy
/// media mix. Kept small and public so experiments, benches and the
/// fuzzer all agree on what "a mixed fleet" means.
pub const TIER_MIX: [(CpuConfig, CcKind, MediaProfile); 6] = [
    (CpuConfig::LowEnd, CcKind::Bbr, MediaProfile::Wifi),
    (CpuConfig::MidEnd, CcKind::Cubic, MediaProfile::Wifi),
    (CpuConfig::LowEnd, CcKind::Cubic, MediaProfile::Ethernet),
    (CpuConfig::HighEnd, CcKind::Bbr, MediaProfile::Ethernet),
    (CpuConfig::MidEnd, CcKind::Bbr2, MediaProfile::Wifi),
    (CpuConfig::LowEnd, CcKind::Bbr, MediaProfile::Lte),
];

/// A fleet: the device population plus the shared bottleneck they share.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetConfig {
    /// The device population, in a fixed order (device index is the
    /// determinism anchor: RNG streams and result rows follow it).
    pub devices: Vec<DeviceSpec>,
    /// The common bottleneck all device uplinks feed. `None` runs the
    /// fleet plumbing with no shared hop (the differential-test mode).
    pub shared: Option<LinkConfig>,
}

impl FleetConfig {
    /// A fleet of `n` identical devices, no shared link.
    pub fn uniform(n: usize, spec: DeviceSpec) -> Self {
        FleetConfig {
            devices: vec![spec; n],
            shared: None,
        }
    }

    /// The canonical mixed fleet: `n` devices assigned round-robin from
    /// [`TIER_MIX`], no shared link yet (add one with
    /// [`FleetConfig::with_shared`]).
    pub fn mixed(n: usize) -> Self {
        let devices = (0..n)
            .map(|i| {
                let (cpu, cc, media) = TIER_MIX[i % TIER_MIX.len()];
                DeviceSpec::new(cpu, cc, media)
            })
            .collect();
        FleetConfig {
            devices,
            shared: None,
        }
    }

    /// Attach a shared bottleneck.
    pub fn with_shared(mut self, shared: LinkConfig) -> Self {
        self.shared = Some(shared);
        self
    }

    /// The standard PoP-uplink shared bottleneck: `rate` with a 500 µs
    /// propagation hop and a deep 2048-packet buffer, under the given
    /// queue discipline.
    pub fn pop_uplink(rate: Bandwidth, qdisc: Qdisc) -> LinkConfig {
        LinkConfig::new(rate, SimDuration::from_micros(500), 2048).with_qdisc(qdisc)
    }

    /// Total connections across the population (what
    /// [`crate::SimConfig::connections`] must equal in fleet mode).
    pub fn total_connections(&self) -> usize {
        self.devices.iter().map(|d| d.connections).sum()
    }
}

/// Fleet-level metrics, reported in [`crate::SimResult::fleet`] when the
/// run carried a [`FleetConfig`].
///
/// CPU statistics in a fleet run aggregate across device CPUs: cycle and
/// operation counts sum, while `busy_time` reports the *busiest* device
/// (so "busy ≤ wall clock" stays a per-core invariant the oracles can
/// check).
#[derive(Debug, Clone, Serialize)]
pub struct FleetResult {
    /// Device count.
    pub devices: u64,
    /// Sum of per-device goodput over the measurement window, Mbps.
    pub aggregate_goodput_mbps: f64,
    /// Jain's fairness index over per-device goodput (all devices).
    pub jain_devices: f64,
    /// Per-CC-group breakdown, in [`congestion::group::GROUP_ORDER`].
    pub cc_groups: Vec<CcGroupStat>,
    /// Per-CPU-tier goodput distribution, in [`CpuConfig::ALL`] order.
    pub tiers: Vec<TierStat>,
    /// Modelled fraction of devices in the pacing-penalty regime: the
    /// device paces (BBR/BBR2 with pacing not forced off) *and* its CPU
    /// ran ≥ 90 % busy — the population-level answer to the paper's
    /// question.
    pub pacing_penalty_fraction: f64,
    /// Device 0's fraction of the fleet's aggregate goodput (0 when the
    /// fleet delivered nothing). In the two-device FAIRNESS duels device 0
    /// is the BBR-variant contender, so this is the per-flow share the
    /// scorecard checks directly.
    pub dev0_share: f64,
    /// Packets admitted by the shared bottleneck (0 with `shared: None`).
    pub shared_pkts: u64,
    /// Packets dropped at the shared bottleneck's queue.
    pub shared_drops: u64,
    /// Payload bytes delivered end-to-end across the fleet, whole run —
    /// the conservation oracle's left-hand side.
    pub delivered_bytes: u64,
}

/// One congestion-control cohort's share of the bottleneck.
#[derive(Debug, Clone, Serialize)]
pub struct CcGroupStat {
    /// Algorithm display name (`congestion::CcKind`).
    pub cc: String,
    /// Devices running it.
    pub devices: u64,
    /// Cohort goodput sum, Mbps.
    pub goodput_mbps: f64,
    /// Jain's index *within* the cohort (per-device goodputs).
    pub jain: f64,
}

/// One CPU tier's goodput distribution across its devices.
#[derive(Debug, Clone, Serialize)]
pub struct TierStat {
    /// Tier display name (`cpu_model::CpuConfig`).
    pub tier: String,
    /// Devices in the tier.
    pub devices: u64,
    /// 10th-percentile per-device goodput, Mbps.
    pub goodput_p10_mbps: f64,
    /// Median per-device goodput, Mbps.
    pub goodput_p50_mbps: f64,
    /// 90th-percentile per-device goodput, Mbps.
    pub goodput_p90_mbps: f64,
}

/// Everything `StackSim::finish` needs per device to assemble a
/// [`FleetResult`]: built inside the engine, consumed by
/// [`FleetResult::compute`].
#[derive(Debug, Clone)]
pub struct DeviceOutcome {
    /// Goodput over the measurement window, Mbps.
    pub goodput_mbps: f64,
    /// The device still wanted pacing at the end of the run (reflects
    /// master-module overrides, not just the algorithm default).
    pub wants_pacing: bool,
    /// Fraction of the run the device's CPU was busy.
    pub busy_fraction: f64,
}

/// CPU-saturation threshold for the pacing-penalty regime.
const PENALTY_BUSY_FRACTION: f64 = 0.9;

impl FleetResult {
    /// Assemble fleet metrics from per-device outcomes (index-aligned with
    /// `fleet.devices`) and the shared link's admission tallies.
    pub fn compute(
        fleet: &FleetConfig,
        outcomes: &[DeviceOutcome],
        shared_pkts: u64,
        shared_drops: u64,
        delivered_bytes: u64,
    ) -> FleetResult {
        assert_eq!(
            fleet.devices.len(),
            outcomes.len(),
            "one outcome per device"
        );
        let device_rates: Vec<f64> = outcomes.iter().map(|o| o.goodput_mbps).collect();
        let aggregate_goodput_mbps: f64 = device_rates.iter().sum();

        let mut shares = GroupShares::new();
        for (spec, o) in fleet.devices.iter().zip(outcomes) {
            shares.record(spec.cc, o.goodput_mbps);
        }
        let cc_groups = shares
            .groups()
            .map(|(cc, rates)| CcGroupStat {
                cc: cc.to_string(),
                devices: rates.len() as u64,
                goodput_mbps: rates.iter().sum(),
                jain: sim_core::metrics::jain(rates),
            })
            .collect();

        let tiers = CpuConfig::ALL
            .iter()
            .filter_map(|&tier| {
                let mut hist = sim_core::metrics::Histogram::new();
                let mut n = 0u64;
                for (spec, o) in fleet.devices.iter().zip(outcomes) {
                    if spec.cpu == tier {
                        hist.record(o.goodput_mbps);
                        n += 1;
                    }
                }
                (n > 0).then(|| TierStat {
                    tier: tier.to_string(),
                    devices: n,
                    goodput_p10_mbps: hist.quantile(0.10).unwrap_or(0.0),
                    goodput_p50_mbps: hist.quantile(0.50).unwrap_or(0.0),
                    goodput_p90_mbps: hist.quantile(0.90).unwrap_or(0.0),
                })
            })
            .collect();

        let penalised = outcomes
            .iter()
            .filter(|o| o.wants_pacing && o.busy_fraction >= PENALTY_BUSY_FRACTION)
            .count();

        let mut jain_devices = sim_core::metrics::jain(&device_rates);
        if mutants::is(Mutant::FleetJainMiscount) && device_rates.len() > 1 {
            // The off-by-one divides by n−1 instead of n; undo one factor.
            let n = device_rates.len() as f64;
            jain_devices *= n / (n - 1.0);
        }

        let dev0_share = if aggregate_goodput_mbps > 0.0 {
            device_rates.first().copied().unwrap_or(0.0) / aggregate_goodput_mbps
        } else {
            0.0
        };

        FleetResult {
            devices: fleet.devices.len() as u64,
            aggregate_goodput_mbps,
            jain_devices,
            cc_groups,
            tiers,
            pacing_penalty_fraction: penalised as f64 / fleet.devices.len().max(1) as f64,
            dev0_share,
            shared_pkts,
            shared_drops,
            delivered_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(goodput: f64) -> DeviceOutcome {
        DeviceOutcome {
            goodput_mbps: goodput,
            wants_pacing: false,
            busy_fraction: 0.1,
        }
    }

    #[test]
    fn mixed_cycles_the_tier_mix() {
        let fleet = FleetConfig::mixed(13);
        assert_eq!(fleet.devices.len(), 13);
        assert_eq!(fleet.total_connections(), 13);
        assert_eq!(fleet.devices[0], fleet.devices[TIER_MIX.len()].clone());
        // Every tier-mix entry appears at least twice in 13 devices.
        for &(cpu, cc, media) in &TIER_MIX {
            let n = fleet
                .devices
                .iter()
                .filter(|d| d.cpu == cpu && d.cc == cc && d.media == media)
                .count();
            assert!(n >= 2, "{cpu:?}/{cc:?}/{media:?} appears {n} times");
        }
    }

    #[test]
    fn pop_uplink_applies_qdisc() {
        let fifo = FleetConfig::pop_uplink(Bandwidth::from_gbps(2), Qdisc::Fifo);
        let codel = FleetConfig::pop_uplink(Bandwidth::from_gbps(2), Qdisc::Codel);
        assert_eq!(fifo.qdisc(), Qdisc::Fifo);
        assert_eq!(codel.qdisc(), Qdisc::Codel);
        assert_eq!(fifo.rate, Bandwidth::from_gbps(2));
    }

    #[test]
    fn compute_groups_and_tiers() {
        let fleet = FleetConfig {
            devices: vec![
                DeviceSpec::new(CpuConfig::LowEnd, CcKind::Bbr, MediaProfile::Wifi),
                DeviceSpec::new(CpuConfig::LowEnd, CcKind::Bbr, MediaProfile::Wifi),
                DeviceSpec::new(CpuConfig::HighEnd, CcKind::Cubic, MediaProfile::Ethernet),
            ],
            shared: None,
        };
        let outcomes = vec![outcome(10.0), outcome(10.0), outcome(20.0)];
        let fr = FleetResult::compute(&fleet, &outcomes, 100, 5, 1_000_000);
        assert_eq!(fr.devices, 3);
        assert!((fr.aggregate_goodput_mbps - 40.0).abs() < 1e-9);
        // Groups in fixed order: Cubic before BBR.
        assert_eq!(fr.cc_groups.len(), 2);
        assert_eq!(fr.cc_groups[0].cc, "Cubic");
        assert_eq!(fr.cc_groups[1].cc, "BBR");
        assert_eq!(fr.cc_groups[1].devices, 2);
        assert_eq!(fr.cc_groups[1].jain, 1.0, "equal shares within cohort");
        // Tiers: Low-End then High-End, per CpuConfig::ALL order.
        assert_eq!(fr.tiers.len(), 2);
        assert_eq!(fr.tiers[0].tier, "Low-End");
        assert_eq!(fr.tiers[0].devices, 2);
        assert_eq!(fr.shared_drops, 5);
        assert_eq!(fr.delivered_bytes, 1_000_000);
        assert!((fr.dev0_share - 0.25).abs() < 1e-12, "10 of 40 Mbps");
    }

    #[test]
    fn dev0_share_handles_an_idle_fleet() {
        let fleet = FleetConfig::uniform(
            2,
            DeviceSpec::new(CpuConfig::LowEnd, CcKind::Bbr, MediaProfile::Wifi),
        );
        let fr = FleetResult::compute(&fleet, &[outcome(0.0), outcome(0.0)], 0, 0, 0);
        assert_eq!(fr.dev0_share, 0.0);
    }

    #[test]
    fn extra_rtt_is_skipped_from_serialization_when_zero() {
        use serde::Serialize;
        let spec = DeviceSpec::new(CpuConfig::LowEnd, CcKind::Bbr, MediaProfile::Wifi);
        assert!(
            spec.to_value().get("extra_rtt").is_none(),
            "zero extra_rtt must keep legacy fleet cache keys byte-stable"
        );
        let shifted = spec.with_extra_rtt(SimDuration::from_millis(40));
        assert!(shifted.to_value().get("extra_rtt").is_some());
    }

    #[test]
    fn pacing_penalty_counts_saturated_pacers_only() {
        let fleet = FleetConfig::uniform(
            4,
            DeviceSpec::new(CpuConfig::LowEnd, CcKind::Bbr, MediaProfile::Wifi),
        );
        let outcomes = vec![
            DeviceOutcome {
                goodput_mbps: 1.0,
                wants_pacing: true,
                busy_fraction: 0.99,
            },
            DeviceOutcome {
                goodput_mbps: 1.0,
                wants_pacing: true,
                busy_fraction: 0.2, // paces but has CPU headroom
            },
            DeviceOutcome {
                goodput_mbps: 1.0,
                wants_pacing: false,
                busy_fraction: 0.99, // saturated but not pacing
            },
            DeviceOutcome {
                goodput_mbps: 1.0,
                wants_pacing: true,
                busy_fraction: 0.95,
            },
        ];
        let fr = FleetResult::compute(&fleet, &outcomes, 0, 0, 0);
        assert!((fr.pacing_penalty_fraction - 0.5).abs() < 1e-12);
    }
}
