//! TCP sequence-number arithmetic.
//!
//! The simulator's bookkeeping uses monotonically increasing `u64` packet
//! sequence numbers ([`PktSeq`]) — the stack never wraps in a simulated
//! run, and unwrappable numbers make the scoreboard's invariants directly
//! checkable. [`WireSeq`] is the 32-bit on-the-wire representation with
//! RFC 793 modular comparison; the conversion between the two is exercised
//! by property tests because wrap bugs are the classic TCP implementation
//! error.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A packet-granularity sequence number (monotonic, never wraps).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PktSeq(pub u64);

impl PktSeq {
    /// The first sequence number.
    pub const ZERO: PktSeq = PktSeq(0);

    /// The following sequence number.
    pub fn next(self) -> PktSeq {
        PktSeq(self.0 + 1)
    }

    /// Advance by `n` packets.
    pub fn advance(self, n: u64) -> PktSeq {
        PktSeq(self.0 + n)
    }

    /// Distance from `earlier` (panics if `earlier` is ahead).
    pub fn since(self, earlier: PktSeq) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("PktSeq distance underflow")
    }

    /// The 32-bit wire representation (byte-granularity wrap emulated at
    /// packet granularity).
    pub fn to_wire(self) -> WireSeq {
        WireSeq(self.0 as u32)
    }
}

impl fmt::Display for PktSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A 32-bit wire sequence number with modular (RFC 793 / RFC 1982-style)
/// ordering: `a < b` iff `(b - a) mod 2³²` is in `(0, 2³¹)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct WireSeq(pub u32);

impl WireSeq {
    /// Modular "before": true iff this precedes `other` in sequence space.
    pub fn before(self, other: WireSeq) -> bool {
        let diff = other.0.wrapping_sub(self.0);
        diff != 0 && diff < 0x8000_0000
    }

    /// Modular "after".
    pub fn after(self, other: WireSeq) -> bool {
        other.before(self)
    }

    /// `self ≤ other` in modular order.
    pub fn before_eq(self, other: WireSeq) -> bool {
        self == other || self.before(other)
    }

    /// Modular distance from `earlier` to `self` (valid when `self` is
    /// within 2³¹ of `earlier`).
    pub fn distance_from(self, earlier: WireSeq) -> u32 {
        self.0.wrapping_sub(earlier.0)
    }

    /// Advance by `n`, wrapping.
    pub fn advance(self, n: u32) -> WireSeq {
        WireSeq(self.0.wrapping_add(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pktseq_ordering_is_plain() {
        assert!(PktSeq(1) < PktSeq(2));
        assert_eq!(PktSeq(5).since(PktSeq(3)), 2);
        assert_eq!(PktSeq(3).advance(4), PktSeq(7));
        assert_eq!(PktSeq::ZERO.next(), PktSeq(1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn pktseq_backwards_distance_panics() {
        PktSeq(1).since(PktSeq(2));
    }

    #[test]
    fn wireseq_simple_ordering() {
        assert!(WireSeq(1).before(WireSeq(2)));
        assert!(!WireSeq(2).before(WireSeq(1)));
        assert!(!WireSeq(7).before(WireSeq(7)));
        assert!(WireSeq(7).before_eq(WireSeq(7)));
    }

    #[test]
    fn wireseq_wraparound_ordering() {
        // Near the wrap point: 0xFFFF_FFFF precedes 0 and 5.
        assert!(WireSeq(0xFFFF_FFFF).before(WireSeq(0)));
        assert!(WireSeq(0xFFFF_FFFF).before(WireSeq(5)));
        assert!(WireSeq(5).after(WireSeq(0xFFFF_FFFF)));
        assert_eq!(WireSeq(3).distance_from(WireSeq(0xFFFF_FFFE)), 5);
    }

    #[test]
    fn wireseq_half_window_is_ambiguous_boundary() {
        // Exactly 2³¹ apart: by convention, not "before".
        assert!(!WireSeq(0).before(WireSeq(0x8000_0000)));
        assert!(WireSeq(0).before(WireSeq(0x7FFF_FFFF)));
    }

    #[test]
    fn pkt_to_wire_truncates() {
        assert_eq!(PktSeq(0x1_0000_0005).to_wire(), WireSeq(5));
    }

    proptest! {
        /// before/after are a strict weak order on nearby numbers.
        #[test]
        fn prop_wireseq_antisymmetric(a in any::<u32>(), delta in 1u32..0x7FFF_FFFF) {
            let x = WireSeq(a);
            let y = x.advance(delta);
            prop_assert!(x.before(y));
            prop_assert!(!y.before(x));
            prop_assert!(y.after(x));
        }

        /// Advancing then measuring distance round-trips for in-window deltas.
        #[test]
        fn prop_wireseq_distance_roundtrip(a in any::<u32>(), delta in 0u32..0x7FFF_FFFF) {
            let x = WireSeq(a);
            prop_assert_eq!(x.advance(delta).distance_from(x), delta);
        }

        /// PktSeq → WireSeq preserves modular ordering within half-window.
        #[test]
        fn prop_pkt_wire_order_consistent(a in any::<u64>(), delta in 1u64..0x7FFF_FFFF) {
            let p = PktSeq(a);
            let q = p.advance(delta);
            prop_assert!(p.to_wire().before(q.to_wire()));
        }
    }
}
