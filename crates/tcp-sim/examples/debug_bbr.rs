//! Throwaway diagnostic: print BBR's trajectory for a chosen scenario.
use congestion::CcKind;
use cpu_model::{CpuConfig, DeviceProfile};
use sim_core::time::SimDuration;
use tcp_sim::pacing::PacingConfig;
use tcp_sim::sim::{SimConfig, StackSim};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stride: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let conns: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let cpu = match args.get(3).map(|s| s.as_str()) {
        Some("high") => CpuConfig::HighEnd,
        Some("mid") => CpuConfig::MidEnd,
        Some("default") => CpuConfig::Default,
        _ => CpuConfig::LowEnd,
    };
    let cc = match args.get(4).map(|s| s.as_str()) {
        Some("cubic") => CcKind::Cubic,
        _ => CcKind::Bbr,
    };
    let mut builder = SimConfig::builder(DeviceProfile::pixel4(), cpu, cc, conns)
        .duration(SimDuration::from_millis(12000))
        .warmup(SimDuration::from_millis(500))
        .pacing(if stride == 0 {
            PacingConfig::auto()
        } else {
            PacingConfig::with_stride(stride)
        });
    match args.get(5).map(|s| s.as_str()) {
        Some("lte") => builder = builder.media(netsim::media::MediaProfile::Lte),
        Some("wifi") => builder = builder.media(netsim::media::MediaProfile::Wifi),
        _ => {}
    }
    let cfg = builder.build().expect("valid config");
    let res = StackSim::new(cfg).run();
    println!(
        "goodput = {:.1} Mbps  (fairness {:.3})",
        res.goodput_mbps(),
        res.fairness
    );
    println!(
        "mean_rtt = {:.3} ms, p95 = {:.3}",
        res.mean_rtt_ms, res.p95_rtt_ms
    );
    println!("retx = {}", res.total_retx);
    println!(
        "mean skb = {:.0} B, mean idle = {:.3} ms",
        res.mean_skb_bytes, res.mean_idle_ms
    );
    for (k, v) in res.counters.iter() {
        println!("  {k} = {v}");
    }
    let mut per: Vec<f64> = res
        .per_conn
        .iter()
        .map(|c| c.goodput.as_mbps_f64())
        .collect();
    per.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "per-conn goodput: {:?}",
        per.iter().map(|x| *x as u64).collect::<Vec<_>>()
    );
    println!(
        "cpu: cycles={} busy={:?} mean_freq={:.0}MHz",
        res.cpu.total_cycles,
        res.cpu.busy_time,
        res.cpu.mean_freq_hz / 1e6
    );
    for (cat, cycles) in &res.cpu.cycles_by_category {
        println!(
            "  cycles[{cat}] = {cycles} ({:.1}%)",
            *cycles as f64 * 100.0 / res.cpu.total_cycles.max(1) as f64
        );
    }
}
