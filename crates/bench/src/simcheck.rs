//! The `simcheck` deterministic scenario fuzzer: oracle library, scenario
//! space, shrinking, corpus regression, and the mutant sensitivity harness.
//!
//! The generic machinery (oracle evaluation, bisection + greedy shrinking,
//! the persisted corpus) lives in `sim_core::check`; this module supplies
//! the *concrete* pieces that need the full simulator API:
//!
//! * [`Scenario`] — a point in the supported configuration space (CC ×
//!   CPU config × media × 1–1024 connections (log-biased) × pacing stride × shallow
//!   buffers × netem impairments × cross-traffic × ACK cadence × uplink
//!   qdisc (FIFO/CoDel/FQ-CoDel) × the fleet
//!   axis: device count, uniform-vs-mixed tier/CC population, shared
//!   bottleneck rate and qdisc), with a
//!   deterministic [`Scenario::draw`] from a [`SimRng`] and a compact
//!   `key=value` spec codec so every failure is a one-line repro;
//! * [`oracles`] — the invariant library: physical conservation, protocol
//!   sanity, counter identities, paper-derived metamorphic relations
//!   (Eq. 2 / Table 2 stride envelope, CPU-frequency monotonicity, Fig. 7 pacing
//!   RTT inflation), and the fleet oracles (shared-bottleneck
//!   conservation, Jain-index bounds + permutation invariance);
//! * [`fuzz`] — the batch driver, built on `sim_core::sweep::run_sweep_streaming`
//!   so results are bit-identical for any `--jobs` value;
//! * [`shrink_scenario`] — bisection over the numeric axes plus greedy
//!   strategy-level simplification (drop impairments, collapse media to
//!   Ethernet) while the original oracle still fails;
//! * [`mutant_check`] — activates each intentional `tcp_sim::mutants`
//!   mutation in turn and requires at least one oracle to catch it.

use congestion::master::MasterConfig;
use congestion::CcKind;
use cpu_model::{CostModel, CpuConfig, DeviceProfile};
use netsim::media::MediaProfile;
use netsim::Qdisc;
use sim_core::check::{evaluate, shrink, shrink_u64, NamedOracle, Violation};
use sim_core::rng::SimRng;
use sim_core::sweep::{run_sweep_streaming, SweepCell, SweepOptions};
use sim_core::time::SimDuration;
use sim_core::units::Bandwidth;
use tcp_sim::fleet::DeviceSpec;
use tcp_sim::mutants::{self, Mutant};
use tcp_sim::{FleetConfig, PacingConfig, SimConfig, SimResult, StackSim};
use test_support::{ALL_CC, ALL_CPU, ALL_MEDIA};

/// One point in the supported configuration space.
///
/// All fields are integers (loss is parts-per-million) so the spec string
/// round-trips exactly — a shrunk repro re-runs bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Congestion controller.
    pub cc: CcKind,
    /// Table 1 CPU configuration.
    pub cpu: CpuConfig,
    /// Media profile (§3.2 + 5G).
    pub media: MediaProfile,
    /// Parallel connections, 1–1024: the paper sweeps 1–20; the upper
    /// decades exercise the flow-state arena at fleet scale.
    pub conns: u64,
    /// Pacing stride (Eq. 2).
    pub stride: u64,
    /// Force pacing off via the master module (§5).
    pub pacing_off: bool,
    /// Shallow-buffer override of the uplink queue (§5.2.3), packets.
    pub queue: Option<u64>,
    /// Uplink netem loss, parts per million.
    pub loss_ppm: u32,
    /// Extra uplink netem jitter, microseconds.
    pub jitter_us: u64,
    /// Poisson cross-traffic at the bottleneck, Mbps (0 = none).
    pub cross_mbps: u64,
    /// Classic delayed-ACK cadence (`None` = GRO-coalescing server).
    pub ack_per_segs: Option<u64>,
    /// Simulated duration, milliseconds.
    pub dur_ms: u64,
    /// Warmup before the measurement window, milliseconds.
    pub warmup_ms: u64,
    /// Simulation seed (netem draws, WiFi variation).
    pub seed: u64,
    /// Fleet device count; 0 disables fleet mode (the default, so every
    /// pre-fleet corpus line parses unchanged). When > 0, `conns` is
    /// normalised to one connection per device.
    pub fleet: u64,
    /// Fleet population: 0 = uniform (every device uses this scenario's
    /// cc/cpu/media), 1 = the canonical mixed tier/CC/media population.
    pub fmix: u64,
    /// Shared-bottleneck rate in Mbps; 0 = no shared hop (the degenerate
    /// fleet the differential tests pin down).
    pub fshared: u64,
    /// Queue discipline at the shared bottleneck.
    pub fqdisc: Qdisc,
    /// Queue discipline at the single-device uplink bottleneck (ignored
    /// by fleet runs, whose access links come from the device specs).
    pub qdisc: Qdisc,
}

fn cc_name(cc: CcKind) -> &'static str {
    match cc {
        CcKind::Cubic => "cubic",
        CcKind::Bbr => "bbr",
        CcKind::Bbr2 => "bbr2",
        CcKind::Bbr3 => "bbr3",
        CcKind::Reno => "reno",
    }
}

fn qdisc_name(q: Qdisc) -> &'static str {
    match q {
        Qdisc::Fifo => "fifo",
        Qdisc::Codel => "codel",
        Qdisc::FqCodel => "fqcodel",
    }
}

fn parse_qdisc(key: &str, v: &str) -> Result<Qdisc, String> {
    match v {
        "fifo" => Ok(Qdisc::Fifo),
        "codel" => Ok(Qdisc::Codel),
        "fqcodel" => Ok(Qdisc::FqCodel),
        other => Err(format!("{key}: expected fifo/codel/fqcodel, got {other:?}")),
    }
}

fn cpu_name(cpu: CpuConfig) -> &'static str {
    match cpu {
        CpuConfig::LowEnd => "low",
        CpuConfig::MidEnd => "mid",
        CpuConfig::HighEnd => "high",
        CpuConfig::Default => "default",
    }
}

fn media_name(media: MediaProfile) -> &'static str {
    match media {
        MediaProfile::Ethernet => "eth",
        MediaProfile::Wifi => "wifi",
        MediaProfile::Lte => "lte",
        MediaProfile::FiveG => "5g",
    }
}

impl Scenario {
    /// Draw a scenario uniformly-ish from the supported space. Impairment
    /// axes are biased toward "absent" so the common case stays the clean
    /// path and the metamorphic oracles (which need clean runs) fire often.
    pub fn draw(rng: &mut SimRng) -> Scenario {
        let dur_ms = rng.range_inclusive(400, 900);
        let mut s = Scenario {
            cc: ALL_CC[rng.below(ALL_CC.len() as u64) as usize],
            cpu: ALL_CPU[rng.below(ALL_CPU.len() as u64) as usize],
            media: ALL_MEDIA[rng.below(ALL_MEDIA.len() as u64) as usize],
            conns: {
                // Log-biased over 1–1024: a uniform octave, then a value
                // within it. Small counts (the paper's 1–20 sweep regime)
                // stay common while fleet-scale counts that stress the
                // flow-state arena turn up every few draws.
                let hi = 1u64 << rng.range_inclusive(0, 10);
                rng.range_inclusive((hi / 2).max(1), hi)
            },
            stride: [1, 1, 2, 4, 8, 16, 32][rng.below(7) as usize],
            pacing_off: rng.chance(0.25),
            queue: if rng.chance(0.25) {
                Some(rng.range_inclusive(5, 60))
            } else {
                None
            },
            loss_ppm: if rng.chance(0.3) {
                rng.range_inclusive(100, 10_000) as u32
            } else {
                0
            },
            jitter_us: if rng.chance(0.3) {
                rng.range_inclusive(50, 2_000)
            } else {
                0
            },
            cross_mbps: if rng.chance(0.2) {
                rng.range_inclusive(10, 400)
            } else {
                0
            },
            ack_per_segs: if rng.chance(0.2) {
                Some(rng.range_inclusive(1, 8))
            } else {
                None
            },
            dur_ms,
            warmup_ms: rng.range_inclusive(150, 300),
            seed: rng.range_inclusive(1, 999_999),
            fleet: 0,
            fmix: 0,
            fshared: 0,
            fqdisc: Qdisc::Fifo,
            qdisc: if rng.chance(0.3) {
                // AQM on the uplink bottleneck: both CoDel and FQ-CoDel
                // turn up every few draws.
                [Qdisc::Codel, Qdisc::FqCodel][rng.below(2) as usize]
            } else {
                Qdisc::Fifo
            },
        };
        // Fleet axis on ~1 draw in 5: single-device scenarios stay the bulk
        // of the stream while shared-bottleneck arbitration, heterogeneous
        // populations and all three qdiscs turn up every few draws.
        if rng.chance(0.2) {
            s.fleet = rng.range_inclusive(2, 12);
            s.fmix = u64::from(rng.chance(0.5));
            if rng.chance(0.7) {
                s.fshared = rng.range_inclusive(20, 300);
            }
            if rng.chance(0.5) {
                s.fqdisc = [Qdisc::Codel, Qdisc::FqCodel][rng.below(2) as usize];
            }
            s.conns = s.fleet;
        }
        s
    }

    /// Compact one-line spec: comma-separated `key=value` pairs, the exact
    /// input `simcheck --scenario` accepts and the corpus stores.
    pub fn spec_string(&self) -> String {
        let mut spec = format!(
            "cc={},cpu={},media={},conns={},stride={},pacing={},queue={},loss={},jitter={},cross={},acks={},dur={},warmup={},seed={}",
            cc_name(self.cc),
            cpu_name(self.cpu),
            media_name(self.media),
            self.conns,
            self.stride,
            if self.pacing_off { "off" } else { "on" },
            self.queue.map(|q| q.to_string()).unwrap_or_else(|| "-".into()),
            self.loss_ppm,
            self.jitter_us,
            self.cross_mbps,
            self.ack_per_segs.map(|a| a.to_string()).unwrap_or_else(|| "-".into()),
            self.dur_ms,
            self.warmup_ms,
            self.seed,
        );
        // Conditional keys appear only when their axis is active, so older
        // specs (and the corpus they live in) stay byte-identical: qdisc
        // only when the uplink runs AQM, fleet keys only in fleet mode.
        if self.qdisc != Qdisc::Fifo {
            spec.push_str(&format!(",qdisc={}", qdisc_name(self.qdisc)));
        }
        if self.fleet > 0 {
            spec.push_str(&format!(
                ",fleet={},fmix={},fshared={},fqdisc={}",
                self.fleet,
                self.fmix,
                self.fshared,
                qdisc_name(self.fqdisc),
            ));
        }
        spec
    }

    /// Parse a [`Scenario::spec_string`] back. Unknown keys, malformed
    /// values, and out-of-range fields are errors, never panics.
    pub fn parse(spec: &str) -> Result<Scenario, String> {
        let mut s = Scenario {
            cc: CcKind::Bbr,
            cpu: CpuConfig::LowEnd,
            media: MediaProfile::Ethernet,
            conns: 1,
            stride: 1,
            pacing_off: false,
            queue: None,
            loss_ppm: 0,
            jitter_us: 0,
            cross_mbps: 0,
            ack_per_segs: None,
            dur_ms: 600,
            warmup_ms: 200,
            seed: 1,
            fleet: 0,
            fmix: 0,
            fshared: 0,
            fqdisc: Qdisc::Fifo,
            qdisc: Qdisc::Fifo,
        };
        fn int(key: &str, v: &str) -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|_| format!("{key}: bad integer {v:?}"))
        }
        fn opt_int(key: &str, v: &str) -> Result<Option<u64>, String> {
            if v == "-" {
                Ok(None)
            } else {
                int(key, v).map(Some)
            }
        }
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, v) = part
                .trim()
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            match key {
                "cc" => {
                    s.cc = *ALL_CC
                        .iter()
                        .find(|c| cc_name(**c) == v)
                        .ok_or_else(|| format!("unknown cc {v:?}"))?
                }
                "cpu" => {
                    s.cpu = *ALL_CPU
                        .iter()
                        .find(|c| cpu_name(**c) == v)
                        .ok_or_else(|| format!("unknown cpu {v:?}"))?
                }
                "media" => {
                    s.media = *ALL_MEDIA
                        .iter()
                        .find(|m| media_name(**m) == v)
                        .ok_or_else(|| format!("unknown media {v:?}"))?
                }
                "conns" => s.conns = int(key, v)?.clamp(1, 1024),
                "stride" => s.stride = int(key, v)?.max(1),
                "pacing" => {
                    s.pacing_off = match v {
                        "on" => false,
                        "off" => true,
                        other => return Err(format!("pacing: expected on/off, got {other:?}")),
                    }
                }
                "queue" => s.queue = opt_int(key, v)?.map(|q| q.max(1)),
                "loss" => s.loss_ppm = int(key, v)?.min(1_000_000) as u32,
                "jitter" => s.jitter_us = int(key, v)?,
                "cross" => s.cross_mbps = int(key, v)?,
                "acks" => s.ack_per_segs = opt_int(key, v)?.map(|a| a.max(1)),
                "dur" => s.dur_ms = int(key, v)?.max(50),
                "warmup" => s.warmup_ms = int(key, v)?,
                "seed" => s.seed = int(key, v)?,
                "fleet" => s.fleet = int(key, v)?.min(64),
                "fmix" => s.fmix = int(key, v)?.min(1),
                "fshared" => s.fshared = int(key, v)?.min(10_000),
                "fqdisc" => s.fqdisc = parse_qdisc(key, v)?,
                "qdisc" => s.qdisc = parse_qdisc(key, v)?,
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        if s.warmup_ms >= s.dur_ms {
            return Err(format!(
                "warmup {} must be shorter than dur {}",
                s.warmup_ms, s.dur_ms
            ));
        }
        if s.fleet > 0 {
            // One connection per device keeps `conns` and the fleet axis
            // coherent without a second degree of freedom in the spec.
            s.conns = s.fleet;
        }
        Ok(s)
    }

    /// Materialise the full simulator configuration.
    pub fn to_config(&self) -> SimConfig {
        let mut path = self.media.path_config();
        if let Some(q) = self.queue {
            path = path.with_queue_packets(q as usize);
        }
        if self.loss_ppm > 0 {
            path.forward_netem = path
                .forward_netem
                .clone()
                .with_loss(f64::from(self.loss_ppm) / 1e6);
        }
        if self.jitter_us > 0 {
            path.forward_netem.jitter += SimDuration::from_micros(self.jitter_us);
        }
        let mut builder = SimConfig::builder(
            DeviceProfile::pixel4(),
            self.cpu,
            self.cc,
            self.conns as usize,
        )
        .path(path)
        .qdisc(self.qdisc)
        .pacing(PacingConfig::with_stride(self.stride))
        .ack_per_segs(self.ack_per_segs)
        .duration(SimDuration::from_millis(self.dur_ms))
        .warmup(SimDuration::from_millis(self.warmup_ms))
        .sample_interval(None)
        .seed(self.seed);
        if self.pacing_off {
            builder = builder.master(MasterConfig::pacing_off());
        }
        if self.cross_mbps > 0 {
            builder = builder.cross_traffic(netsim::crosstraffic::CrossTrafficConfig::at(
                Bandwidth::from_mbps(self.cross_mbps),
            ));
        }
        if let Some(fc) = self.fleet_config() {
            builder = builder.fleet(fc);
        }
        // Parsing, drawing, and shrinking all maintain warmup < dur,
        // stride >= 1, conns >= 1, queue >= 1, so a Scenario is always a
        // valid configuration.
        builder
            .build()
            .expect("scenario invariants guarantee a valid config")
    }

    /// The fleet this scenario runs, if the axis is active — the single
    /// source of truth shared by `to_config` and the fleet oracles.
    fn fleet_config(&self) -> Option<FleetConfig> {
        if self.fleet == 0 {
            return None;
        }
        let mut fc = if self.fmix == 1 {
            FleetConfig::mixed(self.fleet as usize)
        } else {
            FleetConfig::uniform(
                self.fleet as usize,
                DeviceSpec::new(self.cpu, self.cc, self.media),
            )
        };
        if self.fshared > 0 {
            fc = fc.with_shared(FleetConfig::pop_uplink(
                Bandwidth::from_mbps(self.fshared),
                self.fqdisc,
            ));
        }
        Some(fc)
    }

    /// No impairments: loss, cross traffic, shallow buffers, and AQM
    /// absent (CoDel's deliberate drops move the metamorphic relations
    /// off the terrain the paper establishes them on).
    fn clean(&self) -> bool {
        self.loss_ppm == 0
            && self.cross_mbps == 0
            && self.queue.is_none()
            && self.qdisc == Qdisc::Fifo
    }

    /// A controller that actually paces (BBR family with pacing enabled).
    /// The canonical mixed fleet always contains BBR-family devices, so a
    /// mixed-fleet run paces whenever the master module doesn't forbid it.
    fn paced_bbr(&self) -> bool {
        if self.fleet > 0 && self.fmix == 1 {
            return !self.pacing_off;
        }
        matches!(self.cc, CcKind::Bbr | CcKind::Bbr2 | CcKind::Bbr3) && !self.pacing_off
    }

    /// Length of the measurement window in milliseconds.
    fn window_ms(&self) -> u64 {
        self.dur_ms.saturating_sub(self.warmup_ms)
    }
}

/// Everything the oracles get to look at: the scenario, its result, and
/// the companion runs the metamorphic relations need (present only when
/// the scenario is eligible for that relation — see [`run_scenario`]).
pub struct ScenarioRun {
    /// The drawn scenario.
    pub scenario: Scenario,
    /// Result of the scenario itself.
    pub result: SimResult,
    /// Bit-identical re-run (determinism spot-check subset).
    pub rerun: Option<SimResult>,
    /// Same scenario at stride 1 (Eq. 2 / Table 2 stride envelope).
    pub stride_one: Option<SimResult>,
    /// Same scenario on the High-End CPU (frequency monotonicity).
    pub cpu_high: Option<SimResult>,
    /// Same scenario with pacing forced off (Fig. 7 RTT inflation).
    pub unpaced: Option<SimResult>,
}

/// Run a scenario plus whichever companion runs its oracles are eligible
/// for. Eligibility guards keep the metamorphic relations on the terrain
/// where the paper makes them: clean paths, Ethernet where the claim is
/// Ethernet-specific, long-enough measurement windows.
pub fn run_scenario(s: &Scenario) -> ScenarioRun {
    let result = StackSim::new(s.to_config()).run();
    let rerun = if s.seed.is_multiple_of(5) {
        Some(StackSim::new(s.to_config()).run())
    } else {
        None
    };
    // Eq. 2 stride envelope: stride stretches idle time, so goodput is
    // bounded by stride 1 above and by the 1/stride law (Table 2's
    // post-plateau regime) below.
    let stride_one = if s.fleet == 0
        && s.stride > 1
        && s.paced_bbr()
        && s.clean()
        && s.media == MediaProfile::Ethernet
        && s.cpu == CpuConfig::HighEnd
        && s.ack_per_segs.is_none()
    {
        let mut alt = s.clone();
        alt.stride = 1;
        Some(StackSim::new(alt.to_config()).run())
    } else {
        None
    };
    // Goodput is monotone non-decreasing in CPU frequency (the paper's
    // whole mechanism: more cycles, never less goodput) — checked on
    // clean paths from the Low-End config.
    // Fleet runs take their CPUs/strides/pacing from the device specs, so
    // the single-device metamorphic companions don't apply there.
    let cpu_high =
        if s.fleet == 0 && s.cpu == CpuConfig::LowEnd && s.clean() && s.window_ms() >= 300 {
            let mut alt = s.clone();
            alt.cpu = CpuConfig::HighEnd;
            Some(StackSim::new(alt.to_config()).run())
        } else {
            None
        };
    // Fig. 7: disabling pacing never meaningfully lowers RTT (it inflates
    // it — unpaced bursts queue at the bottleneck). Only in the paper's
    // few-flows regime: with hundreds of flows the bottleneck queue is
    // congestion-limited either way and the relation can invert. And only
    // for BBR v1, the variant Fig. 7 measures: v2/v3's inflight_hi loss
    // response clamps the unpaced flood as soon as its bursts overflow
    // the buffer, which can leave the unpaced queue *shallower* than the
    // paced one.
    let unpaced = if s.fleet == 0
        && s.cc == CcKind::Bbr
        && !s.pacing_off
        && s.clean()
        && s.media == MediaProfile::Ethernet
        && (2..=64).contains(&s.conns)
        && s.window_ms() >= 300
    {
        let mut alt = s.clone();
        alt.pacing_off = true;
        Some(StackSim::new(alt.to_config()).run())
    } else {
        None
    };
    ScenarioRun {
        scenario: s.clone(),
        result,
        rerun,
        stride_one,
        cpu_high,
        unpaced,
    }
}

fn delivered_window(res: &SimResult) -> u64 {
    res.per_conn.iter().map(|c| c.delivered_pkts).sum()
}

/// The invariant-oracle library (see module docs for the taxonomy).
pub fn oracles() -> Vec<NamedOracle<ScenarioRun>> {
    fn o(
        name: &'static str,
        check: fn(&ScenarioRun) -> Result<(), String>,
    ) -> NamedOracle<ScenarioRun> {
        NamedOracle { name, check }
    }
    vec![
        o("goodput-line-rate", |r| {
            // Physical conservation: goodput cannot exceed the uplink's
            // hard rate ceiling (envelope top for variable media). A fleet
            // is bounded by its devices' summed access ceilings, tightened
            // by the shared bottleneck when one exists.
            let ceiling = match r.scenario.fleet_config() {
                Some(fc) => {
                    let access: f64 = fc
                        .devices
                        .iter()
                        .map(|d| d.media.path_config().max_forward_rate().as_mbps_f64())
                        .sum();
                    match &fc.shared {
                        Some(link) => access.min(link.rate.as_mbps_f64()),
                        None => access,
                    }
                }
                None => r
                    .scenario
                    .media
                    .path_config()
                    .max_forward_rate()
                    .as_mbps_f64(),
            };
            let bound = ceiling * 1.1 + 1.0;
            if r.result.goodput_mbps() <= bound {
                Ok(())
            } else {
                Err(format!(
                    "goodput {:.1} Mbps exceeds line-rate bound {bound:.1}",
                    r.result.goodput_mbps(),
                ))
            }
        }),
        o("conservation-delivered", |r| {
            let sent = r.result.counters.get("pkts_sent");
            let delivered = delivered_window(&r.result);
            if delivered <= sent {
                Ok(())
            } else {
                Err(format!("delivered {delivered} > sent {sent}"))
            }
        }),
        o("rtt-floor", |r| {
            // RTT can never undershoot the propagation + fixed-netem floor.
            if r.result.mean_rtt_ms <= 0.0 {
                return Ok(());
            }
            // Mixed fleets span media: only the *shortest* device path
            // bounds the population mean from below.
            let base = match r.scenario.fleet_config() {
                Some(fc) => fc
                    .devices
                    .iter()
                    .map(|d| d.media.path_config().base_rtt().as_millis_f64())
                    .fold(f64::INFINITY, f64::min),
                None => r.scenario.media.path_config().base_rtt().as_millis_f64(),
            };
            if r.result.mean_rtt_ms >= base * 0.9 {
                Ok(())
            } else {
                Err(format!(
                    "mean RTT {:.3} ms below base path RTT {:.3} ms",
                    r.result.mean_rtt_ms, base
                ))
            }
        }),
        o("cpu-busy-bound", |r| {
            // Booked busy time can exceed the run length by the terminal
            // backlog: a saturated CPU books work ahead of the clock, and
            // TSQ caps that backlog at ~2 socket buffers per flow, so the
            // allowance scales with the connection count (up to ~3 ms of
            // booked Low-End work per flow was observed; 4 ms/flow keeps
            // headroom while still catching systematic double-charging).
            let grace = 150 + 4 * r.scenario.conns;
            let limit = SimDuration::from_millis(r.scenario.dur_ms + grace);
            if r.result.cpu.busy_time <= limit {
                Ok(())
            } else {
                Err(format!(
                    "CPU busy {:?} exceeds run length {} ms (+{} ms grace)",
                    r.result.cpu.busy_time, r.scenario.dur_ms, grace
                ))
            }
        }),
        o("cycles-partition", |r| {
            let sum: u64 = r.result.cpu.cycles_by_category.values().sum();
            if sum != r.result.cpu.total_cycles {
                return Err(format!(
                    "categories sum {} != total {}",
                    sum, r.result.cpu.total_cycles
                ));
            }
            let g = |n| r.result.counters.get(n);
            let parts = g("cycles_steady_timers")
                + g("cycles_steady_acks")
                + g("cycles_steady_cc_model")
                + g("cycles_steady_data")
                + g("cycles_steady_other");
            if parts == g("cycles_steady_total") {
                Ok(())
            } else {
                Err(format!(
                    "steady parts {} != steady total {}",
                    parts,
                    g("cycles_steady_total")
                ))
            }
        }),
        o("timer-accounting", |r| {
            let fires = r.result.counters.get("timer_fires");
            let arms = r.result.counters.get("timer_arms");
            if !r.scenario.paced_bbr() && (fires != 0 || arms != 0) {
                return Err(format!(
                    "unpaced run armed/fired pacing timers (arms {arms}, fires {fires})"
                ));
            }
            if fires > arms + r.scenario.conns {
                return Err(format!(
                    "fires {} > arms {} + conns {}",
                    fires, arms, r.scenario.conns
                ));
            }
            Ok(())
        }),
        o("timer-cycles-consistent", |r| {
            // Exact identity: every timer fire and period-open arm charges
            // its CostModel cycles into the "timers" category, and nothing
            // else does. Catches Mutant::SkipTimerFireCharge.
            let cost = CostModel::mobile_default();
            let fires = r.result.counters.get("timer_fires");
            let arms = r.result.counters.get("timer_arms");
            let want = fires * cost.timer_fire + arms * cost.timer_arm;
            let got = r
                .result
                .cpu
                .cycles_by_category
                .get("timers")
                .copied()
                .unwrap_or(0);
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "cycles[timers] {got} != fires {fires}x{} + arms {arms}x{} = {want}",
                    cost.timer_fire, cost.timer_arm
                ))
            }
        }),
        o("retx-accounting", |r| {
            // The event loop's retx counter must agree with the
            // scoreboard's own total. Catches Mutant::SkipRetxCount.
            let counted = r.result.counters.get("retx_pkts");
            if r.result.total_retx == counted {
                Ok(())
            } else {
                Err(format!(
                    "scoreboard retx {} != counted retx {}",
                    r.result.total_retx, counted
                ))
            }
        }),
        o("seq-sanity", |r| {
            let n = r.result.counters.get("seq_regressions");
            if n == 0 {
                Ok(())
            } else {
                Err(format!("{n} terminal sequence regressions"))
            }
        }),
        o("sack-coherence", |r| {
            let n = r.result.counters.get("sack_incoherent");
            if n == 0 {
                Ok(())
            } else {
                Err(format!("{n} incoherent SACK blocks emitted"))
            }
        }),
        o("rx-conservation", |r| {
            // The receiver cannot see more packets than survived the wire
            // (arrivals scheduled past the horizon are never delivered, so
            // this is <=, not ==). Catches Mutant::SackClaimExtra.
            let g = |n| r.result.counters.get(n);
            let seen = g("rx_pkts_received") + g("rx_duplicates");
            if seen <= g("rx_pkts_accepted") {
                Ok(())
            } else {
                Err(format!(
                    "receiver saw {seen} pkts but only {} survived the wire",
                    g("rx_pkts_accepted")
                ))
            }
        }),
        o("rx-duplicates-bounded", |r| {
            // Every duplicate reception requires a retransmission (the
            // path never duplicates packets).
            let dups = r.result.counters.get("rx_duplicates");
            if dups <= r.result.total_retx {
                Ok(())
            } else {
                Err(format!(
                    "{dups} duplicate receptions but only {} retransmissions",
                    r.result.total_retx
                ))
            }
        }),
        o("wheel-conservation", |r| {
            let g = |n| r.result.counters.get(n);
            let out = g("wheel_popped") + g("wheel_cancelled") + g("wheel_pending");
            if g("wheel_scheduled") == out {
                Ok(())
            } else {
                Err(format!(
                    "wheel scheduled {} != popped+cancelled+pending {}",
                    g("wheel_scheduled"),
                    out
                ))
            }
        }),
        o("fairness-valid", |r| {
            if (0.0..=1.0 + 1e-9).contains(&r.result.fairness) {
                Ok(())
            } else {
                Err(format!("Jain index {} outside [0,1]", r.result.fairness))
            }
        }),
        o("pool-identity", |r| {
            let g = |n| r.result.counters.get(n);
            for (miss, take, reuse) in [
                ("pool_run_misses", "pool_run_takes", "pool_run_reuses"),
                ("pool_sack_misses", "pool_sack_takes", "pool_sack_reuses"),
                ("pool_slab_misses", "pool_slab_takes", "pool_slab_reuses"),
            ] {
                if g(miss) != g(take) - g(reuse) {
                    return Err(format!(
                        "{miss} {} != {take} {} - {reuse} {}",
                        g(miss),
                        g(take),
                        g(reuse)
                    ));
                }
            }
            Ok(())
        }),
        o("conn-progress", |r| {
            // On a clean path with a real measurement window, every
            // paced-BBR connection keeps moving — a silent stall is the
            // lost-wakeup signature. Catches Mutant::DropPacingArm. Gated
            // to the regime where progress is actually guaranteed: each
            // connection's fair share of the medium inside the window must
            // cover a comfortable packet budget. On slow media (LTE at
            // ~18 Mbps) a large flock can legitimately starve one member
            // for a whole short window — 38 flows there leave under a
            // dozen fair-share packets each, well inside startup jitter.
            let s = &r.scenario;
            if !(s.paced_bbr() && s.clean() && s.conns <= 64 && s.window_ms() >= 300) {
                return Ok(());
            }
            let window = SimDuration::from_millis(s.window_ms());
            let fair_share_pkts =
                s.media.path_config().forward.rate.bytes_in(window) / (s.conns * 1500);
            if fair_share_pkts < 64 {
                return Ok(());
            }
            // A contended shared bottleneck can legitimately starve one
            // cohort inside a short window; progress is only guaranteed on
            // private paths (including degenerate shared-less fleets).
            if s.fleet > 0 && s.fshared > 0 {
                return Ok(());
            }
            for (i, conn) in r.result.per_conn.iter().enumerate() {
                if conn.delivered_pkts == 0 {
                    return Err(format!(
                        "conn {i} delivered nothing in a {} ms clean window",
                        s.window_ms()
                    ));
                }
            }
            Ok(())
        }),
        o("stride-envelope", |r| {
            // Eq. 2 + Table 2: a longer stride can never *create* goodput
            // (it only stretches idle time), and in the worst case — the
            // socket-buffer cap binding immediately — throughput falls as
            // 1/stride, never faster.
            let Some(base) = &r.stride_one else {
                return Ok(());
            };
            let (g_s, g_1) = (r.result.goodput_mbps(), base.goodput_mbps());
            let stride = r.scenario.stride as f64;
            if g_s > 1.15 * g_1 + 5.0 {
                return Err(format!(
                    "stride {} goodput {g_s:.1} exceeds stride-1 goodput {g_1:.1}",
                    r.scenario.stride
                ));
            }
            if g_s < 0.4 * g_1 / stride - 5.0 {
                return Err(format!(
                    "stride {} goodput {g_s:.1} below the 1/stride law ({g_1:.1}/{stride})",
                    r.scenario.stride
                ));
            }
            Ok(())
        }),
        o("cpu-monotone", |r| {
            let Some(high) = &r.cpu_high else {
                return Ok(());
            };
            let (g_low, g_high) = (r.result.goodput_mbps(), high.goodput_mbps());
            if g_high >= 0.9 * g_low - 1.0 {
                Ok(())
            } else {
                Err(format!(
                    "High-End goodput {g_high:.1} below Low-End {g_low:.1}"
                ))
            }
        }),
        o("pacing-rtt-inflation", |r| {
            // Fig. 7: removing pacing floods the bottleneck queue — the
            // unpaced RTT must not come out meaningfully below the paced.
            let Some(unpaced) = &r.unpaced else {
                return Ok(());
            };
            if r.result.mean_rtt_ms <= 0.0 || unpaced.mean_rtt_ms <= 0.0 {
                return Ok(());
            }
            if unpaced.mean_rtt_ms >= 0.95 * r.result.mean_rtt_ms {
                Ok(())
            } else {
                Err(format!(
                    "unpaced RTT {:.3} ms below paced {:.3} ms",
                    unpaced.mean_rtt_ms, r.result.mean_rtt_ms
                ))
            }
        }),
        o("fleet-conservation", |r| {
            // Shared-bottleneck conservation, two clauses. (a) Exact
            // admission accounting: every data packet leaving an access
            // link is offered to the shared hop, so
            //   pkts_sent == netem_drops + queue_drops
            //             + shared_drops + shared_pkts
            // — any hole here (Mutant::FleetSharedBypass) means packets
            // teleported past the arbiter. (b) Capacity: payload delivered
            // across the fleet cannot exceed capacity x run length.
            let s = &r.scenario;
            let Some(f) = &r.result.fleet else {
                return if s.fleet > 0 {
                    Err("fleet scenario reported no fleet metrics".into())
                } else {
                    Ok(())
                };
            };
            if s.fshared == 0 {
                return Ok(()); // degenerate fleet: no shared hop to conserve
            }
            let g = |n| r.result.counters.get(n);
            let offered = g("shared_pkts") + g("shared_drops");
            let accounted = g("netem_drops") + g("queue_drops") + offered;
            if g("pkts_sent") != accounted {
                return Err(format!(
                    "pkts_sent {} != drops+shared admissions {} — {} packets \
                     bypassed the shared bottleneck",
                    g("pkts_sent"),
                    accounted,
                    g("pkts_sent").saturating_sub(accounted)
                ));
            }
            let cap_bytes = s.fshared as f64 * 1e6 / 8.0 * (s.dur_ms as f64 / 1e3);
            if f.delivered_bytes as f64 <= cap_bytes {
                Ok(())
            } else {
                Err(format!(
                    "fleet delivered {} bytes but the shared link carries at most {:.0}",
                    f.delivered_bytes, cap_bytes
                ))
            }
        }),
        o("fleet-jain-bounds", |r| {
            // Jain's index lives in [1/n, 1] and is permutation-invariant.
            // Scenario fleets run one connection per device, so per-device
            // rates can be recomputed straight from per_conn — catching a
            // reported index that drifts from the definition
            // (Mutant::FleetJainMiscount) and any order dependence.
            let Some(f) = &r.result.fleet else {
                return Ok(());
            };
            let eps = 1e-9;
            let n = f.devices as f64;
            if !(1.0 / n - eps..=1.0 + eps).contains(&f.jain_devices) {
                return Err(format!(
                    "device Jain {} outside [{:.4}, 1]",
                    f.jain_devices,
                    1.0 / n
                ));
            }
            for grp in &f.cc_groups {
                let m = grp.devices as f64;
                if !(1.0 / m - eps..=1.0 + eps).contains(&grp.jain) {
                    return Err(format!(
                        "{} cohort Jain {} outside [{:.4}, 1]",
                        grp.cc,
                        grp.jain,
                        1.0 / m
                    ));
                }
            }
            if r.result.per_conn.len() == f.devices as usize {
                let rates: Vec<f64> = r
                    .result
                    .per_conn
                    .iter()
                    .map(|c| c.goodput.as_mbps_f64())
                    .collect();
                let recomputed = sim_core::metrics::jain(&rates);
                let permuted: Vec<f64> = rates.iter().rev().copied().collect();
                let jain_rev = sim_core::metrics::jain(&permuted);
                if (recomputed - f.jain_devices).abs() > 1e-6 {
                    return Err(format!(
                        "reported device Jain {} != recomputed {recomputed}",
                        f.jain_devices
                    ));
                }
                if (recomputed - jain_rev).abs() > 1e-6 {
                    return Err(format!(
                        "Jain not permutation-invariant: {recomputed} vs reversed {jain_rev}"
                    ));
                }
            }
            Ok(())
        }),
        o("aqm-accounting", |r| {
            // Per-qdisc drop attribution: the stack-side `aqm_drops` tally
            // and the links' own `LinkStats::aqm_drops` are counted
            // independently at every drop site and must agree exactly
            // (both keys are absent on FIFO-only paths). Catches
            // Mutant::AqmDropMiscount.
            let stack = r.result.counters.get("aqm_drops");
            let links = r.result.counters.get("link_aqm_drops");
            if stack == links {
                Ok(())
            } else {
                Err(format!(
                    "stack counted {stack} AQM drops but the links recorded {links}"
                ))
            }
        }),
        o("paced-cc-arms-timers", |r| {
            // A paced controller that moves real traffic must arm pacing
            // timers: zero arms with nonzero sends means the controller's
            // pacing request was lost between the CC and the stack — the
            // "new variant missed a dispatch site" hole
            // Mutant::Bbr3PacingDisarm drills into the CC output cache.
            if !r.scenario.paced_bbr() {
                return Ok(());
            }
            let sent = r.result.counters.get("pkts_sent");
            let arms = r.result.counters.get("timer_arms");
            if sent > 100 && arms == 0 {
                Err(format!(
                    "paced run sent {sent} pkts without arming a single pacing timer"
                ))
            } else {
                Ok(())
            }
        }),
        o("determinism-rerun", |r| {
            let Some(again) = &r.rerun else {
                return Ok(());
            };
            let a = &r.result;
            if a.total_goodput != again.total_goodput
                || a.total_retx != again.total_retx
                || a.counters.get("pkts_sent") != again.counters.get("pkts_sent")
                || a.cpu.total_cycles != again.cpu.total_cycles
            {
                Err(format!(
                    "rerun diverged: goodput {:.3}/{:.3}, retx {}/{}",
                    a.goodput_mbps(),
                    again.goodput_mbps(),
                    a.total_retx,
                    again.total_retx
                ))
            } else {
                Ok(())
            }
        }),
    ]
}

/// Run a scenario through every oracle.
pub fn check_scenario(s: &Scenario) -> Vec<Violation> {
    evaluate(&oracles(), &run_scenario(s))
}

/// Does re-checking `s` still fail one of the `original` oracle names?
fn still_fails(s: &Scenario, original: &[String]) -> bool {
    check_scenario(s)
        .iter()
        .any(|v| original.iter().any(|name| name == v.oracle))
}

/// Shrink a failing scenario: bisect the numeric axes (connections,
/// stride, duration), then greedily drop impairments and collapse the
/// media to Ethernet — keeping each move only while one of the original
/// oracles still fails. Deterministic, bounded work.
pub fn shrink_scenario(failing: &Scenario, violations: &[Violation]) -> Scenario {
    let names: Vec<String> = violations.iter().map(|v| v.oracle.to_string()).collect();
    let mut s = failing.clone();

    if s.conns > 1 {
        let probe = s.clone();
        let names_ref = &names;
        s.conns = shrink_u64(1, s.conns, move |c| {
            let mut t = probe.clone();
            t.conns = c;
            still_fails(&t, names_ref)
        });
    }
    if s.stride > 1 {
        let probe = s.clone();
        let names_ref = &names;
        s.stride = shrink_u64(1, s.stride, move |st| {
            let mut t = probe.clone();
            t.stride = st;
            still_fails(&t, names_ref)
        });
    }
    if s.dur_ms > 400 {
        let probe = s.clone();
        let names_ref = &names;
        s.dur_ms = shrink_u64(400, s.dur_ms, move |d| {
            let mut t = probe.clone();
            t.dur_ms = d;
            t.warmup_ms = t.warmup_ms.min(d.saturating_sub(100));
            still_fails(&t, names_ref)
        });
        s.warmup_ms = s.warmup_ms.min(s.dur_ms.saturating_sub(100));
    }

    // Strategy-level simplification: each candidate removes one source of
    // complexity; `shrink` adopts any candidate that still fails.
    let candidates = |cur: &Scenario| -> Vec<Scenario> {
        let mut out = Vec::new();
        let mut push = |f: &dyn Fn(&mut Scenario)| {
            let mut t = cur.clone();
            f(&mut t);
            if t != *cur {
                out.push(t);
            }
        };
        push(&|t| t.loss_ppm = 0);
        push(&|t| t.jitter_us = 0);
        push(&|t| t.cross_mbps = 0);
        push(&|t| t.queue = None);
        push(&|t| t.ack_per_segs = None);
        push(&|t| t.media = MediaProfile::Ethernet);
        push(&|t| t.pacing_off = false);
        push(&|t| t.qdisc = Qdisc::Fifo);
        out
    };
    shrink(s, candidates, |t| still_fails(t, &names), 24)
}

/// One failure found by [`fuzz`], with its shrunk repro.
pub struct FailureReport {
    /// Index of the scenario in the fuzz stream.
    pub index: u64,
    /// The scenario as drawn.
    pub scenario: Scenario,
    /// Its shrunk equivalent (fails at least one of the same oracles).
    pub shrunk: Scenario,
    /// The violations the original scenario produced.
    pub violations: Vec<Violation>,
    /// Where the shrunk run's trace was written, if a dir was given.
    pub trace_path: Option<std::path::PathBuf>,
}

/// Outcome of one fuzz batch.
pub struct FuzzOutcome {
    /// Scenarios executed.
    pub scenarios: u64,
    /// Failures, in scenario-index order (deterministic for any `jobs`).
    pub failures: Vec<FailureReport>,
}

/// One fuzz unit: index `i` of a batch rooted at `root_seed`. The cell's
/// RNG is engine-split from its key, so the drawn scenario depends only on
/// `(root_seed, i)` — never on jobs or scheduling.
struct FuzzCell {
    root_seed: u64,
    index: u64,
}

impl SweepCell for FuzzCell {
    type Output = (Scenario, Vec<Violation>);

    fn label(&self) -> String {
        format!("simcheck[{}]", self.index)
    }

    fn key_bytes(&self) -> Vec<u8> {
        format!("simcheck:{}:{}", self.root_seed, self.index).into_bytes()
    }

    fn run(&self, mut rng: SimRng) -> Self::Output {
        let s = Scenario::draw(&mut rng);
        let violations = check_scenario(&s);
        (s, violations)
    }

    /// Codec for the *campaign checkpoint* (never the cross-run cache —
    /// see [`Self::cacheable`]): the scenario's canonical spec string plus
    /// each violation as (oracle, detail), all length-prefixed.
    fn encode(output: &Self::Output) -> Option<Vec<u8>> {
        let (scenario, violations) = output;
        let mut buf = Vec::new();
        let put = |buf: &mut Vec<u8>, bytes: &[u8]| {
            buf.extend_from_slice(&(u32::try_from(bytes.len()).ok()?).to_le_bytes());
            buf.extend_from_slice(bytes);
            Some(())
        };
        put(&mut buf, scenario.spec_string().as_bytes())?;
        put(
            &mut buf,
            &(u32::try_from(violations.len()).ok()?).to_le_bytes(),
        )?;
        for v in violations {
            put(&mut buf, v.oracle.as_bytes())?;
            put(&mut buf, v.detail.as_bytes())?;
        }
        Some(buf)
    }

    fn decode(bytes: &[u8]) -> Option<Self::Output> {
        let mut rest = bytes;
        let mut next = || -> Option<&[u8]> {
            let len = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
            let field = rest.get(4..4 + len)?;
            rest = &rest[4 + len..];
            Some(field)
        };
        let scenario = Scenario::parse(std::str::from_utf8(next()?).ok()?).ok()?;
        let count = u32::from_le_bytes(next()?.try_into().ok()?) as usize;
        let known = oracles();
        let mut violations = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let name = std::str::from_utf8(next()?).ok()?;
            // Oracle names are `&'static str`: map back through the
            // current oracle library; an unknown name (renamed oracle
            // since the checkpoint was written) rejects the record and
            // the engine recomputes.
            let oracle = known.iter().find(|o| o.name == name)?.name;
            let detail = std::str::from_utf8(next()?).ok()?.to_string();
            violations.push(Violation { oracle, detail });
        }
        if !rest.is_empty() {
            return None;
        }
        Some((scenario, violations))
    }

    /// Never cross-run cached: oracle results must reflect the *current*
    /// build (mutant state is process-global and not part of the key).
    fn cacheable(&self) -> bool {
        false
    }

    /// But campaign checkpoints are fine: a resume runs the same binary
    /// on the same batch, so recorded verdicts stay valid.
    fn resumable(&self) -> bool {
        true
    }
}

/// Knobs for one [`fuzz`] campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzOptions {
    /// Random scenarios to draw and check.
    pub budget: u64,
    /// Root seed of the scenario stream.
    pub seed: u64,
    /// Worker threads (0 is treated as 1); any value is bit-identical.
    pub jobs: usize,
    /// Where shrunk failures' flight-recorder traces go (`None` skips
    /// trace capture).
    pub failure_dir: Option<std::path::PathBuf>,
    /// Per-scenario progress lines on stderr.
    pub progress: bool,
    /// Campaign checkpoint: verdicts recorded here resume an interrupted
    /// batch (same binary, same seed/budget) without recomputation.
    pub checkpoint: Option<std::path::PathBuf>,
    /// Bound on buffered-but-unreleased scenario verdicts (0 = auto).
    pub max_inflight: usize,
    /// Deterministic test hook: interrupt after this many released cells.
    pub cancel_after: Option<u64>,
}

/// Run `budget` scenarios drawn from `seed` across `jobs` workers.
///
/// Output is bit-identical for any `jobs` value (the sweep engine's
/// determinism contract). Failing scenarios are shrunk **as their
/// verdicts stream out** of the engine — the batch never materializes in
/// memory — and, when `failure_dir` is given, each shrunk repro is
/// re-executed with the flight recorder on and its trace saved as JSONL.
///
/// Errors: [`sim_core::Error::Interrupted`] on Ctrl-C / cancellation
/// (the checkpoint, if configured, is already finalized), I/O failures
/// while writing traces or the checkpoint.
pub fn fuzz(options: &FuzzOptions) -> Result<FuzzOutcome, sim_core::Error> {
    let cells: Vec<FuzzCell> = (0..options.budget)
        .map(|index| FuzzCell {
            root_seed: options.seed,
            index,
        })
        .collect();
    let opts = SweepOptions {
        jobs: options.jobs.max(1),
        cache_dir: None,
        root_seed: options.seed,
        progress: options.progress,
        checkpoint: options.checkpoint.clone(),
        max_inflight: options.max_inflight,
        cancel: None,
        cancel_after: options.cancel_after,
    };

    let mut failures: Vec<FailureReport> = Vec::new();
    let mut io_err: Option<sim_core::Error> = None;
    let summary = run_sweep_streaming(&cells, &opts, |index, (scenario, violations), _rep| {
        if violations.is_empty() || io_err.is_some() {
            return;
        }
        let shrunk = shrink_scenario(&scenario, &violations);
        let trace_path = match &options.failure_dir {
            Some(dir) => {
                let write = || -> std::io::Result<std::path::PathBuf> {
                    std::fs::create_dir_all(dir)?;
                    let key = sim_core::sweep::fnv64(shrunk.spec_string().as_bytes());
                    let path = dir.join(format!("simcheck-{key:016x}.jsonl"));
                    let (_res, log) = StackSim::new(shrunk.to_config()).run_traced();
                    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
                    sim_core::trace::write_jsonl(&log, &mut file)?;
                    Ok(path)
                };
                match write() {
                    Ok(path) => Some(path),
                    Err(e) => {
                        io_err = Some(sim_core::Error::io(
                            format!("write failure trace under {}", dir.display()),
                            e,
                        ));
                        None
                    }
                }
            }
            None => None,
        };
        failures.push(FailureReport {
            index: index as u64,
            scenario,
            shrunk,
            violations,
            trace_path,
        });
    })?;
    if let Some(e) = io_err {
        return Err(e);
    }
    Ok(FuzzOutcome {
        scenarios: summary.completed as u64,
        failures,
    })
}

/// Result of probing one intentional mutation.
pub struct MutantReport {
    /// The mutation probed.
    pub mutant: Mutant,
    /// Scenarios executed before it was caught (or the whole budget).
    pub tried: u64,
    /// The catching scenario, shrunk, with the oracles that flagged it;
    /// `None` means the mutant escaped the budget.
    pub caught: Option<(Scenario, Vec<Violation>)>,
}

/// Bias a drawn scenario toward the terrain where `mutant`'s bug class
/// can express at all (a retransmit-accounting bug needs retransmissions;
/// a pacing bug needs pacing). The oracles themselves are untouched —
/// this only focuses the compute budget.
fn bias_for(mutant: Mutant, mut s: Scenario) -> Scenario {
    match mutant {
        Mutant::SkipTimerFireCharge | Mutant::DropPacingArm => {
            if !matches!(s.cc, CcKind::Bbr | CcKind::Bbr2) {
                s.cc = CcKind::Bbr;
            }
            s.pacing_off = false;
            if mutant == Mutant::DropPacingArm {
                // conn-progress eligibility: clean path, real window,
                // few-flows regime.
                s.loss_ppm = 0;
                s.cross_mbps = 0;
                s.queue = None;
                s.conns = s.conns.min(20);
                s.dur_ms = s.dur_ms.max(700);
                s.warmup_ms = s.warmup_ms.min(250);
            }
        }
        Mutant::SkipRetxCount => {
            // Guarantee retransmissions: shallow buffer or real loss.
            if s.queue.is_none() && s.loss_ppm < 1_000 {
                s.loss_ppm = 5_000;
            }
        }
        Mutant::SackClaimExtra => {}
        Mutant::FleetSharedBypass => {
            // The bypass only exists where a shared bottleneck does; the
            // admission identity then catches a single teleported packet.
            if s.fleet < 2 {
                s.fleet = 4;
            }
            if s.fshared == 0 {
                s.fshared = 50;
            }
            s.conns = s.fleet;
        }
        Mutant::FleetJainMiscount => {
            // The n/(n-1) drift needs a population to miscount.
            if s.fleet < 2 {
                s.fleet = 4;
            }
            s.fshared = 0; // keep runs cheap: compute() runs regardless
            s.conns = s.fleet;
        }
        Mutant::AqmDropMiscount => {
            // The tally can only drift where AQM drops happen: a
            // queue-filling controller against a CoDel'd uplink with
            // enough flows and time for the standing queue to cross the
            // target and the control law to start shedding.
            s.fleet = 0;
            if s.qdisc == Qdisc::Fifo {
                s.qdisc = Qdisc::Codel;
            }
            if s.cc == CcKind::Reno {
                s.cc = CcKind::Cubic;
            }
            s.queue = None;
            s.conns = s.conns.clamp(4, 32);
            s.dur_ms = s.dur_ms.max(800);
            s.warmup_ms = s.warmup_ms.min(250);
        }
        Mutant::Bbr3PacingDisarm => {
            // The disarm only bites BBRv3 flows with pacing on and enough
            // traffic for the paced-cc-arms-timers threshold.
            s.cc = CcKind::Bbr3;
            s.fleet = 0;
            s.pacing_off = false;
            s.conns = s.conns.clamp(1, 20);
            s.dur_ms = s.dur_ms.max(700);
            s.warmup_ms = s.warmup_ms.min(250);
        }
    }
    s
}

/// Activate each intentional mutation in turn and fuzz (serially — mutant
/// state is process-global) until an oracle catches it or `budget`
/// scenarios pass. Requires a build with the `simcheck-mutants` feature.
pub fn mutant_check(budget: u64, seed: u64) -> Result<Vec<MutantReport>, String> {
    if !mutants::enabled() {
        return Err(
            "this build was compiled without the `simcheck-mutants` feature; \
             re-run with `--features simcheck-mutants`"
                .into(),
        );
    }
    let mut reports = Vec::new();
    for mutant in mutants::ALL {
        let mut rng = SimRng::new(seed).split(mutant as u64);
        let mut caught = None;
        let mut tried = 0;
        while tried < budget {
            let s = bias_for(mutant, Scenario::draw(&mut rng));
            tried += 1;
            // Re-activating resets the mutant's internal trigger state so
            // each scenario (and each shrink probe below) is reproducible.
            mutants::set_active(Some(mutant));
            let violations = check_scenario(&s);
            if !violations.is_empty() {
                mutants::set_active(Some(mutant));
                let shrunk = shrink_scenario(&s, &violations);
                mutants::set_active(Some(mutant));
                let shrunk_violations = check_scenario(&shrunk);
                let final_violations = if shrunk_violations.is_empty() {
                    violations
                } else {
                    shrunk_violations
                };
                caught = Some((shrunk, final_violations));
                break;
            }
        }
        mutants::set_active(None);
        reports.push(MutantReport {
            mutant,
            tried,
            caught,
        });
    }
    mutants::set_active(None);
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_exactly() {
        let mut rng = SimRng::new(7);
        for _ in 0..200 {
            let s = Scenario::draw(&mut rng);
            let spec = s.spec_string();
            let back = Scenario::parse(&spec).expect("round trip parses");
            assert_eq!(s, back, "spec {spec}");
        }
    }

    #[test]
    fn parse_rejects_garbage_without_panicking() {
        assert!(Scenario::parse("cc=quic").is_err());
        assert!(Scenario::parse("nonsense").is_err());
        assert!(Scenario::parse("volume=11").is_err());
        assert!(Scenario::parse("dur=500,warmup=500").is_err());
        assert!(Scenario::parse("conns=abc").is_err());
        // Partial specs fill defaults.
        let s = Scenario::parse("cc=cubic,conns=3").expect("partial spec ok");
        assert_eq!(s.cc, CcKind::Cubic);
        assert_eq!(s.conns, 3);
    }

    #[test]
    fn draw_is_deterministic_and_in_range() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let mut small = 0usize;
        let mut large = 0usize;
        for _ in 0..50 {
            let (sa, sb) = (Scenario::draw(&mut a), Scenario::draw(&mut b));
            assert_eq!(sa, sb);
            assert!((1..=1024).contains(&sa.conns));
            small += usize::from(sa.conns <= 20);
            large += usize::from(sa.conns > 128);
            assert!(sa.warmup_ms < sa.dur_ms);
            assert!(sa.loss_ppm <= 10_000);
        }
        // The log bias must keep both regimes in play: the paper's small
        // sweeps and the fleet-scale counts that stress the flow arena.
        assert!(small >= 10, "only {small}/50 draws in the paper regime");
        assert!(large >= 5, "only {large}/50 draws at fleet scale");
    }

    #[test]
    fn clean_scenario_passes_all_oracles() {
        let s =
            Scenario::parse("cc=bbr,cpu=high,media=eth,conns=2,dur=500,warmup=200,seed=3").unwrap();
        let violations = check_scenario(&s);
        assert!(
            violations.is_empty(),
            "clean scenario violated: {violations:?}"
        );
    }
}
