//! Ctrl-C → cooperative sweep cancellation for the bench binaries.
//!
//! The handler only flips `sim_core::sweep`'s process-global cancel flag
//! (an atomic store — async-signal-safe); the sweep engine notices it at
//! the next cell boundary, drains the in-flight window, finalizes any
//! checkpoint file, and returns [`sim_core::Error::Interrupted`], which
//! the binaries map to exit code 130 (128 + SIGINT) plus a resume hint.
//!
//! Raw `signal(2)` FFI keeps this dependency-free; the second Ctrl-C is
//! left at the default disposition so a wedged run can still be killed.

/// `SIGINT` on every platform this repo targets.
const SIGINT: i32 = 2;

/// `SIG_DFL`: restore the default disposition inside the handler so a
/// second Ctrl-C terminates the process immediately.
const SIG_DFL: usize = 0;

unsafe extern "C" {
    /// POSIX `signal(2)` from the platform libc (no crate dependency).
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_sigint(_signum: i32) {
    // Async-signal-safe: one atomic store, one signal() syscall.
    sim_core::sweep::request_global_cancel();
    unsafe {
        signal(SIGINT, SIG_DFL);
    }
}

/// Install the Ctrl-C handler. Call once at binary start; the first
/// SIGINT requests a cooperative drain, the second kills the process.
pub fn install_sigint_handler() {
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}
