//! Regenerate the paper's figures and tables.
//!
//! ```bash
//! repro --exp all                 # every experiment, full parameters
//! repro --exp fig2 --quick       # one experiment, fast parameters
//! repro --exp all --jobs 8       # sweep cells across 8 workers
//! repro --exp all --no-cache     # force recomputation of every cell
//! repro --exp all --markdown out.md --json out.json
//! ```
//!
//! Experiments execute on the `sim_core::sweep` engine: `--jobs N` fans
//! the (config, seed) cells of each experiment across N workers with
//! bit-identical output to `--jobs 1`, and finished cells are cached
//! content-addressed under `target/sweep-cache` (disable with
//! `--no-cache`, relocate with `--cache-dir`). `--progress` prints a
//! per-cell completion line with its wall time and cache status, plus a
//! final one-line cache/pool-health summary.
//!
//! Long runs are interruptible and resumable: `--checkpoint PATH` records
//! every finished cell to PATH (atomic tmp+rename envelope, like the run
//! cache), Ctrl-C drains the in-flight cells, finalizes the checkpoint,
//! and exits 130; rerunning with `--checkpoint PATH --resume` replays the
//! recorded cells and produces a byte-identical scorecard. Without
//! `--resume` an existing checkpoint is discarded and the run starts
//! fresh. `--max-inflight N` bounds buffered-but-unreleased cells (memory
//! stays flat in grid size); `--cancel-after N` is a deterministic
//! test hook that interrupts after N released cells.
//!
//! `--trace PATH` switches to flight-recorder mode: instead of running
//! experiments, it records the canonical Low-End / 20-connection BBR run
//! with `sim-trace` enabled and writes the trace to PATH —
//! `--trace-format jsonl` (default, for the `trace` inspector) or
//! `chrome` (load in Perfetto / `chrome://tracing`):
//!
//! ```bash
//! cargo run --release -p mobile-bbr-bench --bin repro -- \
//!     --trace trace.json --trace-format chrome
//! ```
//!
//! `--report DIR` switches to report mode: it runs the canonical
//! telemetry run plus the Fig. 2 / Fig. 7 grids and writes flight data
//! (`flight.jsonl`, `flows.csv`, `queue.csv`) and one self-contained
//! `report.html` (inline SVG, no JavaScript, no network) under DIR.
//! Output is byte-identical at any `--jobs N`:
//!
//! ```bash
//! cargo run --release -p mobile-bbr-bench --bin repro -- \
//!     --report out/report --quick --jobs 4
//! ```

use experiments::{Experiment, ExperimentId, Params};

struct Args {
    exps: Vec<ExperimentId>,
    params: Params,
    resume: bool,
    markdown: Option<String>,
    json: Option<String>,
    csv: Option<String>,
    trace: Option<String>,
    trace_chrome: bool,
    report: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut exps = Vec::new();
    let mut params = Params::full();
    let mut markdown = None;
    let mut json = None;
    let mut csv = None;
    let mut jobs: Option<usize> = None;
    let mut no_cache = false;
    let mut cache_dir: Option<String> = None;
    let mut progress = false;
    let mut trace: Option<String> = None;
    let mut trace_chrome = false;
    let mut report: Option<String> = None;
    let mut checkpoint: Option<String> = None;
    let mut resume = false;
    let mut max_inflight: usize = 0;
    let mut cancel_after: Option<u64> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--exp" => {
                let name = argv.get(i + 1).ok_or("--exp needs a value")?;
                if name == "all" {
                    exps.extend(ExperimentId::ALL);
                } else {
                    exps.push(ExperimentId::from_cli_name(name).ok_or_else(|| {
                        format!(
                            "unknown experiment '{name}'; known: {}",
                            ExperimentId::ALL.map(|e| e.cli_name()).join(", ")
                        )
                    })?);
                }
                i += 2;
            }
            "--quick" => {
                params = Params::quick();
                i += 1;
            }
            "--smoke" => {
                params = Params::smoke();
                i += 1;
            }
            "--seeds" => {
                params.seeds = argv
                    .get(i + 1)
                    .ok_or("--seeds needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?;
                i += 2;
            }
            "--markdown" => {
                markdown = Some(argv.get(i + 1).ok_or("--markdown needs a path")?.clone());
                i += 2;
            }
            "--json" => {
                json = Some(argv.get(i + 1).ok_or("--json needs a path")?.clone());
                i += 2;
            }
            "--csv" => {
                csv = Some(argv.get(i + 1).ok_or("--csv needs a path")?.clone());
                i += 2;
            }
            "--jobs" => {
                let n: usize = argv
                    .get(i + 1)
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                jobs = Some(n);
                i += 2;
            }
            "--no-cache" => {
                no_cache = true;
                i += 1;
            }
            "--cache-dir" => {
                cache_dir = Some(argv.get(i + 1).ok_or("--cache-dir needs a path")?.clone());
                i += 2;
            }
            "--progress" => {
                progress = true;
                i += 1;
            }
            "--checkpoint" => {
                checkpoint = Some(argv.get(i + 1).ok_or("--checkpoint needs a path")?.clone());
                i += 2;
            }
            "--resume" => {
                resume = true;
                i += 1;
            }
            "--max-inflight" => {
                max_inflight = argv
                    .get(i + 1)
                    .ok_or("--max-inflight needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-inflight: {e}"))?;
                i += 2;
            }
            "--cancel-after" => {
                cancel_after = Some(
                    argv.get(i + 1)
                        .ok_or("--cancel-after needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --cancel-after: {e}"))?,
                );
                i += 2;
            }
            "--trace" => {
                trace = Some(argv.get(i + 1).ok_or("--trace needs a path")?.clone());
                i += 2;
            }
            "--report" => {
                report = Some(argv.get(i + 1).ok_or("--report needs a directory")?.clone());
                i += 2;
            }
            "--trace-format" => {
                let fmt = argv.get(i + 1).ok_or("--trace-format needs a value")?;
                trace_chrome = match fmt.as_str() {
                    "jsonl" => false,
                    "chrome" => true,
                    other => {
                        return Err(format!(
                            "unknown trace format '{other}' (expected jsonl or chrome)"
                        ))
                    }
                };
                i += 2;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if exps.is_empty() {
        exps.extend(ExperimentId::ALL);
    }
    // Sweep-engine knobs land after preset selection so they override it.
    if let Some(n) = jobs {
        params.threads = n;
    }
    if let Some(dir) = cache_dir {
        params.cache_dir = Some(dir.into());
    }
    if no_cache {
        params.cache_dir = None;
    }
    params.progress = progress;
    if resume && checkpoint.is_none() {
        return Err("--resume requires --checkpoint PATH".into());
    }
    params.checkpoint = checkpoint.map(Into::into);
    params.max_inflight = max_inflight;
    params.cancel_after = cancel_after;
    Ok(Args {
        exps,
        params,
        resume,
        markdown,
        json,
        csv,
        trace,
        trace_chrome,
        report,
    })
}

/// Report mode: flight data + self-contained HTML under `dir`.
fn write_report(params: &Params, dir: &str) -> Result<(), sim_core::Error> {
    let files = experiments::report::generate(params, std::path::Path::new(dir))?;
    for path in files.all() {
        println!("wrote {}", path.display());
    }
    println!(
        "open {} in a browser (fully offline: inline SVG, no scripts)",
        files.html.display()
    );
    Ok(())
}

/// Flight-recorder mode: record the paper's worst case — Low-End, 20 BBR
/// connections — with tracing on and write the trace to `path`.
fn record_trace(params: &Params, path: &str, chrome: bool) -> Result<(), String> {
    use congestion::CcKind;
    use cpu_model::CpuConfig;

    let config = params.pixel4(CpuConfig::LowEnd, CcKind::Bbr, 20);
    let (res, log) = tcp_sim::StackSim::new(config).run_traced();
    let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    if chrome {
        sim_core::trace::write_chrome(&log, &mut w)
    } else {
        sim_core::trace::write_jsonl(&log, &mut w)
    }
    .map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "recorded BBR Low-End 20-conn run: {:.1} Mbps, {} events ({} dropped), {} counter series",
        res.goodput_mbps(),
        log.events.len(),
        log.dropped,
        log.counters.len()
    );
    println!(
        "wrote {path} ({})",
        if chrome {
            "Chrome trace-event JSON — load in Perfetto or chrome://tracing"
        } else {
            "sim-trace/v1 JSONL — inspect with the `trace` binary"
        }
    );
    Ok(())
}

fn main() {
    mobile_bbr_bench::cancel::install_sigint_handler();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            let e = sim_core::Error::Cli(e);
            eprintln!("error: {e}");
            eprintln!("usage: repro [--exp <name|all>]... [--quick|--smoke] [--seeds N] [--jobs N] [--no-cache] [--cache-dir PATH] [--progress] [--checkpoint PATH [--resume]] [--max-inflight N] [--cancel-after N] [--markdown PATH] [--json PATH] [--csv PATH] [--trace PATH [--trace-format jsonl|chrome]] [--report DIR]");
            std::process::exit(e.exit_code());
        }
    };

    if let Some(path) = &args.trace {
        if let Err(e) = record_trace(&args.params, path, args.trace_chrome) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }

    if let Some(dir) = &args.report {
        if let Err(e) = write_report(&args.params, dir) {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
        return;
    }

    // A fresh (non-`--resume`) run must not replay a stale checkpoint.
    if let Some(path) = &args.params.checkpoint {
        if !args.resume && path.exists() {
            if let Err(e) = std::fs::remove_file(path) {
                let e =
                    sim_core::Error::io(format!("discard stale checkpoint {}", path.display()), e);
                eprintln!("error: {e}");
                std::process::exit(e.exit_code());
            }
        }
    }

    match run_experiments(&args) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, sim_core::Error::Interrupted { .. }) {
                if let Some(path) = &args.params.checkpoint {
                    eprintln!(
                        "checkpoint finalized at {}; rerun with `--checkpoint {} --resume` to continue where this run stopped",
                        path.display(),
                        path.display()
                    );
                } else {
                    eprintln!("hint: rerun with `--checkpoint PATH` to make long runs resumable");
                }
            }
            std::process::exit(e.exit_code());
        }
    }
}

/// Run the selected experiments and emit reports. Returns whether every
/// shape check passed; all failures (cancellation, checkpoint/output
/// I/O) flow to `main`'s single exit-code edge as `sim_core::Error`.
fn run_experiments(args: &Args) -> Result<bool, sim_core::Error> {
    let mut done: Vec<Experiment> = Vec::new();
    let t0 = std::time::Instant::now();
    for id in &args.exps {
        let start = std::time::Instant::now();
        let exp = id.run(&args.params)?;
        println!("{}", exp.render_text());
        println!("  ({} in {:.1?})\n", id.cli_name(), start.elapsed());
        done.push(exp);
    }

    let card = experiments::Scorecard::tally(&done);
    println!("{} ({:.1?} total)", card.banner(), t0.elapsed());
    if args.params.progress {
        eprintln!("{}", sim_core::sweep::totals().summary_line());
    }

    if let Some(path) = &args.markdown {
        let md = experiments::summary::render_markdown(&done);
        std::fs::write(path, &md).map_err(|e| sim_core::Error::io(format!("write {path}"), e))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.csv {
        // Flatten every experiment's table into one tidy CSV: one row per
        // table row, prefixed by the experiment id and its column name.
        let mut out = String::from("experiment,row,column,value\n");
        for exp in &done {
            for ri in 0..exp.table.rows.len() {
                for (ci, header) in exp.table.headers.iter().enumerate() {
                    if let Some(v) = exp.table.num_at(ri, ci) {
                        out.push_str(&format!(
                            "{},{},{},{v}\n",
                            exp.id,
                            ri,
                            header.replace(',', ";")
                        ));
                    }
                }
            }
        }
        std::fs::write(path, out).map_err(|e| sim_core::Error::io(format!("write {path}"), e))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.json {
        std::fs::write(path, mobile_bbr_bench::to_json(&done))
            .map_err(|e| sim_core::Error::io(format!("write {path}"), e))?;
        println!("wrote {path}");
    }
    Ok(card.all_pass())
}
