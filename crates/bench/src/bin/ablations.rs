//! Ablation studies on the reproduction's design choices (DESIGN.md §6).
//!
//! 1. **Timer-cost sweep** — the paper's §7.1.4 asks whether fine-grained
//!    *hardware* pacing would obviate the stride. We scale the hrtimer
//!    arm/fire costs from 0× (free hardware pacing) to 4× and measure how
//!    much goodput a 10× stride still buys on the Low-End configuration.
//! 2. **Socket-buffer-cap sweep** — Table 2's throughput plateau is set by
//!    the per-send buffer cap; sweeping it moves the optimal stride.
//! 3. **Governor comparison** — the Default configuration's character
//!    comes from schedutil's reaction to bursty paced load; compare the
//!    dynamic governor against pinning the same silicon at its extremes.

use congestion::CcKind;
use cpu_model::{CostModel, CpuConfig};
use experiments::params::Params;
use experiments::table::{Cell, ResultTable};
use iperf::{RunReport, RunSpec};
use tcp_sim::PacingConfig;

fn params() -> Params {
    let mut p = Params::full();
    p.seeds = 3;
    p
}

/// Run one spec on the sweep engine with this binary's parameters
/// (worker count, run cache, progress) — see `sim_core::sweep`.
/// Errors (cancellation, checkpoint I/O) bubble to `main`'s exit edge.
fn run(p: &Params, spec: RunSpec) -> Result<RunReport, sim_core::Error> {
    Ok(
        iperf::run_specs_sweep(std::slice::from_ref(&spec), &p.sweep_options())?
            .pop()
            .expect("one spec in, one report out"),
    )
}

fn timer_cost_sweep(p: &Params) -> Result<(), sim_core::Error> {
    println!("== ABLATION 1: pacing-timer cost vs the value of striding ==");
    println!("   (paper §7.1.4: would hardware pacing make the stride unnecessary?)\n");
    let mut table = ResultTable::new(vec![
        "Timer cost factor",
        "BBR 1x (Mbps)",
        "BBR 10x (Mbps)",
        "stride gain",
    ]);
    for factor in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let mut base = p.pixel4(CpuConfig::LowEnd, CcKind::Bbr, 20);
        base.cost = CostModel::mobile_default().with_timer_cost_factor(factor);
        let mut strided = base.clone();
        strided.pacing = PacingConfig::with_stride(10);
        let r1 = run(p, RunSpec::new(format!("1x @{factor}"), base, p.seeds))?;
        let r10 = run(p, RunSpec::new(format!("10x @{factor}"), strided, p.seeds))?;
        table.push_row(vec![
            format!("{factor:.1}x").into(),
            r1.goodput_mbps.into(),
            r10.goodput_mbps.into(),
            Cell::Prec(r10.goodput_mbps / r1.goodput_mbps, 2),
        ]);
    }
    println!("{}", table.render_text());
    Ok(())
}

fn buffer_cap_sweep(p: &Params) -> Result<(), sim_core::Error> {
    println!("== ABLATION 2: socket-buffer cap vs strided throughput ==");
    println!("   (Table 2's plateau: the cap bounds one pacing period's data)\n");
    let mut table = ResultTable::new(vec![
        "Cap (KB)",
        "1x (Mbps)",
        "5x (Mbps)",
        "10x (Mbps)",
        "20x (Mbps)",
    ]);
    for cap_kb in [8u64, 15, 30, 64] {
        let mut row: Vec<Cell> = vec![format!("{cap_kb}").into()];
        for stride in [1u64, 5, 10, 20] {
            let mut cfg = p.pixel4(CpuConfig::LowEnd, CcKind::Bbr, 20);
            cfg.pacing = PacingConfig {
                stride,
                skb_cap_bytes: cap_kb * 1000,
                ..PacingConfig::default()
            };
            let rep = run(
                p,
                RunSpec::new(format!("cap {cap_kb}KB stride {stride}"), cfg, p.seeds),
            )?;
            row.push(rep.goodput_mbps.into());
        }
        table.push_row(row);
    }
    println!("{}", table.render_text());
    Ok(())
}

fn governor_comparison(p: &Params) -> Result<(), sim_core::Error> {
    println!("== ABLATION 3: dynamic governor vs pinned frequencies ==");
    println!("   (why the Default configuration sits well below High-End)\n");
    let mut table = ResultTable::new(vec![
        "CPU policy",
        "Cubic (Mbps)",
        "BBR (Mbps)",
        "BBR/Cubic",
        "BBR mean freq (MHz)",
    ]);
    for cpu in CpuConfig::ALL {
        let cubic = run(
            p,
            RunSpec::new(
                format!("cubic {cpu}"),
                p.pixel4(cpu, CcKind::Cubic, 20),
                p.seeds,
            ),
        )?;
        let bbr_spec = RunSpec::new(
            format!("bbr {cpu}"),
            p.pixel4(cpu, CcKind::Bbr, 20),
            p.seeds,
        );
        let bbr = run(p, bbr_spec)?;
        let freq =
            bbr.seeds.iter().map(|s| s.mean_freq_hz).sum::<f64>() / bbr.seeds.len() as f64 / 1e6;
        table.push_row(vec![
            cpu.to_string().into(),
            cubic.goodput_mbps.into(),
            bbr.goodput_mbps.into(),
            Cell::Prec(bbr.goodput_mbps / cubic.goodput_mbps, 2),
            Cell::Prec(freq, 0),
        ]);
    }
    println!("{}", table.render_text());
    Ok(())
}

fn aqm_comparison(p: &Params) -> Result<(), sim_core::Error> {
    use congestion::master::MasterConfig;
    use netsim::media::MediaProfile;
    use netsim::Qdisc;

    println!("== ABLATION 4: fq_codel-style AQM vs the droptail story ==");
    println!("   (on CPU-limited configs the RTT penalty is device-side and no");
    println!("    router AQM can touch it; on High-End the router queue is the");
    println!("    bloat, and CoDel clips it — delay traded for loss)\n");
    let mut table = ResultTable::new(vec![
        "Setup",
        "Goodput (Mbps)",
        "Mean RTT (ms)",
        "Retransmits",
    ]);
    for (label, unpaced, codel) in [
        ("BBR paced, droptail", false, false),
        ("BBR unpaced, droptail", true, false),
        ("BBR paced, CoDel", false, true),
        ("BBR unpaced, CoDel", true, true),
    ] {
        let mut cfg = p.pixel4(CpuConfig::HighEnd, CcKind::Bbr, 20);
        if unpaced {
            cfg.master = MasterConfig::pacing_off();
        }
        if codel {
            let mut path = MediaProfile::Ethernet.path_config();
            path.forward = path.forward.with_qdisc(Qdisc::Codel);
            cfg.path = path;
        }
        let rep = run(p, RunSpec::new(label, cfg, p.seeds))?;
        table.push_row(vec![
            label.into(),
            rep.goodput_mbps.into(),
            Cell::Prec(rep.mean_rtt_ms, 2),
            Cell::Prec(rep.mean_retx, 0),
        ]);
    }
    println!("{}", table.render_text());
    Ok(())
}

fn competition(p: &Params) -> Result<(), sim_core::Error> {
    use netsim::crosstraffic::CrossTrafficConfig;
    use sim_core::units::Bandwidth;
    use tcp_sim::PacingConfig;

    println!("== ABLATION 5: pacing stride under competing cross-traffic ==");
    println!("   (§7.1.3: does the stride's coarser bursting hurt when the");
    println!("    bottleneck is shared? 400 Mbps Poisson load on the 1 Gbps");
    println!("    link; Mid-End so both CPU and link pressure are in play)\n");
    let mut table = ResultTable::new(vec![
        "Setup",
        "Goodput (Mbps)",
        "Mean RTT (ms)",
        "Retransmits",
        "Jain",
    ]);
    for (label, stride) in [("stride 1x", 1u64), ("stride 10x", 10)] {
        for loaded in [false, true] {
            let mut cfg = p.pixel4(CpuConfig::MidEnd, CcKind::Bbr, 20);
            cfg.pacing = PacingConfig::with_stride(stride);
            if loaded {
                cfg.cross_traffic = Some(CrossTrafficConfig::at(Bandwidth::from_mbps(400)));
            }
            let rep = run(
                p,
                RunSpec::new(
                    format!("{label}{}", if loaded { " + 400 Mbps cross" } else { "" }),
                    cfg,
                    p.seeds,
                ),
            )?;
            table.push_row(vec![
                rep.label.clone().into(),
                rep.goodput_mbps.into(),
                Cell::Prec(rep.mean_rtt_ms, 2),
                Cell::Prec(rep.mean_retx, 0),
                Cell::Prec(rep.fairness, 2),
            ]);
        }
    }
    println!("{}", table.render_text());
    Ok(())
}

fn ack_frequency(p: &Params) -> Result<(), sim_core::Error> {
    println!("== ABLATION 6: server ACK frequency (GRO vs classic per-2-MSS) ==");
    println!("   (the phone pays ~9k cycles per ACK; a non-coalescing server");
    println!("    multiplies that load and squeezes both algorithms)\n");
    let mut table = ResultTable::new(vec!["Setup", "Cubic (Mbps)", "BBR (Mbps)", "BBR/Cubic"]);
    for (label, per_segs) in [
        ("GRO server (1 ACK/buffer)", None),
        ("classic server (1 ACK/2 MSS)", Some(2u64)),
    ] {
        let mut row: Vec<Cell> = vec![label.into()];
        let mut rates = Vec::new();
        for cc in [CcKind::Cubic, CcKind::Bbr] {
            let mut cfg = p.pixel4(CpuConfig::LowEnd, cc, 20);
            cfg.ack_per_segs = per_segs;
            let rep = run(p, RunSpec::new(format!("{label} {cc}"), cfg, p.seeds))?;
            rates.push(rep.goodput_mbps);
            row.push(rep.goodput_mbps.into());
        }
        row.push(Cell::Prec(rates[1] / rates[0], 2));
        table.push_row(row);
    }
    println!("{}", table.render_text());
    Ok(())
}

fn main() {
    mobile_bbr_bench::cancel::install_sigint_handler();
    let mut p = params();
    let mut which = "all".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--jobs" => {
                p.threads = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("error: --jobs needs a positive integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--no-cache" => {
                p.cache_dir = None;
                i += 1;
            }
            "--cache-dir" => {
                p.cache_dir = Some(
                    argv.get(i + 1)
                        .unwrap_or_else(|| {
                            eprintln!("error: --cache-dir needs a path");
                            std::process::exit(2);
                        })
                        .into(),
                );
                i += 2;
            }
            "--progress" => {
                p.progress = true;
                i += 1;
            }
            other if !other.starts_with("--") => {
                const KNOWN: [&str; 7] = [
                    "all",
                    "timer",
                    "cap",
                    "governor",
                    "aqm",
                    "competition",
                    "acks",
                ];
                if !KNOWN.contains(&other) {
                    eprintln!(
                        "error: unknown ablation '{other}'; known: {}",
                        KNOWN.join(", ")
                    );
                    std::process::exit(2);
                }
                which = other.to_string();
                i += 1;
            }
            other => {
                eprintln!("error: unknown flag '{other}'");
                eprintln!("usage: ablations [all|timer|cap|governor|aqm|competition|acks] [--jobs N] [--no-cache] [--cache-dir PATH] [--progress]");
                std::process::exit(2);
            }
        }
    }
    let t0 = std::time::Instant::now();
    if let Err(e) = run_studies(&p, &which) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
    println!("(ablations done in {:.1?})", t0.elapsed());
}

fn run_studies(p: &Params, which: &str) -> Result<(), sim_core::Error> {
    if which == "all" || which == "timer" {
        timer_cost_sweep(p)?;
    }
    if which == "all" || which == "cap" {
        buffer_cap_sweep(p)?;
    }
    if which == "all" || which == "governor" {
        governor_comparison(p)?;
    }
    if which == "all" || which == "aqm" {
        aqm_comparison(p)?;
    }
    if which == "all" || which == "competition" {
        competition(p)?;
    }
    if which == "all" || which == "acks" {
        ack_frequency(p)?;
    }
    Ok(())
}
