//! Deterministic scenario fuzzer for the whole simulator.
//!
//! ```bash
//! simcheck                                  # corpus regression + 200 random scenarios
//! simcheck --budget 500 --seed 1 --jobs 4   # bigger batch, bit-identical to --jobs 1
//! simcheck --scenario 'cc=bbr,conns=3'      # replay one spec through every oracle
//! simcheck --mutant-check --budget 120      # prove each intentional mutation is caught
//! ```
//!
//! Every failure is shrunk to a minimal spec, printed as a one-line repro
//! (`simcheck --scenario '<spec>'`), appended to the checked-in corpus at
//! `tests/simcheck_corpus.txt`, and its flight-recorder trace is written
//! under `--failure-dir` for the `trace` inspector.
//!
//! Long campaigns are interruptible and resumable: `--checkpoint PATH`
//! records every scenario verdict (atomic tmp+rename envelope), Ctrl-C
//! drains in-flight scenarios, finalizes the checkpoint, and exits 130;
//! rerunning with `--checkpoint PATH --resume` replays recorded verdicts
//! and produces byte-identical output. Without `--resume`, an existing
//! checkpoint file is discarded and the campaign starts fresh.
//!
//! Exit codes: 0 all invariants hold; 1 at least one violation (or an
//! escaped mutant); 2 usage error; 130 interrupted (Ctrl-C).

use mobile_bbr_bench::simcheck::{check_scenario, fuzz, mutant_check, FuzzOptions, Scenario};
use sim_core::check::Corpus;
use std::path::PathBuf;

struct Args {
    budget: u64,
    seed: u64,
    jobs: usize,
    corpus: PathBuf,
    failure_dir: PathBuf,
    scenario: Option<String>,
    mutant_check: bool,
    progress: bool,
    no_corpus_append: bool,
    checkpoint: Option<PathBuf>,
    resume: bool,
    max_inflight: usize,
    cancel_after: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        budget: 200,
        seed: 1,
        jobs: 1,
        corpus: PathBuf::from("tests/simcheck_corpus.txt"),
        failure_dir: PathBuf::from("target/simcheck-failures"),
        scenario: None,
        mutant_check: false,
        progress: false,
        no_corpus_append: false,
        checkpoint: None,
        resume: false,
        max_inflight: 0,
        cancel_after: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--budget" => {
                args.budget = argv
                    .get(i + 1)
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --budget: {e}"))?;
                i += 2;
            }
            "--seed" => {
                args.seed = argv
                    .get(i + 1)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
                i += 2;
            }
            "--jobs" => {
                args.jobs = argv
                    .get(i + 1)
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                i += 2;
            }
            "--corpus" => {
                args.corpus = PathBuf::from(argv.get(i + 1).ok_or("--corpus needs a path")?);
                i += 2;
            }
            "--failure-dir" => {
                args.failure_dir =
                    PathBuf::from(argv.get(i + 1).ok_or("--failure-dir needs a path")?);
                i += 2;
            }
            "--scenario" => {
                args.scenario = Some(argv.get(i + 1).ok_or("--scenario needs a spec")?.clone());
                i += 2;
            }
            "--mutant-check" => {
                args.mutant_check = true;
                i += 1;
            }
            "--progress" => {
                args.progress = true;
                i += 1;
            }
            "--no-corpus-append" => {
                args.no_corpus_append = true;
                i += 1;
            }
            "--checkpoint" => {
                args.checkpoint = Some(PathBuf::from(
                    argv.get(i + 1).ok_or("--checkpoint needs a path")?,
                ));
                i += 2;
            }
            "--resume" => {
                args.resume = true;
                i += 1;
            }
            "--max-inflight" => {
                args.max_inflight = argv
                    .get(i + 1)
                    .ok_or("--max-inflight needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-inflight: {e}"))?;
                i += 2;
            }
            "--cancel-after" => {
                args.cancel_after = Some(
                    argv.get(i + 1)
                        .ok_or("--cancel-after needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --cancel-after: {e}"))?,
                );
                i += 2;
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (see --help)")),
        }
    }
    if args.resume && args.checkpoint.is_none() {
        return Err("--resume requires --checkpoint PATH".into());
    }
    Ok(args)
}

fn print_usage() {
    println!(
        "simcheck: deterministic scenario fuzzer with invariant oracles\n\
         \n\
         USAGE: simcheck [OPTIONS]\n\
         \n\
         OPTIONS:\n\
           --budget N           random scenarios to run (default 200)\n\
           --seed N             root seed for the scenario stream (default 1)\n\
           --jobs N             worker threads; output is bit-identical for any N (default 1)\n\
           --corpus PATH        seed corpus to replay first (default tests/simcheck_corpus.txt)\n\
           --failure-dir PATH   where failure traces go (default target/simcheck-failures)\n\
           --scenario SPEC      replay one 'k=v,...' spec instead of fuzzing\n\
           --mutant-check       verify each tcp_sim::mutants mutation is caught\n\
                                (needs a --features simcheck-mutants build)\n\
           --no-corpus-append   report failures without persisting them to the corpus\n\
           --checkpoint PATH    record scenario verdicts for interrupt/resume\n\
           --resume             resume from an existing --checkpoint file\n\
           --max-inflight N     bound buffered-but-unreleased verdicts (0 = auto)\n\
           --cancel-after N     deterministic test hook: interrupt after N cells\n\
           --progress           per-scenario progress on stderr"
    );
}

fn fail(msg: &str) -> ! {
    eprintln!("simcheck: {msg}");
    std::process::exit(2);
}

/// Replay one spec through every oracle; print verdict.
fn run_single(spec: &str) -> i32 {
    let scenario = match Scenario::parse(spec) {
        Ok(s) => s,
        Err(e) => fail(&format!("bad --scenario: {e}")),
    };
    let violations = check_scenario(&scenario);
    if violations.is_empty() {
        println!("PASS {}", scenario.spec_string());
        0
    } else {
        println!("FAIL {}", scenario.spec_string());
        for v in &violations {
            println!("  {v}");
        }
        1
    }
}

/// Verify every intentional mutation is caught by at least one oracle.
fn run_mutant_check(args: &Args) -> i32 {
    let reports = match mutant_check(args.budget, args.seed) {
        Ok(r) => r,
        Err(e) => fail(&e),
    };
    let mut escaped = 0;
    for r in &reports {
        match &r.caught {
            Some((shrunk, violations)) => {
                println!(
                    "CAUGHT {} after {} scenario(s) by [{}]",
                    r.mutant,
                    r.tried,
                    violations
                        .iter()
                        .map(|v| v.oracle)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                println!("  repro: simcheck --scenario '{}'", shrunk.spec_string());
            }
            None => {
                escaped += 1;
                println!("ESCAPED {} survived {} scenario(s)", r.mutant, r.tried);
            }
        }
    }
    println!(
        "mutant-check: {}/{} mutations caught",
        reports.len() - escaped,
        reports.len()
    );
    if escaped == 0 {
        0
    } else {
        1
    }
}

/// Corpus regression + random fuzzing.
fn run_fuzz(args: &Args) -> i32 {
    let mut corpus = match Corpus::load(&args.corpus) {
        Ok(c) => c,
        Err(e) => fail(&format!(
            "cannot read corpus {}: {e}",
            args.corpus.display()
        )),
    };

    // Phase 1: replay every corpus entry (permanent regression tests).
    let mut violations_total = 0u64;
    for line in corpus.entries.clone() {
        let scenario = match Scenario::parse(&line) {
            Ok(s) => s,
            Err(e) => fail(&format!("corpus entry '{line}': {e}")),
        };
        let violations = check_scenario(&scenario);
        if !violations.is_empty() {
            violations_total += violations.len() as u64;
            println!("FAIL corpus {line}");
            for v in &violations {
                println!("  {v}");
            }
        }
    }
    if args.progress {
        eprintln!("corpus: {} entr(ies) replayed", corpus.entries.len());
    }

    // Phase 2: the random budget, fanned across --jobs workers.
    let outcome = match fuzz(&FuzzOptions {
        budget: args.budget,
        seed: args.seed,
        jobs: args.jobs,
        failure_dir: Some(args.failure_dir.clone()),
        progress: args.progress,
        checkpoint: args.checkpoint.clone(),
        max_inflight: args.max_inflight,
        cancel_after: args.cancel_after,
    }) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simcheck: {e}");
            if matches!(e, sim_core::Error::Interrupted { .. }) {
                if let Some(path) = &args.checkpoint {
                    eprintln!(
                        "checkpoint finalized at {}; rerun with `--checkpoint {} --resume` to continue",
                        path.display(),
                        path.display()
                    );
                } else {
                    eprintln!("hint: rerun with `--checkpoint PATH` to make campaigns resumable");
                }
            }
            std::process::exit(e.exit_code());
        }
    };
    for f in &outcome.failures {
        violations_total += f.violations.len() as u64;
        println!("FAIL scenario #{}: {}", f.index, f.scenario.spec_string());
        for v in &f.violations {
            println!("  {v}");
        }
        println!("  repro: simcheck --scenario '{}'", f.shrunk.spec_string());
        if let Some(path) = &f.trace_path {
            println!("  trace: {}", path.display());
        }
        if !args.no_corpus_append {
            match corpus.append(&f.shrunk.spec_string()) {
                Ok(true) => println!("  corpus: added to {}", args.corpus.display()),
                Ok(false) => {}
                Err(e) => eprintln!("simcheck: corpus append failed: {e}"),
            }
        }
    }
    // NB: stdout must stay bit-identical for any --jobs value, so the
    // worker count is reported on stderr only (with --progress).
    if args.progress {
        eprintln!("jobs: {}", args.jobs);
    }
    println!(
        "simcheck: {} corpus + {} random scenarios, {} violation(s), seed {}",
        corpus.entries.len(),
        outcome.scenarios,
        violations_total,
        args.seed
    );
    if violations_total == 0 {
        0
    } else {
        1
    }
}

fn main() {
    mobile_bbr_bench::cancel::install_sigint_handler();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => fail(&e),
    };
    // A fresh (non-`--resume`) campaign must not replay a stale checkpoint.
    if let Some(path) = &args.checkpoint {
        if !args.resume && path.exists() {
            if let Err(e) = std::fs::remove_file(path) {
                fail(&format!(
                    "cannot discard stale checkpoint {}: {e}",
                    path.display()
                ));
            }
        }
    }
    let code = if let Some(spec) = &args.scenario {
        run_single(spec)
    } else if args.mutant_check {
        run_mutant_check(&args)
    } else {
        run_fuzz(&args)
    };
    std::process::exit(code);
}
