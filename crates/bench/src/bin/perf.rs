//! Event-core performance harness: measures the timer wheel against the
//! retained heap reference and emits `BENCH_event_core.json`.
//!
//! ```bash
//! perf                         # measure, write BENCH_event_core.json
//! perf --out /tmp/bench.json   # measure, write elsewhere
//! perf --check                 # measure, then fail if the wheel's
//!                              # ops/sec regressed >20% vs the committed
//!                              # BENCH_event_core.json, or if the fig2
//!                              # quick grid lost its required speedup
//!                              # over the recorded wall-time baseline
//! perf --record LABEL          # append this run to the file's history
//! perf --full                  # time fig2 at full parameters (slow)
//! ```
//!
//! Six measurements, mirroring the simulator's real load profile:
//!
//! 1. **Timer churn** — a burst of schedule→cancel→reschedule re-arm
//!    cycles (pacing + RTO timers) followed by one pop, at 1/20/200
//!    concurrent flows, for both the wheel and the reference queue.
//!    Reported as queue ops/sec (see [`OPS_PER_ROUND`]).
//! 2. **fig2 wall time** — the end-to-end `repro --exp fig2` experiment
//!    (quick parameters unless `--full`), uncached.
//! 3. **Peak RSS** — `VmHWM` from `/proc/self/status` after the runs.
//! 4. **Many-flows goodput cells** — one `StackSim` at 20/200/1000
//!    connections (BBR, Ethernet, High-End Pixel 4), reporting events/sec
//!    through the wheel and per-flow peak RSS (measured in a subprocess).
//!    `--check` enforces both the per-cell *wall-time* speedup floors
//!    over the pinned boxed-layout baseline (see
//!    [`MANY_FLOWS_SPEEDUP_FLOORS`] for why wall, not events/sec) and
//!    the 20% events/sec regression budget against the committed
//!    measurement.
//! 5. **Fleet cells** — one `StackSim` running the canonical mixed fleet
//!    (100/500/1000 devices, one connection each) through a shared CoDel
//!    PoP uplink: per-device access paths, shared-hop arbitration, and
//!    fleet metrics assembly all on the measured path. `--check` enforces
//!    the same noise-calibrated events/sec budget as the many-flows cells.
//! 6. **Streaming memory bound** — a 10,000-cell synthetic sweep with a
//!    fat (256 KiB) output per cell, run after a quarter-size warm-up
//!    grid has set the high-water mark. The streaming engine holds at
//!    most `max_inflight` unreleased outputs, so the 4× grid must leave
//!    `VmHWM` essentially flat; unbounded buffering would grow it by
//!    ~1.9 GiB. Growth beyond [`STREAM_GROWTH_LIMIT`] fails the run.
//!
//! The committed JSON doubles as the CI regression baseline: the
//! `bench-smoke` job re-measures and `--check`s against it, so an event-core
//! slowdown fails the build instead of landing silently. Since schema v2 the
//! file is also a multi-metric *history*: `fig2_baseline_wall_seconds` pins
//! the pre-batching wall time the `--check` speedup gate is measured
//! against (carried forward verbatim on every rewrite; update it only for a
//! deliberate re-baselining), and the `history` array accumulates one
//! labelled snapshot per `--record` run — timer-churn ops/sec, quick-grid
//! wall seconds, and streaming-sweep `VmHWM` growth — so the performance
//! trajectory across PRs stays readable from the repo alone (see the
//! README's "Performance trajectory" section).

use congestion::CcKind;
use cpu_model::{CpuConfig, DeviceProfile};
use netsim::media::MediaProfile;
use serde_json::Value;
use sim_core::event::reference::ReferenceQueue;
use sim_core::event::EventQueue;
use sim_core::rng::SimRng;
use sim_core::sweep::{run_sweep_streaming, SweepCell, SweepOptions};
use sim_core::time::{SimDuration, SimTime};
use std::time::Instant;
use tcp_sim::{SimConfig, StackSim};

const DEFAULT_OUT: &str = "BENCH_event_core.json";
const FLOWS: [usize; 3] = [1, 20, 200];
const ROUNDS: usize = 200_000;
/// Timer re-arms (cancel + re-schedule) per popped event. In the simulator a
/// single delivered event triggers several re-arms — an ACK re-arms the RTO
/// and releases sends that each re-arm the pacing timer — so the microbench
/// runs a burst of schedule→cancel→reschedule cycles per pop rather than one.
const REARMS_PER_POP: usize = 4;
/// Queue operations per churn round: `REARMS_PER_POP` (cancel + schedule)
/// pairs, then pop + schedule.
const OPS_PER_ROUND: u64 = 2 * REARMS_PER_POP as u64 + 2;
/// `--check` fails when wheel ops/sec falls below this fraction of the
/// committed baseline (the issue's 20% regression budget).
const CHECK_FLOOR: f64 = 0.8;
/// Live-vs-recorded budget for the many-flows cells — a *catastrophic*
/// backstop only, far wider than [`CHECK_FLOOR`]. A whole cell runs in
/// 10–20 ms and a single-vCPU runner's slow phases last longer than that:
/// back-to-back check runs were measured delivering anywhere from 0.38x to
/// 1.0x of the recorded events/sec even with min-of-5 reps, where the
/// sub-microsecond churn loops average that noise away. The authoritative
/// arena-vs-boxed gate is therefore the *wall-time floor* on the recorded
/// cells ([`MANY_FLOWS_SPEEDUP_FLOORS`]); this live floor exists only to
/// catch a ~3x true slowdown without flaking on scheduler phase.
const MANY_FLOWS_CHECK_FLOOR: f64 = 0.35;
/// `--check` fails when the fig2 grid's wall time exceeds
/// `fig2_baseline_wall_seconds / FIG2_SPEEDUP_FLOOR`: the batched hot path
/// must hold at least this speedup over the recorded pre-batching baseline.
const FIG2_SPEEDUP_FLOOR: f64 = 2.0;

/// One churn round, identical across both queue implementations (the
/// macro sidesteps the lack of a shared trait between them).
macro_rules! churn_loop {
    ($q:expr, $flows:expr, $rounds:expr) => {{
        let mut q = $q;
        let mut timers: Vec<_> = (0..$flows as u64)
            .map(|i| q.schedule_at(SimTime::from_nanos(1_000 + 37 * i), i))
            .collect();
        let start = Instant::now();
        // Wrapping counter, not `round % flows`: a 64-bit div in the
        // dependency chain would tax both queues by a constant and drag the
        // measured ratio toward 1.
        let mut j = 0usize;
        for _round in 0..$rounds {
            for _ in 0..REARMS_PER_POP {
                q.cancel(timers[j]);
                timers[j] = q.schedule_after(SimDuration::from_micros(5), j as u64);
            }
            let e = q.pop().expect("population stays positive");
            timers[e.event as usize] = q.schedule_at(e.at + SimDuration::from_micros(7), e.event);
            j += 1;
            if j == $flows {
                j = 0;
            }
        }
        std::hint::black_box(q.now());
        start.elapsed()
    }};
}

fn ops_per_sec(rounds: usize, elapsed: std::time::Duration) -> f64 {
    (rounds as u64 * OPS_PER_ROUND) as f64 / elapsed.as_secs_f64()
}

/// Timed repetitions per queue; the minimum is reported. The min (criterion's
/// approach) filters scheduler noise, which on a shared machine dwarfs the
/// run-to-run spread of the loop itself.
const REPS: usize = 5;

fn measure_flows(flows: usize) -> (f64, f64) {
    // One untimed warm-up pass per queue absorbs slab/heap growth so the
    // numbers describe steady state (what the simulator actually runs in).
    let _ = churn_loop!(EventQueue::<u64>::new(), flows, ROUNDS / 10);
    let wheel = (0..REPS)
        .map(|_| churn_loop!(EventQueue::<u64>::new(), flows, ROUNDS))
        .min()
        .expect("REPS > 0");
    let _ = churn_loop!(ReferenceQueue::<u64>::new(), flows, ROUNDS / 10);
    let reference = (0..REPS)
        .map(|_| churn_loop!(ReferenceQueue::<u64>::new(), flows, ROUNDS))
        .min()
        .expect("REPS > 0");
    (ops_per_sec(ROUNDS, wheel), ops_per_sec(ROUNDS, reference))
}

/// Connection counts for the many-flows goodput cells. The first is the
/// paper's own sweep ceiling; the rest are the fleet-scale regime the
/// flow-state arena exists for.
const MANY_FLOWS: [usize; 3] = [20, 200, 1000];
/// Simulated duration / warmup per many-flows cell, milliseconds.
const MANY_FLOWS_DUR_MS: u64 = 400;
const MANY_FLOWS_WARMUP_MS: u64 = 100;
/// Timed repetitions per many-flows cell; the minimum is reported.
const MANY_FLOWS_REPS: usize = 5;
/// Per-cell *wall-time* speedup floors for the arena-vs-boxed gate,
/// applied to the *recorded* (committed) wall seconds so the gate is
/// stable under the ±30% wall-clock noise of a single-vCPU VM; live
/// measurements are covered by the `CHECK_FLOOR` regression gate instead.
///
/// The gate compares wall time, not events/sec, because the two layouts
/// dispatch *different event counts for the identical simulated cell*:
/// the arena build eagerly cancels superseded RTO timers, which boxed
/// popped as stale no-ops (74729 vs 68390 pops at 200 conns). Events/sec
/// would bill those saved pops against the arena. Wall time of the same
/// simulated workload is the honest comparison.
///
/// The floors pin the strongest claim an interleaved A/B (alternating
/// boxed/arena binaries, min wall of 3 reps, 4+ rounds) supports:
/// ~1.45x at 200 conns, ~1.20x at 1000. Both layouts are LLC-resident at
/// these cell sizes (peak RSS <= 10 MiB), so the struct-of-arrays win is
/// bounded by per-event dispatch cost, not cache misses — see
/// EXPERIMENTS.md "Many-flows throughput" for the full analysis.
const MANY_FLOWS_SPEEDUP_FLOORS: [(usize, f64); 2] = [(200, 1.30), (1000, 1.10)];
/// Wall seconds of the pre-arena boxed layout (`Vec<Conn>` of
/// per-connection state bundles) on each many-flows cell, the *minimum*
/// over interleaved A/B rounds against the arena build at the commit that
/// introduced this metric — best-case boxed, so the pinned speedups are
/// conservative. Like `fig2_baseline_wall_seconds`, the committed JSON
/// carries these forward under `many_flows_boxed_baseline`; the constants
/// only seed a fresh file. Update them only for a deliberate
/// re-baselining.
const MANY_FLOWS_BOXED_WALL_SECONDS: [(usize, f64); 3] =
    [(20, 0.0134), (200, 0.0165), (1000, 0.0181)];

/// Device counts for the fleet bench cells: the mixed-tier population
/// competing through one shared CoDel uplink, the regime the FLEET
/// experiment runs at PoP scale. 1000 approaches the arena's 1024-flow
/// ceiling with one connection per device.
const FLEET_SIZES: [usize; 3] = [100, 500, 1000];
/// Shared-uplink provisioning per fleet device, Mbps (matches the FLEET
/// experiment's [`experiments::fleet::SHARE_MBPS`]).
const FLEET_SHARE_MBPS: u64 = 20;
/// Timed repetitions per fleet cell; the minimum is reported. Fewer than
/// the many-flows cells because a 1000-device fleet cell runs an order of
/// magnitude longer, which also makes it less noise-sensitive.
const FLEET_REPS: usize = 3;

/// One fleet bench cell: the canonical mixed fleet through a CoDel PoP
/// uplink — per-device access paths, shared-hop arbitration, and the
/// fleet metrics assembly all on the measured path.
fn fleet_config(devices: usize) -> SimConfig {
    let fleet = tcp_sim::FleetConfig::mixed(devices).with_shared(tcp_sim::FleetConfig::pop_uplink(
        sim_core::units::Bandwidth::from_mbps(FLEET_SHARE_MBPS * devices as u64),
        netsim::Qdisc::Codel,
    ));
    SimConfig::builder(DeviceProfile::pixel4(), CpuConfig::HighEnd, CcKind::Bbr, 1)
        .fleet(fleet)
        .duration(SimDuration::from_millis(MANY_FLOWS_DUR_MS))
        .warmup(SimDuration::from_millis(MANY_FLOWS_WARMUP_MS))
        .start_stagger(SimDuration::from_micros(100))
        .sample_interval(None)
        .seed(11)
        .build()
        .expect("fleet bench config is valid")
}

/// Measured numbers for one fleet cell.
struct FleetPoint {
    devices: usize,
    events: u64,
    wall_seconds: f64,
    events_per_sec: f64,
}

fn measure_fleet(devices: usize) -> FleetPoint {
    let events = StackSim::new(fleet_config(devices))
        .run()
        .counters
        .get("wheel_popped");
    let mut best = f64::INFINITY;
    for _ in 0..FLEET_REPS {
        let sim = StackSim::new(fleet_config(devices));
        let t0 = Instant::now();
        let res = sim.run();
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(
            res.counters.get("wheel_popped"),
            events,
            "fleet cell must be deterministic"
        );
        best = best.min(wall);
    }
    FleetPoint {
        devices,
        events,
        wall_seconds: best,
        events_per_sec: events as f64 / best,
    }
}

/// One many-flows goodput-sim cell: BBR over Ethernet on the High-End
/// Pixel 4 — maximum packet rate, so per-flow dispatch (not the modelled
/// CPU) dominates the wall time being measured.
fn many_flows_config(conns: usize) -> SimConfig {
    SimConfig::builder(
        DeviceProfile::pixel4(),
        CpuConfig::HighEnd,
        CcKind::Bbr,
        conns,
    )
    .path(MediaProfile::Ethernet.path_config())
    .duration(SimDuration::from_millis(MANY_FLOWS_DUR_MS))
    .warmup(SimDuration::from_millis(MANY_FLOWS_WARMUP_MS))
    // The default 3 ms stagger would leave most of a 1000-conn cell
    // unstarted inside the cell's duration; 100 µs gets every flow
    // running before the warmup window closes.
    .start_stagger(SimDuration::from_micros(100))
    .sample_interval(None)
    .seed(11)
    .build()
    .expect("many-flows config is valid")
}

/// Measured numbers for one many-flows cell.
struct ManyFlowsPoint {
    conns: usize,
    /// Events dispatched by the wheel (identical across repetitions — the
    /// simulation is deterministic; only the wall time varies).
    events: u64,
    wall_seconds: f64,
    events_per_sec: f64,
    /// `VmHWM` of a subprocess that ran exactly one such cell (0 where
    /// spawning or `/proc` is unavailable).
    rss_bytes: u64,
}

fn measure_many_flows(conns: usize) -> ManyFlowsPoint {
    // One untimed warm-up pass absorbs allocator growth and also pins the
    // deterministic event count the timed passes are checked against.
    let events = StackSim::new(many_flows_config(conns))
        .run()
        .counters
        .get("wheel_popped");
    let mut best = f64::INFINITY;
    for _ in 0..MANY_FLOWS_REPS {
        let sim = StackSim::new(many_flows_config(conns));
        let t0 = Instant::now();
        let res = sim.run();
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(
            res.counters.get("wheel_popped"),
            events,
            "many-flows cell must be deterministic"
        );
        best = best.min(wall);
    }
    ManyFlowsPoint {
        conns,
        events,
        wall_seconds: best,
        events_per_sec: events as f64 / best,
        rss_bytes: rss_probe(conns),
    }
}

/// Peak RSS of one many-flows cell, measured in a child process so the
/// number isolates the cell from this harness's own high-water mark.
fn rss_probe(conns: usize) -> u64 {
    let Ok(exe) = std::env::current_exe() else {
        return 0;
    };
    let Ok(out) = std::process::Command::new(exe)
        .arg("--rss-probe")
        .arg(conns.to_string())
        .output()
    else {
        return 0;
    };
    String::from_utf8_lossy(&out.stdout)
        .trim()
        .parse()
        .unwrap_or(0)
}

/// Cells in the streaming-memory sweep (measurement 4).
const STREAM_CELLS: usize = 10_000;
/// Output payload per synthetic cell.
const STREAM_PAYLOAD: usize = 256 * 1024;
/// In-flight window for the measurement; the engine's memory bound is
/// roughly `max(max_inflight, jobs) × STREAM_PAYLOAD` ≈ 2 MiB here.
const STREAM_INFLIGHT: usize = 8;
const STREAM_JOBS: usize = 4;
/// `VmHWM` growth from the quarter grid to the full grid above which the
/// streaming engine is considered to be buffering outputs (the unbounded
/// worst case is ~1.9 GiB; the bounded steady state adds nothing).
const STREAM_GROWTH_LIMIT: u64 = 128 * 1024 * 1024;

/// Synthetic sweep cell with a deliberately fat output: cheap to compute,
/// expensive to hold. If finished-but-unreleased outputs accumulated,
/// RSS would scale with grid size instead of with the in-flight window.
struct FatCell {
    id: u64,
}

impl SweepCell for FatCell {
    type Output = Vec<u8>;

    fn label(&self) -> String {
        format!("fat-{}", self.id)
    }

    fn key_bytes(&self) -> Vec<u8> {
        format!("perf-fat:{}", self.id).into_bytes()
    }

    fn run(&self, mut rng: SimRng) -> Vec<u8> {
        vec![rng.next() as u8; STREAM_PAYLOAD]
    }

    fn encode(_: &Vec<u8>) -> Option<Vec<u8>> {
        None
    }

    fn decode(_: &[u8]) -> Option<Vec<u8>> {
        None
    }

    fn cacheable(&self) -> bool {
        false
    }
}

/// Run a fat-cell sweep of `n` cells, folding each output into a checksum
/// so nothing outlives its release.
fn fat_sweep(n: usize) -> u64 {
    let cells: Vec<FatCell> = (0..n as u64).map(|id| FatCell { id }).collect();
    let opts = SweepOptions {
        jobs: STREAM_JOBS,
        max_inflight: STREAM_INFLIGHT,
        ..SweepOptions::default()
    };
    let mut sum = 0u64;
    run_sweep_streaming(&cells, &opts, |_idx, out, _report| {
        sum = sum
            .wrapping_add(out[0] as u64)
            .wrapping_add(out.len() as u64);
    })
    .expect("uncancelled synthetic sweep completes");
    sum
}

/// Peak resident set size in bytes (`VmHWM`), or 0 where unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn json_field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    let Value::Object(fields) = v else {
        return None;
    };
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn json_f64(v: &Value, key: &str) -> Option<f64> {
    match *json_field(v, key)? {
        Value::Float(f) => Some(f),
        Value::Int(i) => Some(i as f64),
        Value::UInt(u) => Some(u as f64),
        _ => None,
    }
}

fn json_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match json_field(v, key)? {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// The wall-time baseline a file pins for the speedup gate: the explicit
/// v2 field, else (v1 files) the wall time it recorded.
fn baseline_wall_seconds(doc: &Value) -> Option<f64> {
    json_f64(doc, "fig2_baseline_wall_seconds").or_else(|| json_f64(doc, "fig2_wall_seconds"))
}

/// The boxed-layout wall-seconds baseline: the file's pinned copy when it
/// has one, else the compiled-in seed values.
fn boxed_baseline_points(doc: Option<&Value>) -> Vec<(usize, f64)> {
    if let Some(Value::Array(pts)) = doc.and_then(|d| json_field(d, "many_flows_boxed_baseline")) {
        let parsed: Vec<(usize, f64)> = pts
            .iter()
            .filter_map(|p| Some((json_f64(p, "conns")? as usize, json_f64(p, "wall_seconds")?)))
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    MANY_FLOWS_BOXED_WALL_SECONDS.to_vec()
}

fn check_against(
    baseline_path: &str,
    current: &[(usize, f64, f64)],
    fig2_params: &str,
    fig2_wall_seconds: f64,
    many: &[ManyFlowsPoint],
    fleet: &[FleetPoint],
) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let root = serde_json::from_str(&text).map_err(|e| format!("bad baseline JSON: {e}"))?;
    let Some(Value::Array(points)) = json_field(&root, "timer_churn") else {
        return Err("baseline has no timer_churn array".into());
    };
    let mut failures = Vec::new();
    // fig2 wall-time gate: the batched engine must hold its speedup over the
    // recorded pre-batching baseline (comparable only at equal parameters).
    if json_str(&root, "fig2_params") == Some(fig2_params) {
        if let Some(base_wall) = baseline_wall_seconds(&root) {
            let target = base_wall / FIG2_SPEEDUP_FLOOR;
            if fig2_wall_seconds > target {
                failures.push(format!(
                    "fig2 ({fig2_params}) wall time {fig2_wall_seconds:.2}s exceeds {target:.2}s \
                     (recorded baseline {base_wall:.2}s / required {FIG2_SPEEDUP_FLOOR}x speedup)"
                ));
            }
        }
    }
    for point in points {
        let flows = json_f64(point, "flows").ok_or("baseline point missing flows")? as usize;
        let base = json_f64(point, "wheel_ops_per_sec")
            .ok_or("baseline point missing wheel_ops_per_sec")?;
        let Some(&(_, now, _)) = current.iter().find(|(f, _, _)| *f == flows) else {
            continue;
        };
        if now < base * CHECK_FLOOR {
            failures.push(format!(
                "wheel at {flows} flows: {:.2e} ops/s < {:.0}% of baseline {:.2e}",
                now,
                CHECK_FLOOR * 100.0,
                base
            ));
        }
    }
    // Many-flows gate (a): the arena layout must hold its per-cell
    // *wall-time* speedup floor over the boxed-layout baseline at
    // fleet-scale connection counts (wall, not events/sec — the layouts
    // pop different event counts for the identical simulated cell; see
    // MANY_FLOWS_SPEEDUP_FLOORS). The committed (recorded) measurement is
    // gated when present — a stable artifact from a `--record` run —
    // falling back to the live numbers only for never-recorded files;
    // live-vs-recorded drift is gate (b)'s job.
    let boxed = boxed_baseline_points(Some(&root));
    let recorded_cells = json_field(&root, "many_flows").and_then(|m| json_field(m, "cells"));
    for &(conns, floor) in &MANY_FLOWS_SPEEDUP_FLOORS {
        let Some(&(_, base_wall)) = boxed.iter().find(|(c, _)| *c == conns) else {
            continue;
        };
        let recorded = match recorded_cells {
            Some(Value::Array(cells)) => cells
                .iter()
                .find(|c| json_f64(c, "conns") == Some(conns as f64))
                .and_then(|c| json_f64(c, "wall_seconds")),
            _ => None,
        };
        let (wall, source) = match recorded {
            Some(w) => (w, "recorded"),
            None => match many.iter().find(|p| p.conns == conns) {
                Some(p) => (p.wall_seconds, "live"),
                None => continue,
            },
        };
        if wall * floor > base_wall {
            failures.push(format!(
                "many-flows at {conns} conns: {source} wall {:.1}ms is not {floor}x faster \
                 than boxed baseline {:.1}ms",
                wall * 1e3,
                base_wall * 1e3,
            ));
        }
    }
    // Many-flows gate (b): no events/sec regression beyond the
    // noise-calibrated budget vs the committed measurement (the CI
    // bench-smoke gate; see [`MANY_FLOWS_CHECK_FLOOR`] for why it is wider
    // than the churn budget).
    if let Some(Value::Array(cells)) =
        json_field(&root, "many_flows").and_then(|m| json_field(m, "cells"))
    {
        for cell in cells {
            let conns = json_f64(cell, "conns").ok_or("many_flows cell missing conns")? as usize;
            let base =
                json_f64(cell, "events_per_sec").ok_or("many_flows cell missing events_per_sec")?;
            let Some(p) = many.iter().find(|p| p.conns == conns) else {
                continue;
            };
            if p.events_per_sec < base * MANY_FLOWS_CHECK_FLOOR {
                failures.push(format!(
                    "many-flows at {conns} conns: {:.2e} events/s < {:.0}% of baseline {:.2e}",
                    p.events_per_sec,
                    MANY_FLOWS_CHECK_FLOOR * 100.0,
                    base
                ));
            }
        }
    }
    // Fleet gate: no events/sec regression beyond the noise-calibrated
    // budget vs the committed fleet cells (same rationale as many-flows
    // gate (b); absent from pre-fleet baseline files, which simply skips
    // the gate until the next --record).
    if let Some(Value::Array(cells)) =
        json_field(&root, "fleet").and_then(|m| json_field(m, "cells"))
    {
        for cell in cells {
            let devices = json_f64(cell, "devices").ok_or("fleet cell missing devices")? as usize;
            let base =
                json_f64(cell, "events_per_sec").ok_or("fleet cell missing events_per_sec")?;
            let Some(p) = fleet.iter().find(|p| p.devices == devices) else {
                continue;
            };
            if p.events_per_sec < base * MANY_FLOWS_CHECK_FLOOR {
                failures.push(format!(
                    "fleet at {devices} devices: {:.2e} events/s < {:.0}% of baseline {:.2e}",
                    p.events_per_sec,
                    MANY_FLOWS_CHECK_FLOOR * 100.0,
                    base
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let mut out = DEFAULT_OUT.to_string();
    let mut check: Option<String> = None;
    let mut record: Option<String> = None;
    let mut full = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Internal mode used by `rss_probe`: run one many-flows cell and print
    // this process's `VmHWM` so the parent gets an isolated per-cell RSS.
    if argv.first().map(String::as_str) == Some("--rss-probe") {
        let conns: usize = argv
            .get(1)
            .and_then(|s| s.parse().ok())
            .expect("--rss-probe needs a connection count");
        std::hint::black_box(StackSim::new(many_flows_config(conns)).run());
        println!("{}", peak_rss_bytes());
        return;
    }
    // Internal mode for profilers: run one many-flows cell in a loop so a
    // sampling profiler sees nothing but the cell under study.
    if argv.first().map(String::as_str) == Some("--spin") {
        let conns: usize = argv
            .get(1)
            .and_then(|s| s.parse().ok())
            .expect("--spin needs a connection count");
        let reps: usize = argv.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);
        for _ in 0..reps {
            std::hint::black_box(StackSim::new(many_flows_config(conns)).run());
        }
        return;
    }
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                out = argv.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--check" => {
                // Optional path operand; defaults to the committed file.
                match argv.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        check = Some(p.clone());
                        i += 2;
                    }
                    _ => {
                        check = Some(DEFAULT_OUT.to_string());
                        i += 1;
                    }
                }
            }
            "--record" => {
                record = Some(argv.get(i + 1).expect("--record needs a label").clone());
                i += 2;
            }
            "--full" => {
                full = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                eprintln!("usage: perf [--out PATH] [--check [PATH]] [--record LABEL] [--full]");
                std::process::exit(2);
            }
        }
    }

    // 1. Timer churn: wheel vs reference at each concurrency level.
    let mut points = Vec::new();
    for flows in FLOWS {
        let (wheel, reference) = measure_flows(flows);
        println!(
            "timer_rearm {flows:>3} flows: wheel {wheel:>12.0} ops/s | heap {reference:>12.0} ops/s | {:.2}x",
            wheel / reference
        );
        points.push((flows, wheel, reference));
    }

    // 2. End-to-end wall time: the fig2 experiment, uncached.
    let mut params = if full {
        experiments::Params::full()
    } else {
        experiments::Params::quick()
    };
    params.cache_dir = None;
    let fig2 = experiments::ExperimentId::from_cli_name("fig2").expect("fig2 exists");
    let t0 = Instant::now();
    let exp = fig2.run(&params).expect("fig2 completes");
    let fig2_wall = t0.elapsed();
    std::hint::black_box(&exp);
    println!(
        "fig2 ({}): {:.2}s",
        if full { "full" } else { "quick" },
        fig2_wall.as_secs_f64()
    );

    // 3. Memory high-water mark of this whole process (read before the
    //    streaming measurement so it keeps describing the repro workload).
    let rss = peak_rss_bytes();
    println!("peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));

    // 3b. Many-flows goodput cells: one StackSim per connection count,
    //     events/sec against the wheel and per-flow RSS from a subprocess.
    let many: Vec<ManyFlowsPoint> = MANY_FLOWS
        .iter()
        .map(|&conns| {
            let p = measure_many_flows(conns);
            println!(
                "many-flows {:>4} conns: {:>9} events in {:.3}s | {:>11.0} events/s | RSS {:>6.1} MiB ({:.1} KiB/flow)",
                p.conns,
                p.events,
                p.wall_seconds,
                p.events_per_sec,
                p.rss_bytes as f64 / (1024.0 * 1024.0),
                p.rss_bytes as f64 / p.conns as f64 / 1024.0,
            );
            p
        })
        .collect();

    // 3c. Fleet cells: the mixed-tier population through one shared CoDel
    //     uplink at 100/500/1000 devices.
    let fleet: Vec<FleetPoint> = FLEET_SIZES
        .iter()
        .map(|&devices| {
            let p = measure_fleet(devices);
            println!(
                "fleet {:>4} devices: {:>9} events in {:.3}s | {:>11.0} events/s",
                p.devices, p.events, p.wall_seconds, p.events_per_sec,
            );
            p
        })
        .collect();

    // 4. Streaming memory bound. `VmHWM` is monotonic: the quarter grid
    //    sets the mark, then a flat engine leaves the 4x grid's growth
    //    near zero while unbounded buffering would add gigabytes.
    std::hint::black_box(fat_sweep(STREAM_CELLS / 4));
    let hwm_quarter = peak_rss_bytes();
    std::hint::black_box(fat_sweep(STREAM_CELLS));
    let hwm_full = peak_rss_bytes();
    let stream_growth = hwm_full.saturating_sub(hwm_quarter);
    let unbounded = (STREAM_CELLS - STREAM_CELLS / 4) as u64 * STREAM_PAYLOAD as u64;
    println!(
        "streaming sweep {}->{} cells (payload {} KiB, inflight {}): RSS growth {:.1} MiB (unbounded would be ~{:.0} MiB)",
        STREAM_CELLS / 4,
        STREAM_CELLS,
        STREAM_PAYLOAD / 1024,
        STREAM_INFLIGHT,
        stream_growth as f64 / (1024.0 * 1024.0),
        unbounded as f64 / (1024.0 * 1024.0),
    );
    if stream_growth > STREAM_GROWTH_LIMIT {
        eprintln!(
            "streaming memory check FAILED: RSS grew {} bytes from quarter to full grid (limit {})",
            stream_growth, STREAM_GROWTH_LIMIT
        );
        std::process::exit(1);
    }

    // Carry the pinned wall-time baseline and the labelled history forward
    // from the prior file (the --check baseline if given, else whatever sits
    // at --out): measurement runs must not silently move the gate or lose
    // the trajectory. A fresh file pins the current run as its baseline.
    let prior = check
        .as_deref()
        .or(Some(out.as_str()))
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|t| serde_json::from_str(&t).ok());
    let pinned_wall = prior
        .as_ref()
        .and_then(baseline_wall_seconds)
        .unwrap_or(fig2_wall.as_secs_f64());
    let boxed_baseline = boxed_baseline_points(prior.as_ref());
    let mut history: Vec<Value> = match prior.as_ref().and_then(|p| json_field(p, "history")) {
        Some(Value::Array(entries)) => entries.clone(),
        _ => Vec::new(),
    };
    if let Some(label) = &record {
        history.push(Value::Object(vec![
            ("label".into(), Value::Str(label.clone())),
            (
                "timer_churn_wheel_ops_per_sec".into(),
                Value::Array(
                    points
                        .iter()
                        .map(|&(flows, wheel, _)| {
                            Value::Object(vec![
                                ("flows".into(), Value::UInt(flows as u64)),
                                ("ops_per_sec".into(), Value::Float(wheel)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fig2_params".into(),
                Value::Str(if full { "full" } else { "quick" }.into()),
            ),
            (
                "fig2_wall_seconds".into(),
                Value::Float(fig2_wall.as_secs_f64()),
            ),
            ("peak_rss_bytes".into(), Value::UInt(rss)),
            (
                "streaming_vmhwm_growth_bytes".into(),
                Value::UInt(stream_growth),
            ),
            (
                "many_flows_events_per_sec".into(),
                Value::Array(
                    many.iter()
                        .map(|p| {
                            Value::Object(vec![
                                ("conns".into(), Value::UInt(p.conns as u64)),
                                ("events_per_sec".into(), Value::Float(p.events_per_sec)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fleet_events_per_sec".into(),
                Value::Array(
                    fleet
                        .iter()
                        .map(|p| {
                            Value::Object(vec![
                                ("devices".into(), Value::UInt(p.devices as u64)),
                                ("events_per_sec".into(), Value::Float(p.events_per_sec)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    let doc = Value::Object(vec![
        ("schema".into(), Value::Str("bench-event-core/v2".into())),
        ("rounds".into(), Value::UInt(ROUNDS as u64)),
        ("rearms_per_pop".into(), Value::UInt(REARMS_PER_POP as u64)),
        ("ops_per_round".into(), Value::UInt(OPS_PER_ROUND)),
        (
            "timer_churn".into(),
            Value::Array(
                points
                    .iter()
                    .map(|&(flows, wheel, reference)| {
                        Value::Object(vec![
                            ("flows".into(), Value::UInt(flows as u64)),
                            ("wheel_ops_per_sec".into(), Value::Float(wheel)),
                            ("reference_ops_per_sec".into(), Value::Float(reference)),
                            ("speedup".into(), Value::Float(wheel / reference)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "many_flows".into(),
            Value::Object(vec![
                ("dur_ms".into(), Value::UInt(MANY_FLOWS_DUR_MS)),
                ("warmup_ms".into(), Value::UInt(MANY_FLOWS_WARMUP_MS)),
                (
                    "cells".into(),
                    Value::Array(
                        many.iter()
                            .map(|p| {
                                Value::Object(vec![
                                    ("conns".into(), Value::UInt(p.conns as u64)),
                                    ("events".into(), Value::UInt(p.events)),
                                    ("wall_seconds".into(), Value::Float(p.wall_seconds)),
                                    ("events_per_sec".into(), Value::Float(p.events_per_sec)),
                                    ("peak_rss_bytes".into(), Value::UInt(p.rss_bytes)),
                                    (
                                        "rss_per_flow_bytes".into(),
                                        Value::UInt(p.rss_bytes / p.conns as u64),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "fleet".into(),
            Value::Object(vec![
                ("dur_ms".into(), Value::UInt(MANY_FLOWS_DUR_MS)),
                ("warmup_ms".into(), Value::UInt(MANY_FLOWS_WARMUP_MS)),
                (
                    "share_mbps_per_device".into(),
                    Value::UInt(FLEET_SHARE_MBPS),
                ),
                (
                    "cells".into(),
                    Value::Array(
                        fleet
                            .iter()
                            .map(|p| {
                                Value::Object(vec![
                                    ("devices".into(), Value::UInt(p.devices as u64)),
                                    ("events".into(), Value::UInt(p.events)),
                                    ("wall_seconds".into(), Value::Float(p.wall_seconds)),
                                    ("events_per_sec".into(), Value::Float(p.events_per_sec)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "many_flows_boxed_baseline".into(),
            Value::Array(
                boxed_baseline
                    .iter()
                    .map(|&(conns, wall)| {
                        Value::Object(vec![
                            ("conns".into(), Value::UInt(conns as u64)),
                            ("wall_seconds".into(), Value::Float(wall)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "many_flows_speedup_floors".into(),
            Value::Array(
                MANY_FLOWS_SPEEDUP_FLOORS
                    .iter()
                    .map(|&(conns, floor)| {
                        Value::Object(vec![
                            ("conns".into(), Value::UInt(conns as u64)),
                            ("floor".into(), Value::Float(floor)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fig2_params".into(),
            Value::Str(if full { "full" } else { "quick" }.into()),
        ),
        (
            "fig2_wall_seconds".into(),
            Value::Float(fig2_wall.as_secs_f64()),
        ),
        (
            "fig2_baseline_wall_seconds".into(),
            Value::Float(pinned_wall),
        ),
        (
            "fig2_speedup_floor".into(),
            Value::Float(FIG2_SPEEDUP_FLOOR),
        ),
        ("peak_rss_bytes".into(), Value::UInt(rss)),
        (
            "streaming_sweep".into(),
            Value::Object(vec![
                ("cells".into(), Value::UInt(STREAM_CELLS as u64)),
                ("payload_bytes".into(), Value::UInt(STREAM_PAYLOAD as u64)),
                ("jobs".into(), Value::UInt(STREAM_JOBS as u64)),
                ("max_inflight".into(), Value::UInt(STREAM_INFLIGHT as u64)),
                (
                    "rss_growth_quarter_to_full_bytes".into(),
                    Value::UInt(stream_growth),
                ),
                ("unbounded_worst_case_bytes".into(), Value::UInt(unbounded)),
            ]),
        ),
        ("history".into(), Value::Array(history)),
    ]);
    let mut text = serde_json::to_string_pretty(&doc).expect("render JSON");
    text.push('\n');

    if let Some(baseline) = &check {
        let params_name = if full { "full" } else { "quick" };
        if let Err(msg) = check_against(
            baseline,
            &points,
            params_name,
            fig2_wall.as_secs_f64(),
            &many,
            &fleet,
        ) {
            // Re-baselining (--record) is the sanctioned way out of a
            // regressed or machine-drifted baseline, so a failed check
            // must not block the rewrite — downgrade to a warning.
            if record.is_some() {
                eprintln!(
                    "event-core regression check FAILED (re-baselining anyway per --record): {msg}"
                );
            } else {
                eprintln!("event-core regression check FAILED: {msg}");
                std::process::exit(1);
            }
        } else {
            println!(
                "event-core regression check passed (churn floor {CHECK_FLOOR}, fig2 speedup floor {FIG2_SPEEDUP_FLOOR}x)"
            );
        }
    }

    std::fs::write(&out, &text).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");
}
