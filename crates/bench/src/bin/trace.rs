//! Inspect `sim-trace/v1` JSONL flight-recorder traces.
//!
//! ```bash
//! trace inspect trace.jsonl   # validate + per-kind event census
//! trace top trace.jsonl       # CPU categories ranked by modelled cycles
//! trace flows trace.jsonl     # per-connection activity summary
//! ```
//!
//! Traces come from `repro --trace PATH` (default JSONL format). Exit
//! status: 0 on success, 1 on I/O errors, 2 when the file is not a valid
//! `sim-trace/v1` trace.

use serde_json::Value;
use std::collections::BTreeMap;
use std::io::BufRead;

/// A parsed trace: header plus every body line as JSON.
struct Trace {
    header: Value,
    lines: Vec<Value>,
}

fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> Trace {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("error: open {path}: {e}");
        std::process::exit(1);
    });
    let mut lines = std::io::BufReader::new(file).lines();
    let first = match lines.next() {
        Some(Ok(l)) => l,
        Some(Err(e)) => fail(format!("read {path}: {e}")),
        None => fail(format!("{path} is empty")),
    };
    let header: Value = serde_json::from_str(&first)
        .unwrap_or_else(|e| fail(format!("{path}: header is not JSON: {e}")));
    if header.get("schema").and_then(Value::as_str) != Some("sim-trace/v1") {
        fail(format!(
            "{path}: missing schema \"sim-trace/v1\" — not a sim-trace JSONL file \
             (Chrome-format traces are for Perfetto, not this tool)"
        ));
    }
    let mut body = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line.unwrap_or_else(|e| fail(format!("read {path}: {e}")));
        if line.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(&line)
            .unwrap_or_else(|e| fail(format!("{path} line {}: not JSON: {e}", i + 2)));
        if v.get("t").and_then(Value::as_u64).is_none()
            || v.get("k").and_then(Value::as_str).is_none()
        {
            fail(format!("{path} line {}: missing \"t\"/\"k\" fields", i + 2));
        }
        let k = v.get("k").and_then(Value::as_str).unwrap_or("");
        // "counter" is the synthetic series kind write_jsonl appends after
        // the event body; everything else must be a known TraceKind.
        if k != "counter" && !sim_core::trace::ALL_KINDS.iter().any(|t| t.name() == k) {
            fail(format!(
                "{path} line {}: unknown event kind {k:?} (not a sim-trace/v1 TraceKind)",
                i + 2
            ));
        }
        body.push(v);
    }
    Trace {
        header,
        lines: body,
    }
}

fn kind(v: &Value) -> &str {
    v.get("k").and_then(Value::as_str).unwrap_or("")
}

fn num(v: &Value, field: &str) -> u64 {
    v.get(field).and_then(Value::as_u64).unwrap_or(0)
}

/// `trace inspect`: validate the file and print an event census.
fn inspect(path: &str) {
    let trace = load(path);
    let declared = trace
        .header
        .get("events")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut events = 0u64;
    let mut last_t = 0u64;
    for v in &trace.lines {
        let t = num(v, "t");
        if t < last_t {
            fail(format!(
                "{path}: events not in time order ({t} after {last_t})"
            ));
        }
        last_t = t;
        *by_kind.entry(kind(v).to_string()).or_default() += 1;
        if kind(v) != "counter" {
            events += 1;
        }
    }
    if events != declared {
        fail(format!(
            "{path}: header declares {declared} events but body has {events}"
        ));
    }
    println!(
        "valid sim-trace/v1: {events} events, {} dropped, {} counter series, span {:.3} s",
        trace
            .header
            .get("dropped")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        trace
            .header
            .get("counters")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        last_t as f64 / 1e9,
    );
    let mut census: Vec<(String, u64)> = by_kind.into_iter().collect();
    census.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (k, n) in census {
        println!("  {n:>10}  {k}");
    }
}

/// The cost-model cycle categories the stack charges
/// (`cpu_model::Cpu::execute_tagged` call sites in `tcp_sim::sim`), in
/// trace spelling:
///
/// * `timers`    — pacing/delack/RTO timer-fire fixed costs
/// * `acks`      — per-ACK processing
/// * `cc-model`  — congestion-control model computation per ACK
/// * `bytes`     — per-byte transmit work
/// * `skb-fixed` — per-socket-buffer transmit fixed cost
/// * `retransmit`— retransmission fixed cost
/// * `rto`       — RTO recovery processing
/// * `other`     — untagged `Cpu::execute` charges
///
/// `trace top` aggregates by whatever category string a `cpu_span`
/// carries; anything outside this list is reported under its own name
/// with a warning (never silently folded into `other`), so a renamed or
/// new call-site tag is visible instead of vanishing into the bucket.
const KNOWN_CATEGORIES: [&str; 8] = [
    "timers",
    "acks",
    "cc-model",
    "bytes",
    "skb-fixed",
    "retransmit",
    "rto",
    "other",
];

/// `trace top`: rank CPU cost categories by total modelled cycles.
///
/// Categories are the [`KNOWN_CATEGORIES`] cost-model tags; unknown tags
/// are kept separate and flagged on stderr.
fn top(path: &str) {
    let trace = load(path);
    // cpu_span: conn = category name, b = cycles.
    let mut cycles: BTreeMap<String, u64> = BTreeMap::new();
    let mut unknown: Vec<String> = Vec::new();
    for v in trace.lines.iter().filter(|v| kind(v) == "cpu_span") {
        let cat = v.get("conn").and_then(Value::as_str).unwrap_or("?");
        if !KNOWN_CATEGORIES.contains(&cat) && !unknown.iter().any(|u| u == cat) {
            unknown.push(cat.to_string());
        }
        *cycles.entry(cat.to_string()).or_default() += num(v, "b");
    }
    if cycles.is_empty() {
        fail(format!("{path}: no cpu_span events — was tracing enabled?"));
    }
    let total: u64 = cycles.values().sum();
    let mut ranked: Vec<(String, u64)> = cycles.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!(
        "modelled CPU by category ({:.1} Mcycles total):",
        total as f64 / 1e6
    );
    for (cat, c) in ranked {
        println!(
            "  {:>10.1} Mcycles  {:>5.1} %  {cat}",
            c as f64 / 1e6,
            100.0 * c as f64 / total as f64
        );
    }
    if !unknown.is_empty() {
        unknown.sort();
        eprintln!(
            "warning: {} categor{} not in the known cost-model set \
             ({}): {} — listed under {} own name{}, not folded into \
             \"other\"; update KNOWN_CATEGORIES if intentional",
            unknown.len(),
            if unknown.len() == 1 {
                "y is"
            } else {
                "ies are"
            },
            KNOWN_CATEGORIES.join(", "),
            unknown.join(", "),
            if unknown.len() == 1 { "its" } else { "their" },
            if unknown.len() == 1 { "" } else { "s" },
        );
    }
}

/// `trace flows`: per-connection activity summary.
fn flows(path: &str) {
    let trace = load(path);
    #[derive(Default)]
    struct Flow {
        tx_segs: u64,
        tx_bytes: u64,
        retx_segs: u64,
        acks: u64,
        pacing_fires: u64,
        rto_fires: u64,
        last_cwnd: u64,
        last_rate_bps: u64,
        last_phase: String,
    }
    let mut by_conn: BTreeMap<u64, Flow> = BTreeMap::new();
    for v in &trace.lines {
        let conn = match v.get("conn").and_then(Value::as_u64) {
            Some(c) => c,
            None => continue, // counters and interned-conn (cpu_span) lines
        };
        let f = by_conn.entry(conn).or_default();
        match kind(v) {
            "seg_tx" => {
                f.tx_segs += num(v, "a");
                f.tx_bytes += num(v, "b");
            }
            "seg_retx" => f.retx_segs += num(v, "a"),
            "ack_rx" => f.acks += 1,
            "pacing_fire" => f.pacing_fires += 1,
            "rto_fire" => f.rto_fires += 1,
            "cwnd_update" => f.last_cwnd = num(v, "a"),
            "pacing_rate" => f.last_rate_bps = num(v, "a"),
            "cc_phase" => {
                f.last_phase = v.get("b").and_then(Value::as_str).unwrap_or("").to_string();
            }
            _ => {}
        }
    }
    if by_conn.is_empty() {
        fail(format!("{path}: no per-connection events"));
    }
    println!(
        "{:>5} {:>9} {:>10} {:>7} {:>9} {:>7} {:>10} {:>12} {:>11} {:>12}",
        "conn", "tx segs", "tx MB", "retx", "acks", "rto", "pacing", "cwnd", "rate Mbps", "phase"
    );
    for (conn, f) in &by_conn {
        println!(
            "{conn:>5} {:>9} {:>10.2} {:>7} {:>9} {:>7} {:>10} {:>12} {:>11.1} {:>12}",
            f.tx_segs,
            f.tx_bytes as f64 / 1e6,
            f.retx_segs,
            f.acks,
            f.rto_fires,
            f.pacing_fires,
            f.last_cwnd,
            f.last_rate_bps as f64 / 1e6,
            if f.last_phase.is_empty() {
                "-"
            } else {
                &f.last_phase
            },
        );
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.as_slice() {
        [cmd, path] if cmd == "inspect" => inspect(path),
        [cmd, path] if cmd == "top" => top(path),
        [cmd, path] if cmd == "flows" => flows(path),
        _ => {
            eprintln!("usage: trace <inspect|top|flows> <trace.jsonl>");
            std::process::exit(2);
        }
    }
}
