//! # mobile-bbr-bench
//!
//! The benchmark harness of the reproduction. Two binaries and two
//! Criterion suites:
//!
//! * **`repro`** — regenerates every figure and table of the paper:
//!   `cargo run --release -p mobile-bbr-bench --bin repro -- --exp all`.
//!   Prints each experiment's measurement table and its shape-check
//!   scorecard, and can emit Markdown/JSON for EXPERIMENTS.md.
//! * **`ablations`** — the design-choice studies DESIGN.md calls out:
//!   timer-cost sweep (how cheap must hrtimers get before the stride stops
//!   mattering — the §7.1.4 hardware-pacing question), socket-buffer-cap
//!   sweep (Table 2's plateau position), and governor comparison.
//! * **`benches/figures`** — Criterion timings of each figure's runner at
//!   reduced parameters (regression guard on simulation cost).
//! * **`benches/engine`** — micro-benchmarks of the hot simulation paths
//!   (event queue, pacing arithmetic, one simulated second per algorithm).
//! * **`simcheck`** — the deterministic scenario fuzzer: draws whole
//!   configurations, runs them through [`simcheck`]'s invariant-oracle
//!   library, shrinks failures to one-line repros, and (with the
//!   `simcheck-mutants` feature) proves each intentional mutation in
//!   `tcp_sim::mutants` is caught.

#![warn(missing_docs)]

pub mod cancel;
pub mod simcheck;

use experiments::{Experiment, ExperimentId, Params};

/// Run one experiment and return it with (text, markdown) renderings.
pub fn run_and_render(
    id: ExperimentId,
    params: &Params,
) -> Result<(Experiment, String, String), sim_core::Error> {
    let exp = id.run(params)?;
    let text = exp.render_text();
    let md = exp.render_markdown();
    Ok((exp, text, md))
}

/// Serialize experiments to a JSON document (for machine consumption).
pub fn to_json(experiments: &[Experiment]) -> String {
    serde_json::to_string_pretty(experiments).expect("experiments serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_pipeline_works() {
        let (exp, text, md) =
            run_and_render(ExperimentId::Fig9, &Params::smoke()).expect("fig9 completes");
        assert!(text.contains("FIG9"));
        assert!(md.contains("### FIG9"));
        let json = to_json(&[exp]);
        assert!(json.contains("\"id\""));
    }
}
