//! Failure-path tests for the `trace` inspector binary: damaged input must
//! exit 2 with a diagnostic on stderr — never panic — and missing files
//! exit 1 (I/O error, distinct from format errors).

use std::path::PathBuf;
use std::process::{Command, Output};

fn trace_bin() -> &'static str {
    env!("CARGO_BIN_EXE_trace")
}

fn write_temp(tag: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trace-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.jsonl"));
    std::fs::write(&path, contents).unwrap();
    path
}

fn run_inspect(path: &std::path::Path) -> Output {
    Command::new(trace_bin())
        .args(["inspect", path.to_str().unwrap()])
        .output()
        .expect("trace binary runs")
}

const VALID_HEADER: &str =
    r#"{"schema":"sim-trace/v1","events":1,"dropped":0,"counters":0,"strings":[]}"#;

#[test]
fn valid_minimal_trace_exits_zero() {
    let path = write_temp(
        "valid",
        &format!(
            "{VALID_HEADER}\n{}\n",
            r#"{"t":5,"k":"seg_tx","conn":0,"a":1,"b":1448}"#
        ),
    );
    let out = run_inspect(&path);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("valid sim-trace/v1"), "stdout: {stdout}");
}

#[test]
fn empty_file_exits_two() {
    let path = write_temp("empty", "");
    let out = run_inspect(&path);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("empty"), "stderr: {stderr}");
}

#[test]
fn malformed_header_exits_two() {
    let path = write_temp("badheader", "this is not json\n");
    let out = run_inspect(&path);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not JSON"));
}

#[test]
fn wrong_schema_exits_two() {
    let path = write_temp("wrongschema", "{\"schema\":\"something-else\"}\n");
    let out = run_inspect(&path);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("sim-trace/v1"));
}

#[test]
fn malformed_body_line_exits_two() {
    let path = write_temp("badbody", &format!("{VALID_HEADER}\n{{truncated\n"));
    let out = run_inspect(&path);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
}

#[test]
fn missing_fields_exit_two() {
    let path = write_temp("nofields", &format!("{VALID_HEADER}\n{}\n", r#"{"x":1}"#));
    let out = run_inspect(&path);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing"));
}

#[test]
fn unknown_trace_kind_exits_two() {
    let path = write_temp(
        "unknownkind",
        &format!(
            "{VALID_HEADER}\n{}\n",
            r#"{"t":5,"k":"warp_drive","conn":0,"a":0,"b":0}"#
        ),
    );
    let out = run_inspect(&path);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown event kind"), "stderr: {stderr}");
    assert!(stderr.contains("warp_drive"), "stderr: {stderr}");
}

#[test]
fn counter_lines_are_accepted() {
    // "counter" is not a TraceKind but is a legal synthetic series line.
    let path = write_temp(
        "counters",
        &format!(
            "{VALID_HEADER}\n{}\n{}\n",
            r#"{"t":3,"k":"counter","name":"cpu","v":7}"#,
            r#"{"t":5,"k":"seg_tx","conn":0,"a":1,"b":1448}"#
        ),
    );
    let out = run_inspect(&path);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn declared_event_count_mismatch_exits_two() {
    let path = write_temp(
        "mismatch",
        &format!(
            "{}\n{}\n",
            r#"{"schema":"sim-trace/v1","events":7,"dropped":0,"counters":0,"strings":[]}"#,
            r#"{"t":5,"k":"seg_tx","conn":0,"a":1,"b":1448}"#
        ),
    );
    let out = run_inspect(&path);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("declares"));
}

#[test]
fn missing_file_exits_one() {
    let out = Command::new(trace_bin())
        .args(["inspect", "/nonexistent/definitely-missing.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn bad_usage_exits_two() {
    let out = Command::new(trace_bin()).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
