//! Integration tests for the `simcheck` fuzzer: corpus health, CLI
//! behaviour, and the determinism contract (`--jobs N` output is
//! bit-identical to `--jobs 1`).

use mobile_bbr_bench::simcheck::{check_scenario, Scenario};
use std::path::PathBuf;
use std::process::Command;

fn corpus_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/simcheck_corpus.txt")
}

fn simcheck_bin() -> &'static str {
    env!("CARGO_BIN_EXE_simcheck")
}

#[test]
fn checked_in_corpus_parses_and_passes() {
    let corpus = sim_core::check::Corpus::load(corpus_path()).unwrap();
    assert!(
        !corpus.entries.is_empty(),
        "the checked-in corpus must seed at least one scenario"
    );
    for line in &corpus.entries {
        let scenario =
            Scenario::parse(line).unwrap_or_else(|e| panic!("corpus entry '{line}': {e}"));
        assert_eq!(
            scenario.spec_string(),
            *line,
            "corpus entries must be canonical specs (round-trip exactly)"
        );
        let violations = check_scenario(&scenario);
        assert!(
            violations.is_empty(),
            "corpus entry '{line}': {violations:?}"
        );
    }
}

#[test]
fn fuzz_output_is_bit_identical_across_jobs() {
    let run = |jobs: &str| {
        Command::new(simcheck_bin())
            .args([
                "--budget",
                "25",
                "--seed",
                "3",
                "--jobs",
                jobs,
                "--corpus",
                "/nonexistent/empty-corpus.txt",
                "--no-corpus-append",
            ])
            .output()
            .expect("simcheck runs")
    };
    let serial = run("1");
    let parallel = run("4");
    assert!(
        serial.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&serial.stderr)
    );
    assert_eq!(serial.status.code(), parallel.status.code());
    assert_eq!(
        serial.stdout, parallel.stdout,
        "stdout must be bit-identical for any --jobs value"
    );
}

#[test]
fn scenario_replay_cli_round_trip() {
    let out = Command::new(simcheck_bin())
        .args([
            "--scenario",
            "cc=bbr2,cpu=high,media=eth,conns=2,dur=500,warmup=200,seed=9",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("PASS "));
}

#[test]
fn bad_spec_and_bad_flags_exit_two() {
    let bad_spec = Command::new(simcheck_bin())
        .args(["--scenario", "cc=quic"])
        .output()
        .unwrap();
    assert_eq!(bad_spec.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_spec.stderr).contains("unknown cc"));

    let bad_flag = Command::new(simcheck_bin())
        .args(["--frobnicate"])
        .output()
        .unwrap();
    assert_eq!(bad_flag.status.code(), Some(2));

    let bad_jobs = Command::new(simcheck_bin())
        .args(["--jobs", "0"])
        .output()
        .unwrap();
    assert_eq!(bad_jobs.status.code(), Some(2));
}

/// Without the `simcheck-mutants` feature, `--mutant-check` must refuse
/// loudly instead of vacuously passing.
#[cfg(not(feature = "simcheck-mutants"))]
#[test]
fn mutant_check_requires_the_feature() {
    let out = Command::new(simcheck_bin())
        .args(["--mutant-check", "--budget", "5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("simcheck-mutants"));
}

/// With the feature on, every intentional mutation must be caught and
/// reported with a shrunk repro command.
#[cfg(feature = "simcheck-mutants")]
#[test]
fn every_mutant_is_caught_with_a_shrunk_repro() {
    let out = Command::new(simcheck_bin())
        .args(["--mutant-check", "--budget", "60", "--seed", "1"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "mutant escaped:\n{stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("mutant-check: 4/4 mutations caught"),
        "{stdout}"
    );
    for mutant in [
        "skip-timer-fire-charge",
        "sack-claim-extra",
        "skip-retx-count",
        "drop-pacing-arm",
    ] {
        assert!(stdout.contains(&format!("CAUGHT {mutant}")), "{stdout}");
    }
    assert!(
        stdout.matches("repro: simcheck --scenario").count() >= 4,
        "every catch must come with a repro command:\n{stdout}"
    );
}
