//! Criterion benches: one per paper figure/table.
//!
//! Each bench times the figure's *runner* at reduced parameters and, once
//! per process, prints the reduced measurement table — so `cargo bench`
//! both regression-guards simulation cost and regenerates every artifact's
//! rows. (The full-fidelity tables come from the `repro` binary; see
//! EXPERIMENTS.md.)

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{ExperimentId, Params};
use std::sync::Once;
use std::time::Duration;

static PRINT_ONCE: [Once; 17] = [const { Once::new() }; 17];

fn bench_experiment(c: &mut Criterion, idx: usize, id: ExperimentId) {
    let params = Params::smoke();
    // Print the regenerated (reduced) table once so `cargo bench` output
    // contains every figure's rows.
    PRINT_ONCE[idx].call_once(|| {
        let exp = id.run(&params).expect("experiment completes");
        println!("\n{}", exp.render_text());
    });
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function(id.cli_name(), |b| {
        b.iter(|| {
            let exp = id.run(&params).expect("experiment completes");
            std::hint::black_box(exp.table.rows.len())
        })
    });
    group.finish();
}

fn figures(c: &mut Criterion) {
    for (idx, id) in ExperimentId::ALL.into_iter().enumerate() {
        bench_experiment(c, idx, id);
    }
}

criterion_group!(benches, figures);
criterion_main!(benches);
