//! Micro-benchmarks of the simulation engine's hot paths.

use congestion::CcKind;
use cpu_model::{CpuConfig, DeviceProfile};
use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::event::reference::ReferenceQueue;
use sim_core::event::EventQueue;
use sim_core::rng::SimRng;
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;
use std::time::Duration;
use tcp_sim::{Pacer, PacingConfig, SimConfig, StackSim};

fn event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::new(7);
            for _ in 0..10_000 {
                q.schedule_at(SimTime::from_nanos(rng.below(1_000_000_000)), 1u32);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum += e.event as u64;
            }
            std::hint::black_box(sum)
        })
    });
}

/// The simulator's dominant timer pattern: a burst of re-arms (every send
/// re-arms the pacing timer, every ACK re-arms the RTO) per delivered
/// event, at a constant population of concurrent timers. This is the
/// schedule→cancel→reschedule workload the timer wheel is built for; the
/// `reference` twin benchmarks the retained heap + hash-set queue so the
/// speedup is measured, not asserted. Mirrors the `perf` bin's churn loop.
fn timer_rearm(c: &mut Criterion) {
    const ROUNDS: usize = 10_000;
    const REARMS_PER_POP: usize = 4;
    macro_rules! churn {
        ($q:expr, $flows:expr) => {{
            let mut q = $q;
            let mut timers: Vec<_> = (0..$flows as u64)
                .map(|i| q.schedule_at(SimTime::from_nanos(1_000 + 37 * i), i))
                .collect();
            let mut j = 0usize;
            for _round in 0..ROUNDS {
                for _ in 0..REARMS_PER_POP {
                    q.cancel(timers[j]);
                    timers[j] = q.schedule_after(SimDuration::from_micros(5), j as u64);
                }
                let e = q.pop().expect("population stays positive");
                timers[e.event as usize] =
                    q.schedule_at(e.at + SimDuration::from_micros(7), e.event);
                j += 1;
                if j == $flows {
                    j = 0;
                }
            }
            std::hint::black_box(q.now())
        }};
    }
    for flows in [1usize, 20, 200] {
        c.bench_function(&format!("timer_rearm/wheel_{flows}_flows"), |b| {
            b.iter(|| churn!(EventQueue::<u64>::new(), flows))
        });
        c.bench_function(&format!("timer_rearm/reference_{flows}_flows"), |b| {
            b.iter(|| churn!(ReferenceQueue::<u64>::new(), flows))
        });
    }
}

fn pacing_math(c: &mut Criterion) {
    c.bench_function("pacer/on_send_1k", |b| {
        let rate = Bandwidth::from_mbps(140);
        b.iter(|| {
            let mut p = Pacer::new(PacingConfig::with_stride(5), 1448);
            let mut t = SimTime::ZERO;
            for _ in 0..1_000 {
                p.on_send(t, 14_480, rate);
                t = p.next_release();
            }
            std::hint::black_box(p.next_release())
        })
    });
}

fn one_simulated_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_second");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8));
    for (name, cc, cpu) in [
        ("cubic_lowend_20c", CcKind::Cubic, CpuConfig::LowEnd),
        ("bbr_lowend_20c", CcKind::Bbr, CpuConfig::LowEnd),
        ("bbr_highend_1c", CcKind::Bbr, CpuConfig::HighEnd),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let conns = if cpu == CpuConfig::HighEnd { 1 } else { 20 };
                let cfg = SimConfig::builder(DeviceProfile::pixel4(), cpu, cc, conns)
                    .duration(SimDuration::from_secs(1))
                    .warmup(SimDuration::from_millis(300))
                    .build()
                    .expect("valid config");
                std::hint::black_box(StackSim::new(cfg).run().goodput_mbps())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    event_queue,
    timer_rearm,
    pacing_math,
    one_simulated_second
);
criterion_main!(benches);
