//! Micro-benchmarks of the simulation engine's hot paths.

use congestion::CcKind;
use cpu_model::{CpuConfig, DeviceProfile};
use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::event::EventQueue;
use sim_core::rng::SimRng;
use sim_core::time::{SimDuration, SimTime};
use sim_core::units::Bandwidth;
use std::time::Duration;
use tcp_sim::{Pacer, PacingConfig, SimConfig, StackSim};

fn event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::new(7);
            for _ in 0..10_000 {
                q.schedule_at(SimTime::from_nanos(rng.below(1_000_000_000)), 1u32);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum += e.event as u64;
            }
            std::hint::black_box(sum)
        })
    });
}

fn pacing_math(c: &mut Criterion) {
    c.bench_function("pacer/on_send_1k", |b| {
        let rate = Bandwidth::from_mbps(140);
        b.iter(|| {
            let mut p = Pacer::new(PacingConfig::with_stride(5), 1448);
            let mut t = SimTime::ZERO;
            for _ in 0..1_000 {
                p.on_send(t, 14_480, rate);
                t = p.next_release();
            }
            std::hint::black_box(p.next_release())
        })
    });
}

fn one_simulated_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_second");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8));
    for (name, cc, cpu) in [
        ("cubic_lowend_20c", CcKind::Cubic, CpuConfig::LowEnd),
        ("bbr_lowend_20c", CcKind::Bbr, CpuConfig::LowEnd),
        ("bbr_highend_1c", CcKind::Bbr, CpuConfig::HighEnd),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let conns = if cpu == CpuConfig::HighEnd { 1 } else { 20 };
                let mut cfg = SimConfig::new(DeviceProfile::pixel4(), cpu, cc, conns);
                cfg.duration = SimDuration::from_secs(1);
                cfg.warmup = SimDuration::from_millis(300);
                std::hint::black_box(StackSim::new(cfg).run().goodput_mbps())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, event_queue, pacing_math, one_simulated_second);
criterion_main!(benches);
