//! # iperf
//!
//! The measurement harness of the reproduction: an iPerf3-like bulk-upload
//! workload runner over [`tcp_sim::StackSim`].
//!
//! The paper's §3.2 protocol: "Every iPerf3 result that we present is
//! averaged over at least 10 experiment runs where iPerf3 sends data for
//! 5 minutes." Simulated time is cheap but not free; the equivalent here is
//! a configurable number of *seeded repetitions* of a shorter steady-state
//! window (slow start excluded via the warmup cutoff), aggregated into a
//! [`report::RunReport`] with mean ± standard deviation. Determinism means
//! a report is exactly reproducible from its seed list.

#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod sweep;

pub use report::{render_timeline, RunReport, SeedResult};
pub use runner::{run_averaged, run_averaged_parallel, RunSpec};
pub use sweep::{run_specs_sweep, SeedCell};
