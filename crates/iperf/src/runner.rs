//! Seeded repetition runner.

use crate::report::{RunReport, SeedResult};
use tcp_sim::{SimConfig, StackSim};

/// A labelled experiment: one simulation configuration repeated over seeds.
#[derive(Clone)]
pub struct RunSpec {
    /// Display label (appears in reports and tables).
    pub label: String,
    /// Base simulation configuration; the seed field is overridden per run.
    pub config: SimConfig,
    /// Seeds to repeat over (paper: "averaged over at least 10 runs").
    pub seeds: Vec<u64>,
}

impl RunSpec {
    /// A spec over seeds `1..=n`.
    pub fn new(label: impl Into<String>, config: SimConfig, n_seeds: u64) -> Self {
        assert!(n_seeds >= 1, "need at least one seed");
        RunSpec {
            label: label.into(),
            config,
            seeds: (1..=n_seeds).collect(),
        }
    }

    fn run_seed(&self, seed: u64) -> SeedResult {
        let mut cfg = self.config.clone();
        cfg.seed = seed;
        let res = StackSim::new(cfg).run();
        SeedResult::from_sim(seed, &res)
    }
}

/// Run a spec sequentially and aggregate.
pub fn run_averaged(spec: &RunSpec) -> RunReport {
    let seeds = spec.seeds.iter().map(|&s| spec.run_seed(s)).collect();
    RunReport::aggregate(spec.label.clone(), seeds)
}

/// Run a spec with one worker per seed via the sweep engine (simulations
/// are independent and CPU-bound). Bit-identical to [`run_averaged`] by
/// the engine's determinism contract (`sim_core::sweep`); no caching.
///
/// Errors only on cancellation ([`sim_core::error::Error::Interrupted`]
/// via the process-global Ctrl-C flag) — there is no checkpoint here.
pub fn run_averaged_parallel(spec: &RunSpec) -> Result<RunReport, sim_core::error::Error> {
    let opts = sim_core::sweep::SweepOptions {
        jobs: spec.seeds.len().max(1),
        ..sim_core::sweep::SweepOptions::default()
    };
    Ok(
        crate::sweep::run_specs_sweep(std::slice::from_ref(spec), &opts)?
            .pop()
            .expect("one spec in, one report out"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use congestion::CcKind;
    use cpu_model::{CpuConfig, DeviceProfile};
    use sim_core::time::SimDuration;

    fn tiny_config() -> SimConfig {
        SimConfig::builder(
            DeviceProfile::pixel4(),
            CpuConfig::HighEnd,
            CcKind::Cubic,
            2,
        )
        .duration(SimDuration::from_millis(800))
        .warmup(SimDuration::from_millis(300))
        .build()
        .expect("tiny test config is valid")
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let spec = RunSpec::new("agree", tiny_config(), 3);
        let seq = run_averaged(&spec);
        let par = run_averaged_parallel(&spec).expect("uncancelled sweep completes");
        assert_eq!(
            seq.goodput_mbps, par.goodput_mbps,
            "determinism across threading"
        );
        assert_eq!(seq.mean_retx, par.mean_retx);
    }

    #[test]
    fn seeds_are_reflected_in_results() {
        let spec = RunSpec::new("seeds", tiny_config(), 3);
        let rep = run_averaged(&spec);
        let seeds: Vec<u64> = rep.seeds.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![1, 2, 3]);
    }

    #[test]
    fn repeated_runs_are_reproducible() {
        let spec = RunSpec::new("repro", tiny_config(), 2);
        let a = run_averaged(&spec);
        let b = run_averaged(&spec);
        assert_eq!(a.goodput_mbps, b.goodput_mbps);
        assert_eq!(a.mean_rtt_ms, b.mean_rtt_ms);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        RunSpec::new("none", tiny_config(), 0);
    }
}
