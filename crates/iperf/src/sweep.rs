//! Sweep-engine integration: one cell per (configuration, seed).
//!
//! This is the bridge between [`RunSpec`]'s seed lists and
//! [`sim_core::sweep`]'s generic engine. Each seed of each spec becomes one
//! [`SeedCell`]; the engine fans cells across workers, serves repeats from
//! the content-addressed run cache, and returns outputs in submission
//! order, which [`run_specs_sweep`] folds back into per-spec
//! [`RunReport`]s.
//!
//! The cache key is the canonical JSON of the **entire** [`SimConfig`]
//! (with the cell's seed already applied), so any config change — device,
//! path, pacing stride, duration, seed — yields a different key.
//! Configurations that write a pcap or carry flight-data telemetry are
//! never cached: a hit would skip the side effect (the capture, the
//! samples).

use crate::report::{RunReport, SeedResult};
use crate::runner::RunSpec;
use sim_core::error::Error;
use sim_core::sweep::{run_sweep_streaming, SweepCell, SweepOptions};
use sim_core::SimRng;
use std::sync::Arc;
use tcp_sim::{SimConfig, StackSim};

/// One (configuration, seed) simulation in a sweep.
pub struct SeedCell {
    /// The owning spec's display label.
    pub label: String,
    /// Full configuration with the cell's seed already applied. Shared so
    /// handing it to [`StackSim`] does not deep-copy the config per cell.
    pub config: Arc<SimConfig>,
}

impl SweepCell for SeedCell {
    type Output = SeedResult;

    fn label(&self) -> String {
        format!("{} [seed {}]", self.label, self.config.seed)
    }

    fn key_bytes(&self) -> Vec<u8> {
        serde_json::to_string(&self.config)
            .expect("SimConfig serializes infallibly")
            .into_bytes()
    }

    /// The simulation derives all randomness from `config.seed`, so the
    /// engine-provided split RNG is deliberately unused — the cell is a
    /// pure function of its key either way, which is what the determinism
    /// contract needs.
    fn run(&self, _rng: SimRng) -> SeedResult {
        let res = StackSim::from_arc(self.config.clone()).run();
        SeedResult::from_sim(self.config.seed, &res)
    }

    fn encode(output: &SeedResult) -> Option<Vec<u8>> {
        // 23 × 8-byte little-endian words. Bumping the width invalidates
        // cache entries written by older binaries: `decode` rejects them by
        // length and the engine recomputes — a safe, silent migration.
        let mut buf = Vec::with_capacity(184);
        buf.extend_from_slice(&output.seed.to_le_bytes());
        buf.extend_from_slice(&output.goodput_mbps.to_le_bytes());
        buf.extend_from_slice(&output.mean_rtt_ms.to_le_bytes());
        buf.extend_from_slice(&output.p95_rtt_ms.to_le_bytes());
        buf.extend_from_slice(&output.retx.to_le_bytes());
        buf.extend_from_slice(&output.fairness.to_le_bytes());
        buf.extend_from_slice(&output.mean_skb_bytes.to_le_bytes());
        buf.extend_from_slice(&output.mean_idle_ms.to_le_bytes());
        buf.extend_from_slice(&output.mean_freq_hz.to_le_bytes());
        buf.extend_from_slice(&output.timer_fires.to_le_bytes());
        buf.extend_from_slice(&output.pool_misses.to_le_bytes());
        buf.extend_from_slice(&output.pool_misses_steady.to_le_bytes());
        buf.extend_from_slice(&output.cycles_total.to_le_bytes());
        buf.extend_from_slice(&output.cycles_timers.to_le_bytes());
        buf.extend_from_slice(&output.cycles_acks.to_le_bytes());
        buf.extend_from_slice(&output.cycles_cc.to_le_bytes());
        buf.extend_from_slice(&output.cycles_data.to_le_bytes());
        buf.extend_from_slice(&output.cycles_other.to_le_bytes());
        buf.extend_from_slice(&output.fleet_devices.to_le_bytes());
        buf.extend_from_slice(&output.fleet_jain.to_le_bytes());
        buf.extend_from_slice(&output.fleet_penalty_fraction.to_le_bytes());
        buf.extend_from_slice(&output.fleet_shared_drops.to_le_bytes());
        buf.extend_from_slice(&output.fleet_dev0_share.to_le_bytes());
        Some(buf)
    }

    fn decode(bytes: &[u8]) -> Option<SeedResult> {
        if bytes.len() != 184 {
            return None;
        }
        let u = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        let f = |i: usize| f64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        Some(SeedResult {
            seed: u(0),
            goodput_mbps: f(1),
            mean_rtt_ms: f(2),
            p95_rtt_ms: f(3),
            retx: u(4),
            fairness: f(5),
            mean_skb_bytes: f(6),
            mean_idle_ms: f(7),
            mean_freq_hz: f(8),
            timer_fires: u(9),
            pool_misses: u(10),
            pool_misses_steady: u(11),
            cycles_total: u(12),
            cycles_timers: u(13),
            cycles_acks: u(14),
            cycles_cc: u(15),
            cycles_data: u(16),
            cycles_other: u(17),
            fleet_devices: u(18),
            fleet_jain: f(19),
            fleet_penalty_fraction: f(20),
            fleet_shared_drops: u(21),
            fleet_dev0_share: f(22),
        })
    }

    /// Side-effectful runs are never cached: a pcap hit would skip the
    /// capture, and a telemetry hit would return scalars without the
    /// flight-data samples the caller asked for.
    fn cacheable(&self) -> bool {
        self.config.pcap.is_none() && self.config.telemetry.is_none()
    }
}

/// Run every seed of every spec through the sweep engine, aggregating into
/// one [`RunReport`] per spec (same order as `specs`) **as results
/// stream out**: a spec's report is folded the moment its last seed is
/// released, so peak memory holds one spec's seed list plus the engine's
/// bounded in-flight window — never the whole grid.
///
/// Errors propagate from the engine: [`Error::Interrupted`] on
/// cancellation (the checkpoint, if any, has already been finalized) and
/// I/O errors from an unwritable checkpoint file.
pub fn run_specs_sweep(specs: &[RunSpec], opts: &SweepOptions) -> Result<Vec<RunReport>, Error> {
    let mut cells = Vec::new();
    for spec in specs {
        for &seed in &spec.seeds {
            let mut config = spec.config.clone();
            config.seed = seed;
            cells.push(SeedCell {
                label: spec.label.clone(),
                config: Arc::new(config),
            });
        }
    }
    let mut reports: Vec<RunReport> = Vec::with_capacity(specs.len());
    let mut pending: Vec<SeedResult> = Vec::new();
    let (mut misses, mut steady) = (0u64, 0u64);
    // Outputs arrive in submission order, so cell i belongs to the spec at
    // reports.len(): fold seeds until the current spec's list is full,
    // then aggregate and move on (skipping any zero-seed specs).
    let drain = |pending: &mut Vec<SeedResult>, reports: &mut Vec<RunReport>| {
        while reports.len() < specs.len() && pending.len() == specs[reports.len()].seeds.len() {
            let seeds = std::mem::take(pending);
            reports.push(RunReport::aggregate(
                specs[reports.len()].label.clone(),
                seeds,
            ));
        }
    };
    drain(&mut pending, &mut reports);
    run_sweep_streaming(&cells, opts, |_idx, out, _cell| {
        misses += out.pool_misses;
        steady += out.pool_misses_steady;
        pending.push(out);
        drain(&mut pending, &mut reports);
    })?;
    debug_assert_eq!(reports.len(), specs.len(), "every spec aggregated");
    // Roll per-seed pool-miss counts into the engine's global run metrics
    // so `repro`'s final summary can report hot-path allocator health.
    sim_core::sweep::note_pool_misses(misses, steady);
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_averaged;
    use congestion::CcKind;
    use cpu_model::{CpuConfig, DeviceProfile};
    use sim_core::time::SimDuration;

    fn tiny_config() -> SimConfig {
        SimConfig::builder(
            DeviceProfile::pixel4(),
            CpuConfig::HighEnd,
            CcKind::Cubic,
            2,
        )
        .duration(SimDuration::from_millis(800))
        .warmup(SimDuration::from_millis(300))
        .build()
        .expect("tiny test config is valid")
    }

    fn temp_cache(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("iperf-sweep-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sweep_matches_serial_runner() {
        let spec = RunSpec::new("sweep-agree", tiny_config(), 3);
        let baseline = run_averaged(&spec);
        for jobs in [1, 3] {
            let opts = SweepOptions {
                jobs,
                ..SweepOptions::default()
            };
            let swept = run_specs_sweep(std::slice::from_ref(&spec), &opts)
                .expect("uncancelled sweep completes");
            assert_eq!(swept.len(), 1);
            assert_eq!(swept[0].goodput_mbps, baseline.goodput_mbps, "jobs={jobs}");
            assert_eq!(swept[0].mean_rtt_ms, baseline.mean_rtt_ms, "jobs={jobs}");
            assert_eq!(swept[0].mean_retx, baseline.mean_retx, "jobs={jobs}");
        }
    }

    #[test]
    fn seed_result_codec_round_trips_exactly() {
        let original = SeedResult {
            seed: 42,
            goodput_mbps: 123.456789,
            mean_rtt_ms: 3.25,
            p95_rtt_ms: 7.125,
            retx: 17,
            fairness: 0.987654321,
            mean_skb_bytes: 52_431.5,
            mean_idle_ms: 0.015625,
            mean_freq_hz: 5.76e8,
            timer_fires: 123_456,
            pool_misses: 7,
            pool_misses_steady: 1,
            cycles_total: 9_876_543_210,
            cycles_timers: 4_000_000_000,
            cycles_acks: 2_000_000_000,
            cycles_cc: 1_500_000_000,
            cycles_data: 2_000_000_000,
            cycles_other: 376_543_210,
            fleet_devices: 512,
            fleet_jain: 0.8125,
            fleet_penalty_fraction: 0.375,
            fleet_shared_drops: 4242,
            fleet_dev0_share: 0.6875,
        };
        let bytes = SeedCell::encode(&original).unwrap();
        assert_eq!(bytes.len(), 184);
        let decoded = SeedCell::decode(&bytes).unwrap();
        assert_eq!(decoded.seed, original.seed);
        assert_eq!(
            decoded.goodput_mbps.to_bits(),
            original.goodput_mbps.to_bits()
        );
        assert_eq!(decoded.fairness.to_bits(), original.fairness.to_bits());
        assert_eq!(decoded.timer_fires, original.timer_fires);
        assert_eq!(decoded.pool_misses, original.pool_misses);
        assert_eq!(decoded.pool_misses_steady, original.pool_misses_steady);
        assert_eq!(decoded.cycles_total, original.cycles_total);
        assert_eq!(decoded.cycles_other, original.cycles_other);
        assert_eq!(decoded.fleet_devices, original.fleet_devices);
        assert_eq!(decoded.fleet_jain.to_bits(), original.fleet_jain.to_bits());
        assert_eq!(decoded.fleet_shared_drops, original.fleet_shared_drops);
        assert_eq!(
            decoded.fleet_dev0_share.to_bits(),
            original.fleet_dev0_share.to_bits()
        );
        assert!(
            SeedCell::decode(&bytes[..183]).is_none(),
            "short buffer rejected"
        );
        assert!(
            SeedCell::decode(&bytes[..176]).is_none(),
            "pre-extension cache entries rejected (engine recomputes)"
        );
    }

    #[test]
    fn cached_rerun_is_identical() {
        let dir = temp_cache("identical");
        let spec = RunSpec::new("cached", tiny_config(), 2);
        let opts = SweepOptions {
            cache_dir: Some(dir.clone()),
            ..SweepOptions::default()
        };
        let cold = run_specs_sweep(std::slice::from_ref(&spec), &opts).expect("completes");
        let warm = run_specs_sweep(std::slice::from_ref(&spec), &opts).expect("completes");
        assert_eq!(cold[0].goodput_mbps, warm[0].goodput_mbps);
        assert_eq!(cold[0].goodput_std, warm[0].goodput_std);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pcap_configs_are_uncacheable() {
        let mut cfg = tiny_config();
        cfg.pcap = Some(std::path::PathBuf::from("/tmp/unused.pcap"));
        let cell = SeedCell {
            label: "pcap".into(),
            config: Arc::new(cfg),
        };
        assert!(!cell.cacheable());
        let cell = SeedCell {
            label: "plain".into(),
            config: Arc::new(tiny_config()),
        };
        assert!(cell.cacheable());
    }

    #[test]
    fn telemetry_configs_are_uncacheable() {
        let mut cfg = tiny_config();
        cfg.telemetry = Some(sim_core::SimDuration::from_millis(10));
        let cell = SeedCell {
            label: "telemetry".into(),
            config: Arc::new(cfg),
        };
        assert!(
            !cell.cacheable(),
            "a cache hit would skip the flight-data samples"
        );
    }

    #[test]
    fn distinct_configs_have_distinct_keys() {
        let a = SeedCell {
            label: "a".into(),
            config: Arc::new(tiny_config()),
        };
        let mut cfg = tiny_config();
        cfg.seed = 2;
        let b = SeedCell {
            label: "a".into(),
            config: Arc::new(cfg),
        };
        assert_ne!(a.key_bytes(), b.key_bytes(), "seed must be part of the key");
        let mut cfg = tiny_config();
        cfg.pacing.stride += 1;
        let c = SeedCell {
            label: "a".into(),
            config: Arc::new(cfg),
        };
        assert_ne!(
            a.key_bytes(),
            c.key_bytes(),
            "stride must be part of the key"
        );
    }
}
