//! Aggregated measurement reports.

use serde::Serialize;
use sim_core::metrics::Summary;
use tcp_sim::SimResult;

/// One seeded repetition's headline numbers.
#[derive(Debug, Clone, Serialize)]
pub struct SeedResult {
    /// The seed that produced this run.
    pub seed: u64,
    /// Aggregate goodput, Mbps.
    pub goodput_mbps: f64,
    /// Mean TCP RTT, ms.
    pub mean_rtt_ms: f64,
    /// 95th-percentile RTT, ms.
    pub p95_rtt_ms: f64,
    /// Total retransmitted packets.
    pub retx: u64,
    /// Jain fairness across connections.
    pub fairness: f64,
    /// Mean socket-buffer (pacing-period) length, bytes.
    pub mean_skb_bytes: f64,
    /// Mean pacing idle per period, ms.
    pub mean_idle_ms: f64,
    /// Time-average CPU frequency, Hz.
    pub mean_freq_hz: f64,
    /// Pacing-timer fires over the run.
    pub timer_fires: u64,
    /// Hot-path buffer-pool misses over the whole run (cold-start fills).
    pub pool_misses: u64,
    /// Pool misses during the measurement window only — a healthy run
    /// keeps this at zero (the steady-state no-allocation invariant).
    pub pool_misses_steady: u64,
    /// Modelled CPU cycles charged during the measurement window.
    pub cycles_total: u64,
    /// Measurement-window cycles spent on pacing-timer traffic.
    pub cycles_timers: u64,
    /// Measurement-window cycles spent on generic ACK processing.
    pub cycles_acks: u64,
    /// Measurement-window cycles spent in the CC's model update.
    pub cycles_cc: u64,
    /// Measurement-window cycles spent building/copying data (per-byte +
    /// fixed skb transmit work).
    pub cycles_data: u64,
    /// Remaining measurement-window cycles (retransmit, RTO, misc).
    pub cycles_other: u64,
    /// Devices in the fleet (0 for non-fleet runs; every `fleet_*` field
    /// below is then 0 too).
    pub fleet_devices: u64,
    /// Jain's fairness index over per-device goodput.
    pub fleet_jain: f64,
    /// Fraction of devices in the pacing-penalty regime.
    pub fleet_penalty_fraction: f64,
    /// Packets dropped at the shared bottleneck's queue.
    pub fleet_shared_drops: u64,
    /// Device 0's fraction of aggregate fleet goodput (0.0 for non-fleet
    /// runs). In the FAIRNESS experiment's two-device duels device 0 is
    /// the BBR-variant contender, so this is its bandwidth share.
    pub fleet_dev0_share: f64,
}

impl SeedResult {
    /// Extract the headline numbers from a raw simulation result.
    pub fn from_sim(seed: u64, res: &SimResult) -> Self {
        SeedResult {
            seed,
            goodput_mbps: res.goodput_mbps(),
            mean_rtt_ms: res.mean_rtt_ms,
            p95_rtt_ms: res.p95_rtt_ms,
            retx: res.total_retx,
            fairness: res.fairness,
            mean_skb_bytes: res.mean_skb_bytes,
            mean_idle_ms: res.mean_idle_ms,
            mean_freq_hz: res.cpu.mean_freq_hz,
            timer_fires: res.counters.get("timer_fires"),
            pool_misses: res.counters.get("pool_run_misses") + res.counters.get("pool_sack_misses"),
            pool_misses_steady: res.counters.get("pool_run_misses_steady")
                + res.counters.get("pool_sack_misses_steady"),
            cycles_total: res.counters.get("cycles_steady_total"),
            cycles_timers: res.counters.get("cycles_steady_timers"),
            cycles_acks: res.counters.get("cycles_steady_acks"),
            cycles_cc: res.counters.get("cycles_steady_cc_model"),
            cycles_data: res.counters.get("cycles_steady_data"),
            cycles_other: res.counters.get("cycles_steady_other"),
            fleet_devices: res.fleet.as_ref().map_or(0, |f| f.devices),
            fleet_jain: res.fleet.as_ref().map_or(0.0, |f| f.jain_devices),
            fleet_penalty_fraction: res
                .fleet
                .as_ref()
                .map_or(0.0, |f| f.pacing_penalty_fraction),
            fleet_shared_drops: res.fleet.as_ref().map_or(0, |f| f.shared_drops),
            fleet_dev0_share: res.fleet.as_ref().map_or(0.0, |f| f.dev0_share),
        }
    }
}

/// A multi-seed aggregate — the unit every figure's data point is made of.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Human-readable label ("BBR, Low-End, 20 conns").
    pub label: String,
    /// Per-seed results.
    pub seeds: Vec<SeedResult>,
    /// Mean goodput across seeds, Mbps.
    pub goodput_mbps: f64,
    /// Standard deviation of goodput across seeds.
    pub goodput_std: f64,
    /// Mean RTT across seeds, ms.
    pub mean_rtt_ms: f64,
    /// Mean p95 RTT across seeds, ms.
    pub p95_rtt_ms: f64,
    /// Mean retransmissions across seeds.
    pub mean_retx: f64,
    /// Mean Jain fairness.
    pub fairness: f64,
    /// Mean socket-buffer length, bytes.
    pub mean_skb_bytes: f64,
    /// Mean pacing idle, ms.
    pub mean_idle_ms: f64,
    /// Mean per-device Jain index across seeds (0.0 for non-fleet specs).
    pub fleet_jain: f64,
    /// Mean pacing-penalty fraction across seeds (0.0 for non-fleet specs).
    pub fleet_penalty_fraction: f64,
    /// Mean shared-bottleneck drops across seeds (0.0 for non-fleet specs).
    pub fleet_shared_drops: f64,
    /// Mean device-0 goodput share across seeds (0.0 for non-fleet specs).
    pub fleet_dev0_share: f64,
}

impl RunReport {
    /// Aggregate seed results under a label.
    pub fn aggregate(label: impl Into<String>, seeds: Vec<SeedResult>) -> Self {
        assert!(!seeds.is_empty(), "a report needs at least one run");
        let mut goodput = Summary::new();
        let mut rtt = Summary::new();
        let mut p95 = Summary::new();
        let mut retx = Summary::new();
        let mut fair = Summary::new();
        let mut skb = Summary::new();
        let mut idle = Summary::new();
        let mut fleet_jain = Summary::new();
        let mut fleet_penalty = Summary::new();
        let mut fleet_drops = Summary::new();
        let mut fleet_dev0 = Summary::new();
        for s in &seeds {
            goodput.record(s.goodput_mbps);
            rtt.record(s.mean_rtt_ms);
            p95.record(s.p95_rtt_ms);
            retx.record(s.retx as f64);
            fair.record(s.fairness);
            skb.record(s.mean_skb_bytes);
            idle.record(s.mean_idle_ms);
            fleet_jain.record(s.fleet_jain);
            fleet_penalty.record(s.fleet_penalty_fraction);
            fleet_drops.record(s.fleet_shared_drops as f64);
            fleet_dev0.record(s.fleet_dev0_share);
        }
        RunReport {
            label: label.into(),
            goodput_mbps: goodput.mean(),
            goodput_std: goodput.std_dev(),
            mean_rtt_ms: rtt.mean(),
            p95_rtt_ms: p95.mean(),
            mean_retx: retx.mean(),
            fairness: fair.mean(),
            mean_skb_bytes: skb.mean(),
            mean_idle_ms: idle.mean(),
            fleet_jain: fleet_jain.mean(),
            fleet_penalty_fraction: fleet_penalty.mean(),
            fleet_shared_drops: fleet_drops.mean(),
            fleet_dev0_share: fleet_dev0.mean(),
            seeds,
        }
    }

    /// An iPerf3-style one-line summary.
    pub fn summary_line(&self) -> String {
        format!(
            "[SUM] {:<36} {:>8.1} Mbps (±{:>5.1})  rtt {:>6.2} ms  retx {:>8.0}",
            self.label, self.goodput_mbps, self.goodput_std, self.mean_rtt_ms, self.mean_retx
        )
    }

    /// CSV header matching [`RunReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "label,goodput_mbps,goodput_std,mean_rtt_ms,p95_rtt_ms,mean_retx,fairness,mean_skb_bytes,mean_idle_ms,seeds"
    }

    /// One CSV row for plotting pipelines.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{:.3},{:.3},{:.4},{:.4},{:.1},{:.4},{:.1},{:.4},{}",
            self.label.replace(',', ";"),
            self.goodput_mbps,
            self.goodput_std,
            self.mean_rtt_ms,
            self.p95_rtt_ms,
            self.mean_retx,
            self.fairness,
            self.mean_skb_bytes,
            self.mean_idle_ms,
            self.seeds.len(),
        )
    }
}

/// Render a goodput timeline ([`tcp_sim::SimResult::timeline`]) as
/// iPerf3-style per-interval lines.
pub fn render_timeline(timeline: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let mut prev = 0.0;
    for &(t, mbps) in timeline {
        let bytes = mbps * 1e6 / 8.0 * (t - prev);
        out.push_str(&format!(
            "[SUM] {:>6.2}-{:<6.2} sec  {:>8.2} MBytes  {:>8.1} Mbits/sec
",
            prev,
            t,
            bytes / 1e6,
            mbps
        ));
        prev = t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed_result(seed: u64, goodput: f64, rtt: f64, retx: u64) -> SeedResult {
        SeedResult {
            seed,
            goodput_mbps: goodput,
            mean_rtt_ms: rtt,
            p95_rtt_ms: rtt * 1.5,
            retx,
            fairness: 0.9,
            mean_skb_bytes: 4000.0,
            mean_idle_ms: 0.9,
            mean_freq_hz: 576e6,
            timer_fires: 1000,
            pool_misses: 4,
            pool_misses_steady: 0,
            cycles_total: 1_000_000,
            cycles_timers: 300_000,
            cycles_acks: 200_000,
            cycles_cc: 150_000,
            cycles_data: 250_000,
            cycles_other: 100_000,
            fleet_devices: 0,
            fleet_jain: 0.0,
            fleet_penalty_fraction: 0.0,
            fleet_shared_drops: 0,
            fleet_dev0_share: 0.0,
        }
    }

    #[test]
    fn aggregate_means_and_std() {
        let r = RunReport::aggregate(
            "test",
            vec![
                seed_result(1, 300.0, 2.0, 10),
                seed_result(2, 320.0, 3.0, 20),
                seed_result(3, 340.0, 4.0, 30),
            ],
        );
        assert!((r.goodput_mbps - 320.0).abs() < 1e-9);
        assert!((r.mean_rtt_ms - 3.0).abs() < 1e-9);
        assert!((r.mean_retx - 20.0).abs() < 1e-9);
        assert!(r.goodput_std > 0.0);
        assert_eq!(r.seeds.len(), 3);
    }

    #[test]
    fn single_seed_has_zero_std() {
        let r = RunReport::aggregate("one", vec![seed_result(1, 100.0, 1.0, 0)]);
        assert_eq!(r.goodput_std, 0.0);
        assert_eq!(r.goodput_mbps, 100.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_report_rejected() {
        RunReport::aggregate("none", vec![]);
    }

    #[test]
    fn csv_round_trip_structure() {
        let r = RunReport::aggregate("a,b", vec![seed_result(1, 100.0, 1.0, 0)]);
        let header_cols = RunReport::csv_header().split(',').count();
        let row = r.csv_row();
        assert_eq!(
            row.split(',').count(),
            header_cols,
            "row width matches header"
        );
        assert!(row.starts_with("a;b,"), "embedded commas escaped");
        assert!(row.ends_with(",1"), "seed count last");
    }

    #[test]
    fn timeline_renders_iperf_style() {
        let lines = render_timeline(&[(1.0, 100.0), (2.0, 200.0)]);
        let rows: Vec<&str> = lines.lines().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains("0.00-1.00"));
        assert!(rows[0].contains("100.0 Mbits/sec"));
        assert!(rows[1].contains("1.00-2.00"));
        // 200 Mbps over 1 s = 25 MBytes.
        assert!(rows[1].contains("25.00 MBytes"), "{}", rows[1]);
    }

    #[test]
    fn summary_line_contains_label_and_rate() {
        let r = RunReport::aggregate("BBR Low-End 20c", vec![seed_result(1, 138.0, 3.7, 42)]);
        let line = r.summary_line();
        assert!(line.contains("BBR Low-End 20c"));
        assert!(line.contains("138.0"));
    }
}
