//! On-disk corruption tests for the sweep run cache and the 144-byte
//! `SeedResult` codec.
//!
//! The cache is best-effort: any damaged entry — truncated file, flipped
//! payload bit, or a stale payload width from an older binary inside a
//! perfectly valid envelope — must be reported as `MissCorrupt`, silently
//! recomputed to the exact cold-run result, and rewritten. Nothing here
//! may ever panic the sweep.

use congestion::CcKind;
use cpu_model::{CpuConfig, DeviceProfile};
use iperf::runner::RunSpec;
use iperf::sweep::run_specs_sweep;
use sim_core::sweep::{fnv64, SweepOptions};
use sim_core::time::SimDuration;
use std::path::{Path, PathBuf};
use tcp_sim::SimConfig;

fn tiny_spec(label: &str) -> RunSpec {
    let cfg = SimConfig::builder(
        DeviceProfile::pixel4(),
        CpuConfig::HighEnd,
        CcKind::Cubic,
        1,
    )
    .duration(SimDuration::from_millis(600))
    .warmup(SimDuration::from_millis(200))
    .build()
    .expect("tiny test config is valid");
    RunSpec::new(label, cfg, 1)
}

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cache-codec-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The single `.bin` entry a one-cell sweep leaves in the cache.
fn sole_entry(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir exists after a cached sweep")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "bin"))
        .collect();
    assert_eq!(entries.len(), 1, "one cell leaves one cache entry");
    entries.pop().unwrap()
}

/// Cold-run a one-cell sweep against `dir` and return its goodput.
fn run_once(dir: &Path, label: &str) -> f64 {
    let opts = SweepOptions {
        cache_dir: Some(dir.to_path_buf()),
        ..SweepOptions::default()
    };
    let reports = run_specs_sweep(&[tiny_spec(label)], &opts).expect("uncancelled sweep completes");
    reports[0].goodput_mbps
}

#[test]
fn bit_flip_in_payload_recomputes_identically() {
    let dir = temp_cache("bitflip");
    let cold = run_once(&dir, "bitflip");

    let entry = sole_entry(&dir);
    let mut bytes = std::fs::read(&entry).unwrap();
    // Envelope header is 24 bytes (magic, version, len, checksum); flip a
    // bit inside the payload so only the checksum catches it.
    let idx = 24 + 40;
    assert!(bytes.len() > idx, "payload long enough to corrupt");
    bytes[idx] ^= 0x10;
    std::fs::write(&entry, &bytes).unwrap();

    let recomputed = run_once(&dir, "bitflip");
    assert_eq!(recomputed, cold, "recompute must match the cold run");
    // The corrupt entry was rewritten with a valid one: next run hits.
    let repaired = std::fs::read(&entry).unwrap();
    assert_ne!(repaired, bytes, "damaged entry must be replaced");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_recomputes_identically() {
    let dir = temp_cache("truncate");
    let cold = run_once(&dir, "truncate");

    let entry = sole_entry(&dir);
    let bytes = std::fs::read(&entry).unwrap();
    for keep in [0, 3, 23, bytes.len() - 1] {
        std::fs::write(&entry, &bytes[..keep]).unwrap();
        let recomputed = run_once(&dir, "truncate");
        assert_eq!(recomputed, cold, "truncated to {keep} bytes");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_80_byte_payload_in_valid_envelope_recomputes() {
    let dir = temp_cache("stale");
    let cold = run_once(&dir, "stale");

    // Craft a *checksum-valid* envelope whose payload is the pre-extension
    // 80-byte codec width: the envelope passes, `decode` rejects it by
    // length, and the engine must recompute (stale-codec migration path).
    let entry = sole_entry(&dir);
    let payload = vec![0u8; 80];
    let mut file = Vec::new();
    file.extend_from_slice(b"SWPC");
    file.extend_from_slice(&1u32.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&fnv64(&payload).to_le_bytes());
    file.extend_from_slice(&payload);
    std::fs::write(&entry, &file).unwrap();

    let recomputed = run_once(&dir, "stale");
    assert_eq!(recomputed, cold, "stale codec width must be recomputed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_and_oversized_length_never_panic() {
    let dir = temp_cache("garbage");
    let cold = run_once(&dir, "garbage");
    let entry = sole_entry(&dir);

    // Wrong magic entirely.
    std::fs::write(&entry, b"not a cache entry at all").unwrap();
    assert_eq!(run_once(&dir, "garbage"), cold);

    // Right magic, absurd length field (would allocate an exabyte if the
    // reader trusted it).
    let mut absurd = Vec::new();
    absurd.extend_from_slice(b"SWPC");
    absurd.extend_from_slice(&1u32.to_le_bytes());
    absurd.extend_from_slice(&u64::MAX.to_le_bytes());
    absurd.extend_from_slice(&0u64.to_le_bytes());
    std::fs::write(&entry, &absurd).unwrap();
    assert_eq!(run_once(&dir, "garbage"), cold);

    // Wrong version.
    let mut wrong_version = Vec::new();
    wrong_version.extend_from_slice(b"SWPC");
    wrong_version.extend_from_slice(&999u32.to_le_bytes());
    wrong_version.extend_from_slice(&0u64.to_le_bytes());
    wrong_version.extend_from_slice(&fnv64(&[]).to_le_bytes());
    std::fs::write(&entry, &wrong_version).unwrap();
    assert_eq!(run_once(&dir, "garbage"), cold);

    let _ = std::fs::remove_dir_all(&dir);
}
