//! Measurement plumbing: counters, streaming summaries, histograms, time
//! series, and utilization windows.
//!
//! Every number the paper reports is a statistic over a run — average
//! goodput, mean RTT, retransmission counts, p95s over repeats — so the
//! simulator records into these structures rather than ad-hoc fields.
//!
//! # Choosing a percentile structure
//!
//! Two structures answer quantile queries and they are not interchangeable:
//!
//! - [`Histogram`] buckets samples on *fixed, global* log-spaced boundaries.
//!   Every sample lands in a bucket determined only by its value, so the
//!   result is independent of arrival order, merging two histograms is exact
//!   (bucket counts add), and a quantile computed from a merged histogram is
//!   bit-identical to one computed from a single histogram fed the union of
//!   the streams. Scorecard checks (the Fig. 7 RTT p95) use this.
//! - [`Reservoir`] keeps a bounded uniform subsample (Vitter's algorithm R).
//!   Once the stream exceeds the cap, `quantile` is computed over whichever
//!   samples survived replacement — a quantity that depends on the cap *and*
//!   on arrival order (the internal xorshift consumes one draw per
//!   post-cap record, so reordering the stream changes which samples are
//!   retained). Use it only where an approximate, non-mergeable percentile
//!   is acceptable; never for values that feed a determinism-sensitive
//!   check. `reservoir_quantile_depends_on_arrival_order` in this module's
//!   tests demonstrates the effect.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Streaming summary statistics (Welford's algorithm for mean/variance plus
/// exact min/max). Holds no samples, so it is safe for per-packet series.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 if fewer than 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Minimum (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Sub-bucket resolution for [`Histogram`]: each power-of-two range (octave)
/// is split into `2^HIST_SUB_BITS` log-spaced buckets, giving a relative
/// bucket width of `2^(1/64) − 1 ≈ 1.1%`.
const HIST_SUB_BITS: u32 = 6;
/// Right-shift applied to an `f64` bit pattern to obtain its bucket index:
/// drops the mantissa bits below the top `HIST_SUB_BITS`, keeping the
/// exponent plus the leading mantissa bits.
const HIST_INDEX_SHIFT: u32 = 52 - HIST_SUB_BITS;

/// A deterministic, mergeable log-bucketed histogram for percentile queries.
///
/// Bucket boundaries are *fixed globally* (not adapted to the data): a
/// positive finite sample maps to the bucket holding its IEEE-754 exponent
/// and top `HIST_SUB_BITS` mantissa bits, so boundaries are exact powers of
/// `2^(1/64)` times a power of two and every bucket spans ≈1.1% of its
/// value. Consequences:
///
/// - **Order-independent**: the histogram built from a stream depends only
///   on the multiset of values, never their order.
/// - **Exact merge**: [`Histogram::merge`] adds bucket counts; a merged
///   histogram is identical to one fed the concatenated streams, so
///   quantiles are bit-identical either way.
/// - **Bounded error**: a quantile is interpolated inside its bucket and is
///   within ±1.1% (one bucket width) of the exact sample quantile, and
///   always clamped to the observed `[min, max]`.
///
/// Non-positive samples collapse into a single underflow bucket spanning
/// `[min(0, observed min), 0]`; NaN samples are ignored. Memory is sparse:
/// only touched buckets are stored (a `BTreeMap`, so iteration order — and
/// thus serialization — is deterministic).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Samples ≤ 0 (log buckets cover only positive values).
    zero_count: u64,
    /// Sparse bucket counts keyed by index (`bits >> HIST_INDEX_SHIFT`).
    buckets: std::collections::BTreeMap<u32, u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            zero_count: 0,
            buckets: std::collections::BTreeMap::new(),
        }
    }

    /// Bucket index for a positive finite `x`.
    #[inline]
    fn bucket_index(x: f64) -> u32 {
        (x.to_bits() >> HIST_INDEX_SHIFT) as u32
    }

    /// Inclusive lower edge of bucket `idx`.
    #[inline]
    fn bucket_low(idx: u32) -> f64 {
        f64::from_bits((idx as u64) << HIST_INDEX_SHIFT)
    }

    /// Exclusive upper edge of bucket `idx`.
    #[inline]
    fn bucket_high(idx: u32) -> f64 {
        f64::from_bits(((idx as u64) + 1) << HIST_INDEX_SHIFT)
    }

    /// Record one observation. NaN is ignored.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x <= 0.0 {
            self.zero_count += 1;
        } else {
            *self.buckets.entry(Self::bucket_index(x)).or_insert(0) += 1;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (0 if empty). Unlike the bucket counts, the sum
    /// is a floating-point accumulation, so `mean` of a merged histogram can
    /// differ from the sequential mean in the last ulps.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another histogram into this one. Exact: bucket counts add, so
    /// the result is indistinguishable (for quantile queries) from a single
    /// histogram fed both streams.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.zero_count += other.zero_count;
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), linearly interpolated inside the
    /// containing bucket and clamped to the observed `[min, max]`. Returns
    /// `None` if empty.
    ///
    /// The target rank is `q · (count − 1)` (the same convention as
    /// [`Reservoir::quantile`]'s nearest-rank, before rounding): `q = 0`
    /// names the minimum and `q = 1` the maximum.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * (self.count - 1) as f64;
        let mut cum = 0u64;
        // Underflow bucket first: it spans [min(0, min), 0].
        if self.zero_count > 0 {
            if target < self.zero_count as f64 {
                let lo = self.min.min(0.0);
                let frac = (target - cum as f64) / self.zero_count as f64;
                return Some((lo + (0.0 - lo) * frac).clamp(self.min, self.max));
            }
            cum = self.zero_count;
        }
        for (&idx, &c) in &self.buckets {
            if target < (cum + c) as f64 {
                let lo = Self::bucket_low(idx);
                let hi = Self::bucket_high(idx);
                let frac = (target - cum as f64) / c as f64;
                return Some((lo + (hi - lo) * frac).clamp(self.min, self.max));
            }
            cum += c;
        }
        // target == count − 1 exactly (q = 1): the maximum.
        Some(self.max)
    }

    /// Median convenience.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

/// A reservoir of samples for percentile queries. Keeps all samples up to a
/// cap, then switches to uniform reservoir sampling (Vitter's algorithm R)
/// so long runs stay bounded in memory.
///
/// # Caveat: quantiles are cap- and order-dependent
///
/// Past the cap the reservoir *subsamples*: each new sample evicts a random
/// retained one with probability `cap / seen`. [`Reservoir::quantile`] then
/// answers from the retained subset, so its value depends on the cap and on
/// the order samples arrived (the replacement RNG is consumed per record).
/// Two reservoirs fed the same multiset in different orders generally
/// disagree, and there is no exact way to merge two reservoirs. Percentiles
/// that feed scorecard checks use [`Histogram`] instead, which has fixed
/// bucket boundaries and exact merge; the Fig. 7 RTT p95 was ported off this
/// type for that reason.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    samples: Vec<f64>,
    /// xorshift state for reservoir replacement decisions; kept private to
    /// the reservoir so sampling does not perturb experiment RNG streams.
    rng_state: u64,
}

impl Reservoir {
    /// A reservoir keeping at most `cap` samples.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "reservoir capacity must be positive");
        Reservoir {
            cap,
            seen: 0,
            samples: Vec::new(),
            rng_state: 0x243F_6A88_85A3_08D3,
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(x);
        } else {
            let j = self.next_rand() % self.seen;
            if (j as usize) < self.cap {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Total samples ever offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on retained samples.
    /// Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in reservoir"));
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }

    /// Median convenience.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Mean of retained samples (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

/// A `(time, value)` series with bounded resolution: samples closer together
/// than `min_gap` are coalesced (last-writer-wins) to bound memory on long
/// runs. Used for goodput-over-time and cwnd traces in examples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    min_gap: SimDuration,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// A series that keeps at most one point per `min_gap`.
    pub fn new(min_gap: SimDuration) -> Self {
        TimeSeries {
            min_gap,
            points: Vec::new(),
        }
    }

    /// Record a point.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&mut (last_t, ref mut last_v)) = self.points.last_mut() {
            if at.saturating_since(last_t) < self.min_gap {
                *last_v = value;
                return;
            }
        }
        self.points.push((at, value));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Last recorded value.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }
}

/// Sliding-window utilization tracker: how busy was a resource over the
/// trailing window? The dynamic CPU governor consumes this.
#[derive(Debug, Clone)]
pub struct UtilWindow {
    window: SimDuration,
    /// Busy intervals (start, end), pruned as they age out.
    intervals: std::collections::VecDeque<(SimTime, SimTime)>,
}

impl UtilWindow {
    /// A tracker over a trailing `window`.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "utilization window must be non-zero");
        UtilWindow {
            window,
            intervals: std::collections::VecDeque::new(),
        }
    }

    /// Record that the resource was busy on `[start, end)`. `now` is the
    /// current simulation time at the recording site — a lower bound on
    /// every future `utilization(now)`
    /// query. The interval itself may extend past `now`: a backlogged CPU
    /// books work ahead of the clock (`busy_until` in the future), which is
    /// exactly why aging must key off `now` and not the interval's `end` —
    /// an interval can be older than `end - window` yet still overlap the
    /// window of a query issued before `end`.
    pub fn record_busy(&mut self, start: SimTime, end: SimTime, now: SimTime) {
        if end <= start {
            return;
        }
        // Merge with the previous interval if contiguous (common case:
        // back-to-back CPU operations).
        if let Some(&mut (_, ref mut last_end)) = self.intervals.back_mut() {
            if start <= *last_end {
                if end > *last_end {
                    *last_end = end;
                }
                return;
            }
        }
        self.intervals.push_back((start, end));
        // Age out intervals that can never matter again: every future
        // `utilization(q)` has `q >= now`, so anything ending at or before
        // `now - window` is invisible from here on (the same rule
        // `utilization` itself prunes by). Pruning here (not just in
        // `utilization`) keeps the deque bounded even when nobody polls
        // — fixed-frequency runs never tick the governor, and without this
        // the deque grew for the whole run.
        let horizon = now - self.window; // SimTime subtraction saturates
        while let Some(&(_, e)) = self.intervals.front() {
            if e <= horizon {
                self.intervals.pop_front();
            } else {
                break;
            }
        }
    }

    /// Fraction of the trailing window that was busy, evaluated at `now`.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        let window_start = now - self.window;
        while let Some(&(_, end)) = self.intervals.front() {
            if end <= window_start {
                self.intervals.pop_front();
            } else {
                break;
            }
        }
        let mut busy = SimDuration::ZERO;
        for &(start, end) in &self.intervals {
            let s = start.max(window_start);
            let e = end.min(now);
            if e > s {
                busy += e - s;
            }
        }
        let span = now.saturating_since(window_start);
        if span.is_zero() {
            0.0
        } else {
            (busy / span).min(1.0)
        }
    }
}

/// A labelled monotonic counter set, used for per-run event tallies
/// (retransmissions, timer fires, skbs sent, …).
///
/// Keys are `&'static str` (counter names are compile-time constants), which
/// keeps the hot-path `inc` allocation-free; serialization emits owned keys.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Counters {
    map: std::collections::BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.map.entry(name).or_insert(0) += n;
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterate over all counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

/// Jain's fairness index over a set of non-negative rates:
/// `(Σxᵢ)² / (n · Σxᵢ²)`.
///
/// The index lives in `[1/n, 1]`: it is `1.0` when every participant gets
/// an equal share and `1/n` when one participant takes everything. The
/// degenerate all-zero set (no traffic at all) is defined as perfectly
/// fair, matching the run-scorecard convention.
///
/// Summation is plain left-to-right in input order — callers that need
/// bit-identical results across runs must present rates in a deterministic
/// order (per-conn results already are).
pub fn jain(rates: &[f64]) -> f64 {
    let sum: f64 = rates.iter().sum();
    let sumsq: f64 = rates.iter().map(|r| r * r).sum();
    if sumsq == 0.0 {
        1.0
    } else {
        sum * sum / (rates.len() as f64 * sumsq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn jain_equal_shares_is_one() {
        assert_eq!(jain(&[5.0; 7]), 1.0);
        assert_eq!(jain(&[1.0]), 1.0);
        // All-zero (idle fleet) is defined as fair.
        assert_eq!(jain(&[0.0, 0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_lower_bound_is_one_over_n() {
        // One hog, n-1 starved flows: the textbook worst case.
        for n in [2usize, 10, 64, 1000] {
            let mut rates = vec![0.0; n];
            rates[0] = 123.0;
            let idx = jain(&rates);
            assert!((idx - 1.0 / n as f64).abs() < 1e-12, "n={n} idx={idx}");
        }
    }

    #[test]
    fn jain_bounds_and_merge_order_independence() {
        // The index must land in [1/n, 1] for any non-negative input and
        // (up to fp tolerance) not care how the rates are ordered —
        // grouping/merging device shares in a different order must not
        // change the verdict.
        let rates = [3.0, 0.5, 9.25, 9.25, 0.0, 120.0, 7.5];
        let idx = jain(&rates);
        assert!(idx >= 1.0 / rates.len() as f64 - 1e-12);
        assert!(idx <= 1.0 + 1e-12);
        let mut rev = rates;
        rev.reverse();
        assert!((jain(&rev) - idx).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn jain_in_bounds_for_any_rates(xs in proptest::collection::vec(0.0f64..1e9, 1..64)) {
            let idx = jain(&xs);
            prop_assert!(idx >= 1.0 / xs.len() as f64 - 1e-9);
            prop_assert!(idx <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_empty_is_sane() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let mut s = Summary::new();
        s.record(3.0);
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());
    }

    #[test]
    fn reservoir_small_stream_keeps_everything() {
        let mut r = Reservoir::new(100);
        for i in 0..50 {
            r.record(i as f64);
        }
        assert_eq!(r.seen(), 50);
        assert_eq!(r.quantile(0.0), Some(0.0));
        assert_eq!(r.quantile(1.0), Some(49.0));
        assert_eq!(r.median(), Some(25.0));
    }

    #[test]
    fn reservoir_long_stream_stays_bounded_and_representative() {
        let mut r = Reservoir::new(512);
        for i in 0..100_000 {
            r.record(i as f64);
        }
        assert_eq!(r.seen(), 100_000);
        let med = r.median().unwrap();
        // Median of 0..100k should be near 50k even after subsampling.
        assert!((med - 50_000.0).abs() < 10_000.0, "median {med}");
    }

    #[test]
    fn reservoir_empty_quantile_is_none() {
        let r = Reservoir::new(8);
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.mean(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn reservoir_zero_cap_panics() {
        Reservoir::new(0);
    }

    #[test]
    fn timeseries_coalesces_close_points() {
        let mut ts = TimeSeries::new(SimDuration::from_millis(10));
        ts.record(SimTime::from_millis(0), 1.0);
        ts.record(SimTime::from_millis(5), 2.0); // coalesced into previous
        ts.record(SimTime::from_millis(12), 3.0);
        assert_eq!(ts.points().len(), 2);
        assert_eq!(ts.points()[0].1, 2.0);
        assert_eq!(ts.last(), Some(3.0));
    }

    #[test]
    fn utilwindow_full_busy_is_one() {
        let mut u = UtilWindow::new(SimDuration::from_millis(100));
        u.record_busy(
            SimTime::from_millis(0),
            SimTime::from_millis(200),
            SimTime::from_millis(0),
        );
        let util = u.utilization(SimTime::from_millis(200));
        assert!((util - 1.0).abs() < 1e-9, "util {util}");
    }

    #[test]
    fn utilwindow_half_busy_is_half() {
        let mut u = UtilWindow::new(SimDuration::from_millis(100));
        // Busy 150..200 within window 100..200.
        u.record_busy(
            SimTime::from_millis(150),
            SimTime::from_millis(200),
            SimTime::from_millis(150),
        );
        let util = u.utilization(SimTime::from_millis(200));
        assert!((util - 0.5).abs() < 1e-9, "util {util}");
    }

    #[test]
    fn utilwindow_prunes_old_intervals() {
        let mut u = UtilWindow::new(SimDuration::from_millis(10));
        u.record_busy(
            SimTime::from_millis(0),
            SimTime::from_millis(5),
            SimTime::from_millis(0),
        );
        let util = u.utilization(SimTime::from_millis(100));
        assert_eq!(util, 0.0);
    }

    #[test]
    fn utilwindow_merges_contiguous_busy() {
        let mut u = UtilWindow::new(SimDuration::from_millis(100));
        u.record_busy(
            SimTime::from_millis(10),
            SimTime::from_millis(20),
            SimTime::from_millis(10),
        );
        u.record_busy(
            SimTime::from_millis(20),
            SimTime::from_millis(30),
            SimTime::from_millis(20),
        );
        let util = u.utilization(SimTime::from_millis(100));
        assert!((util - 0.2).abs() < 1e-9, "util {util}");
    }

    #[test]
    fn histogram_bucket_boundaries_bracket_samples() {
        // Every positive sample must fall inside its bucket's [low, high)
        // range, and the bucket must be narrow (≈1.1% relative width).
        for &x in &[1e-6, 0.37, 1.0, 1.5, 42.0, 999.9, 1e9] {
            let idx = Histogram::bucket_index(x);
            let lo = Histogram::bucket_low(idx);
            let hi = Histogram::bucket_high(idx);
            assert!(lo <= x && x < hi, "{x} not in [{lo}, {hi})");
            assert!((hi - lo) / lo < 0.02, "bucket too wide at {x}");
        }
    }

    #[test]
    fn histogram_quantiles_are_accurate() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(10_000.0));
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.999, 9_990.0)] {
            let got = h.quantile(q).unwrap();
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.012, "q{q}: got {got}, expect {expect}");
        }
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(10_000.0));
    }

    #[test]
    fn histogram_is_order_independent() {
        let mut asc = Histogram::new();
        let mut desc = Histogram::new();
        for i in 0..5_000 {
            asc.record(1.0 + i as f64);
            desc.record(1.0 + (4_999 - i) as f64);
        }
        for q in [0.1, 0.5, 0.9, 0.95, 0.999] {
            assert_eq!(asc.quantile(q), desc.quantile(q), "q = {q}");
        }
    }

    #[test]
    fn histogram_merge_is_exact() {
        let xs: Vec<f64> = (0..3_000).map(|i| 0.5 + (i as f64) * 1.37).collect();
        let mut whole = Histogram::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for &x in &xs[..1_000] {
            left.record(x);
        }
        for &x in &xs[1_000..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        for q in [0.0, 0.25, 0.5, 0.95, 0.999, 1.0] {
            // Bit-identical, not just close: counts are integers and the
            // interpolation sees identical inputs either way.
            assert_eq!(left.quantile(q), whole.quantile(q), "q = {q}");
        }
    }

    #[test]
    fn histogram_empty_and_zero_handling() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), 0.0);

        let mut z = Histogram::new();
        z.record(0.0);
        z.record(0.0);
        z.record(f64::NAN); // ignored
        assert_eq!(z.count(), 2);
        assert_eq!(z.quantile(0.5), Some(0.0));

        let mut mixed = Histogram::new();
        mixed.record(-2.0);
        mixed.record(10.0);
        assert_eq!(mixed.quantile(0.0), Some(-2.0));
        assert_eq!(mixed.quantile(1.0), Some(10.0));
    }

    #[test]
    fn histogram_serialization_is_deterministic_and_well_formed() {
        let mut h = Histogram::new();
        for i in 1..200 {
            h.record(i as f64 * 0.73);
        }
        let json = serde_json::to_string(&h).unwrap();
        // Two renders of the same state are byte-identical (BTreeMap bucket
        // order is deterministic), and the output parses back as JSON with
        // the expected scalar fields intact.
        assert_eq!(json, serde_json::to_string(&h).unwrap());
        let v = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v.get("count").and_then(|c| c.as_u64()), Some(199));
        let buckets = v.get("buckets").expect("buckets field");
        let n: u64 = match buckets {
            serde_json::Value::Object(fields) => fields
                .iter()
                .map(|(_, c)| c.as_u64().expect("bucket count"))
                .sum(),
            other => panic!("buckets not an object: {other:?}"),
        };
        assert_eq!(n, 199);
    }

    #[test]
    fn reservoir_quantile_depends_on_arrival_order() {
        // Same multiset, two arrival orders, a cap forcing subsampling:
        // the retained subsets differ, so the quantiles differ. This is the
        // documented reason scorecard percentiles use Histogram instead.
        let cap = 64;
        let mut asc = Reservoir::new(cap);
        let mut desc = Reservoir::new(cap);
        for i in 0..10_000 {
            asc.record(i as f64);
            desc.record((9_999 - i) as f64);
        }
        assert_eq!(asc.seen(), desc.seen());
        let (pa, pd) = (asc.quantile(0.95).unwrap(), desc.quantile(0.95).unwrap());
        assert_ne!(pa, pd, "expected order-dependent p95, both {pa}");
        // A histogram fed the same two streams agrees with itself exactly.
        let mut ha = Histogram::new();
        let mut hd = Histogram::new();
        for i in 0..10_000 {
            ha.record(i as f64);
            hd.record((9_999 - i) as f64);
        }
        assert_eq!(ha.quantile(0.95), hd.quantile(0.95));
    }

    #[test]
    fn timeseries_point_at_exactly_min_gap_starts_new_point() {
        // The coalescing window is half-open: a point whose distance from
        // the last *kept* point equals min_gap is NOT coalesced.
        let mut ts = TimeSeries::new(SimDuration::from_millis(10));
        ts.record(SimTime::from_millis(0), 1.0);
        ts.record(SimTime::from_millis(10), 2.0); // == min_gap: new point
        assert_eq!(ts.points().len(), 2);
        assert_eq!(ts.points()[0], (SimTime::from_millis(0), 1.0));
        assert_eq!(ts.points()[1], (SimTime::from_millis(10), 2.0));
    }

    #[test]
    fn timeseries_coalescing_is_last_writer_wins_keeping_first_timestamp() {
        let mut ts = TimeSeries::new(SimDuration::from_millis(10));
        ts.record(SimTime::from_millis(0), 1.0);
        ts.record(SimTime::from_millis(3), 2.0);
        ts.record(SimTime::from_millis(6), 3.0);
        ts.record(SimTime::from_millis(9), 4.0);
        // All four collapse to one point: the first timestamp, last value.
        assert_eq!(ts.points(), &[(SimTime::from_millis(0), 4.0)]);
        // The gap is measured from the *kept* point (t=0), not the last
        // write: t=10 is exactly min_gap away and starts a new point even
        // though the previous write was at t=9.
        ts.record(SimTime::from_millis(10), 5.0);
        assert_eq!(ts.points().len(), 2);
        assert_eq!(ts.points()[1], (SimTime::from_millis(10), 5.0));
    }

    #[test]
    fn utilwindow_busy_interval_extending_past_now_counts_only_up_to_now() {
        // A backlogged CPU books work ahead of the clock: the interval end
        // may exceed `now`. Utilization must clamp the overlap at `now`.
        let mut u = UtilWindow::new(SimDuration::from_millis(100));
        u.record_busy(
            SimTime::from_millis(100),
            SimTime::from_millis(300), // 200ms booked ahead
            SimTime::from_millis(100),
        );
        // At now=150, window is 50..150; busy overlap is 100..150 = 50ms.
        let util = u.utilization(SimTime::from_millis(150));
        assert!((util - 0.5).abs() < 1e-9, "util {util}");
        // The same interval still counts in a later query window: at
        // now=250 the window is 150..250, fully inside 100..300.
        let util = u.utilization(SimTime::from_millis(250));
        assert!((util - 1.0).abs() < 1e-9, "util {util}");
    }

    #[test]
    fn utilwindow_wraps_around_time_zero() {
        // Early in a run `now < window`: window_start saturates at 0 and
        // the denominator is `now`, not the full window, so a fully-busy
        // young run reads 1.0 rather than now/window.
        let mut u = UtilWindow::new(SimDuration::from_millis(100));
        u.record_busy(
            SimTime::from_millis(0),
            SimTime::from_millis(30),
            SimTime::from_millis(0),
        );
        let util = u.utilization(SimTime::from_millis(30));
        assert!((util - 1.0).abs() < 1e-9, "util {util}");
        // And an idle tail dilutes against the saturated span (0..60).
        let util = u.utilization(SimTime::from_millis(60));
        assert!((util - 0.5).abs() < 1e-9, "util {util}");
        // At now == 0 the span is zero: defined as 0.0, no division blowup.
        let mut v = UtilWindow::new(SimDuration::from_millis(100));
        assert_eq!(v.utilization(SimTime::ZERO), 0.0);
    }

    proptest! {
        #[test]
        fn prop_histogram_quantile_within_min_max(
            xs in proptest::collection::vec(0.001f64..1e6, 1..300),
            q in 0.0f64..=1.0,
        ) {
            let mut h = Histogram::new();
            for &x in &xs {
                h.record(x);
            }
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= h.min().unwrap() && v <= h.max().unwrap());
        }

        #[test]
        fn prop_histogram_merge_matches_whole(
            xs in proptest::collection::vec(0.001f64..1e6, 2..200),
            split in 1usize..100,
        ) {
            let split = split % (xs.len() - 1) + 1;
            let mut whole = Histogram::new();
            for &x in &xs {
                whole.record(x);
            }
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            for &x in &xs[..split] {
                a.record(x);
            }
            for &x in &xs[split..] {
                b.record(x);
            }
            a.merge(&b);
            prop_assert_eq!(a.quantile(0.5), whole.quantile(0.5));
            prop_assert_eq!(a.quantile(0.95), whole.quantile(0.95));
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.inc("retx");
        c.add("retx", 4);
        c.inc("timer_fires");
        assert_eq!(c.get("retx"), 5);
        assert_eq!(c.get("timer_fires"), 1);
        assert_eq!(c.get("missing"), 0);
        let all: Vec<_> = c.iter().collect();
        assert_eq!(all, vec![("retx", 5), ("timer_fires", 1)]);
    }

    proptest! {
        #[test]
        fn prop_summary_mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = Summary::new();
            for &x in &xs {
                s.record(x);
            }
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(s.mean() >= lo - 1e-9 && s.mean() <= hi + 1e-9);
            prop_assert_eq!(s.min().unwrap(), lo);
            prop_assert_eq!(s.max().unwrap(), hi);
        }

        #[test]
        fn prop_utilization_in_unit_interval(
            intervals in proptest::collection::vec((0u64..1000, 0u64..100), 0..50),
        ) {
            let mut u = UtilWindow::new(SimDuration::from_millis(500));
            let mut cursor = 0u64;
            for (gap, len) in intervals {
                let start = cursor + gap;
                let end = start + len;
                u.record_busy(SimTime::from_millis(start), SimTime::from_millis(end), SimTime::from_millis(start));
                cursor = end;
            }
            let util = u.utilization(SimTime::from_millis(cursor + 1));
            prop_assert!((0.0..=1.0).contains(&util));
        }
    }
}
