//! Measurement plumbing: counters, streaming summaries, time series, and
//! utilization windows.
//!
//! Every number the paper reports is a statistic over a run — average
//! goodput, mean RTT, retransmission counts, p95s over repeats — so the
//! simulator records into these structures rather than ad-hoc fields.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Streaming summary statistics (Welford's algorithm for mean/variance plus
/// exact min/max). Holds no samples, so it is safe for per-packet series.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 if fewer than 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Minimum (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A reservoir of samples for percentile queries. Keeps all samples up to a
/// cap, then switches to uniform reservoir sampling (Vitter's algorithm R)
/// so long runs stay bounded in memory. RTT percentiles (Fig. 7) use this.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    samples: Vec<f64>,
    /// xorshift state for reservoir replacement decisions; kept private to
    /// the reservoir so sampling does not perturb experiment RNG streams.
    rng_state: u64,
}

impl Reservoir {
    /// A reservoir keeping at most `cap` samples.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "reservoir capacity must be positive");
        Reservoir {
            cap,
            seen: 0,
            samples: Vec::new(),
            rng_state: 0x243F_6A88_85A3_08D3,
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(x);
        } else {
            let j = self.next_rand() % self.seen;
            if (j as usize) < self.cap {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Total samples ever offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on retained samples.
    /// Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in reservoir"));
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }

    /// Median convenience.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Mean of retained samples (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

/// A `(time, value)` series with bounded resolution: samples closer together
/// than `min_gap` are coalesced (last-writer-wins) to bound memory on long
/// runs. Used for goodput-over-time and cwnd traces in examples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    min_gap: SimDuration,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// A series that keeps at most one point per `min_gap`.
    pub fn new(min_gap: SimDuration) -> Self {
        TimeSeries {
            min_gap,
            points: Vec::new(),
        }
    }

    /// Record a point.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&mut (last_t, ref mut last_v)) = self.points.last_mut() {
            if at.saturating_since(last_t) < self.min_gap {
                *last_v = value;
                return;
            }
        }
        self.points.push((at, value));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Last recorded value.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }
}

/// Sliding-window utilization tracker: how busy was a resource over the
/// trailing window? The dynamic CPU governor consumes this.
#[derive(Debug, Clone)]
pub struct UtilWindow {
    window: SimDuration,
    /// Busy intervals (start, end), pruned as they age out.
    intervals: std::collections::VecDeque<(SimTime, SimTime)>,
}

impl UtilWindow {
    /// A tracker over a trailing `window`.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "utilization window must be non-zero");
        UtilWindow {
            window,
            intervals: std::collections::VecDeque::new(),
        }
    }

    /// Record that the resource was busy on `[start, end)`. `now` is the
    /// current simulation time at the recording site — a lower bound on
    /// every future `utilization(now)`
    /// query. The interval itself may extend past `now`: a backlogged CPU
    /// books work ahead of the clock (`busy_until` in the future), which is
    /// exactly why aging must key off `now` and not the interval's `end` —
    /// an interval can be older than `end - window` yet still overlap the
    /// window of a query issued before `end`.
    pub fn record_busy(&mut self, start: SimTime, end: SimTime, now: SimTime) {
        if end <= start {
            return;
        }
        // Merge with the previous interval if contiguous (common case:
        // back-to-back CPU operations).
        if let Some(&mut (_, ref mut last_end)) = self.intervals.back_mut() {
            if start <= *last_end {
                if end > *last_end {
                    *last_end = end;
                }
                return;
            }
        }
        self.intervals.push_back((start, end));
        // Age out intervals that can never matter again: every future
        // `utilization(q)` has `q >= now`, so anything ending at or before
        // `now - window` is invisible from here on (the same rule
        // `utilization` itself prunes by). Pruning here (not just in
        // `utilization`) keeps the deque bounded even when nobody polls
        // — fixed-frequency runs never tick the governor, and without this
        // the deque grew for the whole run.
        let horizon = now - self.window; // SimTime subtraction saturates
        while let Some(&(_, e)) = self.intervals.front() {
            if e <= horizon {
                self.intervals.pop_front();
            } else {
                break;
            }
        }
    }

    /// Fraction of the trailing window that was busy, evaluated at `now`.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        let window_start = now - self.window;
        while let Some(&(_, end)) = self.intervals.front() {
            if end <= window_start {
                self.intervals.pop_front();
            } else {
                break;
            }
        }
        let mut busy = SimDuration::ZERO;
        for &(start, end) in &self.intervals {
            let s = start.max(window_start);
            let e = end.min(now);
            if e > s {
                busy += e - s;
            }
        }
        let span = now.saturating_since(window_start);
        if span.is_zero() {
            0.0
        } else {
            (busy / span).min(1.0)
        }
    }
}

/// A labelled monotonic counter set, used for per-run event tallies
/// (retransmissions, timer fires, skbs sent, …).
///
/// Keys are `&'static str` (counter names are compile-time constants), which
/// keeps the hot-path `inc` allocation-free; serialization emits owned keys.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Counters {
    map: std::collections::BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.map.entry(name).or_insert(0) += n;
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterate over all counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_empty_is_sane() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let mut s = Summary::new();
        s.record(3.0);
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());
    }

    #[test]
    fn reservoir_small_stream_keeps_everything() {
        let mut r = Reservoir::new(100);
        for i in 0..50 {
            r.record(i as f64);
        }
        assert_eq!(r.seen(), 50);
        assert_eq!(r.quantile(0.0), Some(0.0));
        assert_eq!(r.quantile(1.0), Some(49.0));
        assert_eq!(r.median(), Some(25.0));
    }

    #[test]
    fn reservoir_long_stream_stays_bounded_and_representative() {
        let mut r = Reservoir::new(512);
        for i in 0..100_000 {
            r.record(i as f64);
        }
        assert_eq!(r.seen(), 100_000);
        let med = r.median().unwrap();
        // Median of 0..100k should be near 50k even after subsampling.
        assert!((med - 50_000.0).abs() < 10_000.0, "median {med}");
    }

    #[test]
    fn reservoir_empty_quantile_is_none() {
        let r = Reservoir::new(8);
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.mean(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn reservoir_zero_cap_panics() {
        Reservoir::new(0);
    }

    #[test]
    fn timeseries_coalesces_close_points() {
        let mut ts = TimeSeries::new(SimDuration::from_millis(10));
        ts.record(SimTime::from_millis(0), 1.0);
        ts.record(SimTime::from_millis(5), 2.0); // coalesced into previous
        ts.record(SimTime::from_millis(12), 3.0);
        assert_eq!(ts.points().len(), 2);
        assert_eq!(ts.points()[0].1, 2.0);
        assert_eq!(ts.last(), Some(3.0));
    }

    #[test]
    fn utilwindow_full_busy_is_one() {
        let mut u = UtilWindow::new(SimDuration::from_millis(100));
        u.record_busy(
            SimTime::from_millis(0),
            SimTime::from_millis(200),
            SimTime::from_millis(0),
        );
        let util = u.utilization(SimTime::from_millis(200));
        assert!((util - 1.0).abs() < 1e-9, "util {util}");
    }

    #[test]
    fn utilwindow_half_busy_is_half() {
        let mut u = UtilWindow::new(SimDuration::from_millis(100));
        // Busy 150..200 within window 100..200.
        u.record_busy(
            SimTime::from_millis(150),
            SimTime::from_millis(200),
            SimTime::from_millis(150),
        );
        let util = u.utilization(SimTime::from_millis(200));
        assert!((util - 0.5).abs() < 1e-9, "util {util}");
    }

    #[test]
    fn utilwindow_prunes_old_intervals() {
        let mut u = UtilWindow::new(SimDuration::from_millis(10));
        u.record_busy(
            SimTime::from_millis(0),
            SimTime::from_millis(5),
            SimTime::from_millis(0),
        );
        let util = u.utilization(SimTime::from_millis(100));
        assert_eq!(util, 0.0);
    }

    #[test]
    fn utilwindow_merges_contiguous_busy() {
        let mut u = UtilWindow::new(SimDuration::from_millis(100));
        u.record_busy(
            SimTime::from_millis(10),
            SimTime::from_millis(20),
            SimTime::from_millis(10),
        );
        u.record_busy(
            SimTime::from_millis(20),
            SimTime::from_millis(30),
            SimTime::from_millis(20),
        );
        let util = u.utilization(SimTime::from_millis(100));
        assert!((util - 0.2).abs() < 1e-9, "util {util}");
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.inc("retx");
        c.add("retx", 4);
        c.inc("timer_fires");
        assert_eq!(c.get("retx"), 5);
        assert_eq!(c.get("timer_fires"), 1);
        assert_eq!(c.get("missing"), 0);
        let all: Vec<_> = c.iter().collect();
        assert_eq!(all, vec![("retx", 5), ("timer_fires", 1)]);
    }

    proptest! {
        #[test]
        fn prop_summary_mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = Summary::new();
            for &x in &xs {
                s.record(x);
            }
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(s.mean() >= lo - 1e-9 && s.mean() <= hi + 1e-9);
            prop_assert_eq!(s.min().unwrap(), lo);
            prop_assert_eq!(s.max().unwrap(), hi);
        }

        #[test]
        fn prop_utilization_in_unit_interval(
            intervals in proptest::collection::vec((0u64..1000, 0u64..100), 0..50),
        ) {
            let mut u = UtilWindow::new(SimDuration::from_millis(500));
            let mut cursor = 0u64;
            for (gap, len) in intervals {
                let start = cursor + gap;
                let end = start + len;
                u.record_busy(SimTime::from_millis(start), SimTime::from_millis(end), SimTime::from_millis(start));
                cursor = end;
            }
            let util = u.utilization(SimTime::from_millis(cursor + 1));
            prop_assert!((0.0..=1.0).contains(&util));
        }
    }
}
