//! Sweep checkpoint files: crash-safe progress records for long sweeps.
//!
//! A checkpoint is one file recording every finished cell of a sweep (or a
//! whole session of sweeps — keys are content-addressed, so one file can
//! serve any number of [`crate::sweep`] invocations). An interrupted run
//! re-opened with the same checkpoint resumes exactly where it stopped:
//! completed cells are served from the file byte-identically (the cell
//! codec's `decode(encode(x)) == x` contract), and only the remainder is
//! computed.
//!
//! # File format
//!
//! ```text
//! header:  magic "SWCK" | version u32 LE | root_seed u64 LE
//! record:  body_len u32 LE | fnv64(body) LE | body
//! body:    key digest (16 bytes, the run cache's double-FNV of the cell's
//!          key_bytes) | encoded cell output
//! ```
//!
//! The file is created atomically (temp file + rename, the run cache's
//! envelope discipline) and then grows by appending checksummed records —
//! an interrupted append leaves a truncated tail record, never a corrupt
//! prefix. The loader is tolerant by construction, mirroring the cache
//! codec: a missing file is an empty checkpoint; a bad header (wrong
//! magic/version, or a different sweep `root_seed`) discards the whole
//! file; a bad record (short, oversized, or checksum-mismatched) discards
//! that record and everything after it. Discarded cells are simply
//! recomputed — corruption can never poison a resumed sweep, and loading
//! never panics. Hard I/O failures (unwritable path) are reported as
//! [`Error::Checkpoint`], since a checkpoint the user asked for that
//! cannot be written would silently lose the crash-safety they wanted.

use crate::error::Error;
use std::collections::HashMap;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file.
const MAGIC: &[u8; 4] = b"SWCK";
/// Checkpoint format version; bump when the record layout changes.
const VERSION: u32 = 1;
/// Header length in bytes.
const HEADER_LEN: u64 = 4 + 4 + 8;
/// Reject absurd record lengths before allocating.
const MAX_RECORD: u32 = 1 << 28;
/// Records buffered between file flushes. Small enough that a crash loses
/// at most a moment of progress, large enough to amortise syscalls.
const FLUSH_EVERY: usize = 32;

/// What [`CheckpointStore::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Valid records loaded (cells that will be served without compute).
    pub loaded: usize,
    /// Whether an invalid header or record forced part (or all) of the
    /// file to be discarded and truncated away.
    pub discarded: bool,
}

/// An open checkpoint: the loaded entries plus an append handle.
///
/// Entries are *consumed* by [`take`](Self::take): the sweep engine
/// serves each completed cell once, in submission order, so a served
/// entry's memory is released immediately instead of living for the whole
/// sweep — the resume path keeps the engine's bounded-memory property.
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    file: std::fs::File,
    entries: HashMap<[u8; 16], Vec<u8>>,
    buffer: Vec<u8>,
    unflushed: usize,
    /// What loading found (kept for progress reporting).
    pub report: LoadReport,
}

/// Serialize the fixed file header.
fn header_bytes(root_seed: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN as usize);
    h.extend_from_slice(MAGIC);
    h.extend_from_slice(&VERSION.to_le_bytes());
    h.extend_from_slice(&root_seed.to_le_bytes());
    h
}

/// Parse the record stream after a valid header. Returns the entries and
/// the byte offset just past the last valid record.
fn parse_records(bytes: &[u8]) -> (HashMap<[u8; 16], Vec<u8>>, u64, bool) {
    let mut entries = HashMap::new();
    let mut at = HEADER_LEN as usize;
    loop {
        let Some(head) = bytes.get(at..at + 12) else {
            // Clean EOF (or a tail shorter than a record head).
            return (entries, at as u64, at != bytes.len());
        };
        let len = u32::from_le_bytes(head[0..4].try_into().unwrap());
        let checksum = u64::from_le_bytes(head[4..12].try_into().unwrap());
        if !(16..=MAX_RECORD).contains(&len) {
            return (entries, at as u64, true);
        }
        let Some(body) = bytes.get(at + 12..at + 12 + len as usize) else {
            return (entries, at as u64, true); // truncated tail record
        };
        if crate::sweep::fnv64(body) != checksum {
            return (entries, at as u64, true);
        }
        let digest: [u8; 16] = body[0..16].try_into().unwrap();
        entries.insert(digest, body[16..].to_vec());
        at += 12 + len as usize;
    }
}

impl CheckpointStore {
    /// Open (or create) the checkpoint at `path` for a sweep rooted at
    /// `root_seed`, loading every valid record.
    ///
    /// Corruption is tolerated (see module docs); only hard I/O failures
    /// return an error.
    pub fn open(path: &Path, root_seed: u64) -> Result<CheckpointStore, Error> {
        let err = |reason: String| Error::Checkpoint {
            path: path.to_path_buf(),
            reason,
        };
        let existing = match std::fs::read(path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(err(format!("read: {e}"))),
        };

        let header = header_bytes(root_seed);
        let (entries, valid_len, discarded) = match &existing {
            Some(bytes) if bytes.len() >= HEADER_LEN as usize && bytes[..16] == header[..] => {
                parse_records(bytes)
            }
            // Missing file: fresh checkpoint, nothing discarded.
            None => (HashMap::new(), HEADER_LEN, false),
            // Bad magic/version/root-seed (or a file shorter than the
            // header): every record is untrusted — start over.
            Some(_) => (HashMap::new(), HEADER_LEN, true),
        };

        // (Re-)create the file atomically when starting fresh, so a crash
        // mid-create never leaves a half-written header; otherwise truncate
        // away any invalid tail and append after the valid prefix.
        if existing.is_none() || entries.is_empty() && discarded {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).map_err(|e| err(format!("create dir: {e}")))?;
                }
            }
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            std::fs::write(&tmp, &header).map_err(|e| err(format!("create: {e}")))?;
            std::fs::rename(&tmp, path).map_err(|e| err(format!("rename: {e}")))?;
        }
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| err(format!("open for append: {e}")))?;
        if !entries.is_empty() || !discarded {
            file.set_len(valid_len)
                .map_err(|e| err(format!("truncate invalid tail: {e}")))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| err(format!("seek: {e}")))?;

        let loaded = entries.len();
        Ok(CheckpointStore {
            path: path.to_path_buf(),
            file,
            entries,
            buffer: Vec::new(),
            unflushed: 0,
            report: LoadReport { loaded, discarded },
        })
    }

    /// Entries loaded and not yet served.
    pub fn remaining(&self) -> usize {
        self.entries.len()
    }

    /// Serve (and consume) the entry for a cell-key digest, if recorded.
    pub fn take(&mut self, digest: &[u8; 16]) -> Option<Vec<u8>> {
        self.entries.remove(digest)
    }

    /// Whether a digest is recorded without consuming it.
    pub fn contains(&self, digest: &[u8; 16]) -> bool {
        self.entries.contains_key(digest)
    }

    /// Record one completed cell. Buffered; an fsync'd flush happens every
    /// `FLUSH_EVERY` (32) records and at [`finalize`](Self::finalize).
    pub fn append(&mut self, digest: &[u8; 16], payload: &[u8]) -> Result<(), Error> {
        let mut body = Vec::with_capacity(16 + payload.len());
        body.extend_from_slice(digest);
        body.extend_from_slice(payload);
        self.buffer
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.buffer
            .extend_from_slice(&crate::sweep::fnv64(&body).to_le_bytes());
        self.buffer.extend_from_slice(&body);
        self.unflushed += 1;
        if self.unflushed >= FLUSH_EVERY {
            self.flush()?;
        }
        Ok(())
    }

    /// Write buffered records to the file.
    pub fn flush(&mut self) -> Result<(), Error> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let res = self.file.write_all(&self.buffer);
        self.buffer.clear();
        self.unflushed = 0;
        res.map_err(|e| Error::Checkpoint {
            path: self.path.clone(),
            reason: format!("append: {e}"),
        })
    }

    /// Flush and durably sync the checkpoint (end of sweep, or the final
    /// write after a cancellation).
    pub fn finalize(&mut self) -> Result<(), Error> {
        self.flush()?;
        self.file.sync_all().map_err(|e| Error::Checkpoint {
            path: self.path.clone(),
            reason: format!("sync: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("swck-{}-{tag}.bin", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn digest(n: u8) -> [u8; 16] {
        [n; 16]
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let path = temp_path("round-trip");
        let mut ck = CheckpointStore::open(&path, 7).unwrap();
        ck.append(&digest(1), b"one").unwrap();
        ck.append(&digest(2), b"two").unwrap();
        ck.finalize().unwrap();
        drop(ck);

        let mut ck = CheckpointStore::open(&path, 7).unwrap();
        assert_eq!(
            ck.report,
            LoadReport {
                loaded: 2,
                discarded: false
            }
        );
        assert_eq!(ck.take(&digest(1)).as_deref(), Some(&b"one"[..]));
        assert_eq!(ck.take(&digest(2)).as_deref(), Some(&b"two"[..]));
        assert_eq!(ck.take(&digest(2)), None, "entries are consumed once");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn different_root_seed_discards_the_file() {
        let path = temp_path("root-seed");
        let mut ck = CheckpointStore::open(&path, 7).unwrap();
        ck.append(&digest(1), b"one").unwrap();
        ck.finalize().unwrap();
        drop(ck);

        let ck = CheckpointStore::open(&path, 8).unwrap();
        assert_eq!(
            ck.report,
            LoadReport {
                loaded: 0,
                discarded: true
            }
        );
        assert_eq!(ck.remaining(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_keeps_the_valid_prefix() {
        let path = temp_path("truncated");
        let mut ck = CheckpointStore::open(&path, 1).unwrap();
        ck.append(&digest(1), b"payload-one").unwrap();
        ck.append(&digest(2), b"payload-two").unwrap();
        ck.finalize().unwrap();
        drop(ck);

        let bytes = std::fs::read(&path).unwrap();
        for cut in [bytes.len() - 1, bytes.len() - 5, bytes.len() - 20] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let ck = CheckpointStore::open(&path, 1).unwrap();
            assert!(ck.report.discarded, "cut at {cut} must report discard");
            assert!(
                ck.contains(&digest(1)),
                "first record survives a tail cut at {cut}"
            );
            assert!(!ck.contains(&digest(2)), "cut at {cut} drops the tail");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_discards_from_the_flipped_record_on() {
        let path = temp_path("bit-flip");
        let mut ck = CheckpointStore::open(&path, 1).unwrap();
        ck.append(&digest(1), b"payload-one").unwrap();
        ck.append(&digest(2), b"payload-two").unwrap();
        ck.finalize().unwrap();
        drop(ck);

        // Flip one byte inside the *second* record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let ck = CheckpointStore::open(&path, 1).unwrap();
        assert!(ck.report.discarded);
        assert!(ck.contains(&digest(1)), "records before the flip survive");
        assert!(!ck.contains(&digest(2)), "the flipped record is dropped");

        // Flip a byte inside the header: everything goes.
        bytes[5] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let ck = CheckpointStore::open(&path, 1).unwrap();
        assert_eq!(
            ck.report,
            LoadReport {
                loaded: 0,
                discarded: true
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn appending_after_a_discarded_tail_yields_a_clean_file() {
        let path = temp_path("heal");
        let mut ck = CheckpointStore::open(&path, 1).unwrap();
        ck.append(&digest(1), b"one").unwrap();
        ck.append(&digest(2), b"two").unwrap();
        ck.finalize().unwrap();
        drop(ck);

        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let mut ck = CheckpointStore::open(&path, 1).unwrap();
        ck.append(&digest(3), b"three").unwrap();
        ck.finalize().unwrap();
        drop(ck);

        let ck = CheckpointStore::open(&path, 1).unwrap();
        assert_eq!(
            ck.report,
            LoadReport {
                loaded: 2,
                discarded: false
            }
        );
        assert!(ck.contains(&digest(1)) && ck.contains(&digest(3)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_checkpoint() {
        let path = temp_path("missing");
        let ck = CheckpointStore::open(&path, 1).unwrap();
        assert_eq!(
            ck.report,
            LoadReport {
                loaded: 0,
                discarded: false
            }
        );
        assert!(path.exists(), "open creates the file");
        let _ = std::fs::remove_file(&path);
    }
}
