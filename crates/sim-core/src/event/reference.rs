//! The original binary-heap event queue, retained as a determinism oracle.
//!
//! [`ReferenceQueue`] is the pre-timer-wheel implementation of the event
//! core: a `BinaryHeap` ordered by `(at, seq)` plus two `HashSet<u64>`s for
//! lazy cancellation. It is kept — not as a production path, but as the
//! **reference semantics** for the wheel in [`super`]:
//!
//! * the differential property test (`tests/event_differential.rs`) drives
//!   both queues with identical random schedule/cancel workloads and asserts
//!   byte-identical event streams;
//! * the perf harness (`bench` crate) measures it as the baseline the wheel's
//!   speedup is quoted against.
//!
//! Behavioural contract (shared with the wheel): FIFO within a timestamp,
//! monotone clock, panic on scheduling in the past, `cancel` reports whether
//! the event was still pending. The only intentional deviation from the
//! original code is that `peek_time` is pure (`&self`, O(n) scan) instead of
//! draining cancelled entries off the heap top, matching the wheel's pure
//! signature.
//!
//! Token values are *not* part of the shared contract: this queue hands out
//! sequence numbers, the wheel hands out generation-tagged slab indices.
//! Tokens are opaque handles either way.

use super::{ScheduledEvent, TimerToken};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest time first; FIFO within a timestamp.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Heap + hash-set event queue (the wheel's reference semantics).
///
/// Same API surface as [`super::EventQueue`]; see the module docs for why it
/// is kept around.
pub struct ReferenceQueue<E> {
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
    now: SimTime,
    next_seq: u64,
    /// Lazily cancelled sequence numbers: entries stay in the heap and are
    /// skipped at pop time.
    cancelled: HashSet<u64>,
    /// Sequence numbers currently in the heap and not cancelled.
    live: HashSet<u64>,
    popped: u64,
}

impl<E> Default for ReferenceQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceQueue<E> {
    /// An empty queue with the clock at t = 0.
    pub fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            cancelled: HashSet::new(),
            live: HashSet::new(),
            popped: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever popped.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> TimerToken {
        assert!(
            at >= self.now,
            "attempted to schedule an event in the past: at={at:?} < now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(HeapEntry { at, seq, event }));
        self.live.insert(seq);
        TimerToken(seq)
    }

    /// Schedule `event` to fire `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> TimerToken {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending. Cancellation is lazy: the entry stays in the heap and
    /// is skipped when it reaches the top.
    pub fn cancel(&mut self, token: TimerToken) -> bool {
        if self.live.remove(&token.0) {
            self.cancelled.insert(token.0);
            true
        } else {
            false
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue; // Lazily discard cancelled events.
            }
            self.live.remove(&entry.seq);
            debug_assert!(entry.at >= self.now, "event queue time went backwards");
            self.now = entry.at;
            self.popped += 1;
            return Some(ScheduledEvent {
                at: entry.at,
                token: TimerToken(entry.seq),
                event: entry.event,
            });
        }
        None
    }

    /// Peek at the firing time of the next pending event without popping.
    ///
    /// Pure but O(n): scans past lazily-cancelled entries. Fine for a test
    /// oracle; the wheel does this in O(1)/short-scan.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|Reverse(e)| !self.cancelled.contains(&e.seq))
            .map(|Reverse(e)| e.at)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_original_semantics() {
        let mut q = ReferenceQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let a = q.schedule_at(SimTime::from_millis(1), 99);
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 10);
        assert_eq!(q.peek_time(), Some(t));
        assert_eq!(q.peek_time(), Some(t), "peek is pure");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
        assert_eq!(q.popped(), 10);
    }
}
