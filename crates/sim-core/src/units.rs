//! Bandwidth and byte-count units, and the byte↔time conversions at the
//! heart of packet pacing.
//!
//! The paper's Eq. (1) — `idleTime = socketBufferLength / pacingRate` — is
//! computed thousands of times per simulated second, so these conversions
//! are integer-exact where possible: [`Bandwidth::time_to_send`] computes
//! `ceil(bytes * 8e9 / bits_per_sec)` nanoseconds in 128-bit arithmetic.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A data rate in bits per second.
///
/// ```
/// use sim_core::units::Bandwidth;
///
/// let line = Bandwidth::from_gbps(1);
/// // A full wire frame takes 12.112 µs at line rate:
/// assert_eq!(line.time_to_send(1514).as_nanos(), 12_112);
/// // BBR-style gains:
/// assert_eq!(line.mul_f64(1.25), Bandwidth::from_mbps(1250));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero rate: used as "no rate yet" in filters before the first sample.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Construct from kilobits per second (10^3 bits).
    pub const fn from_kbps(kbps: u64) -> Self {
        Bandwidth(kbps * 1_000)
    }

    /// Construct from megabits per second (10^6 bits).
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// Construct from gigabits per second (10^9 bits).
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Construct from bytes per second.
    pub const fn from_bytes_per_sec(bytes: u64) -> Self {
        Bandwidth(bytes * 8)
    }

    /// The rate that delivers `bytes` over `interval` (rounded down).
    /// Returns `ZERO` for a zero interval.
    pub fn from_bytes_over(bytes: u64, interval: SimDuration) -> Self {
        if interval.is_zero() {
            return Bandwidth::ZERO;
        }
        let bits = (bytes as u128) * 8 * 1_000_000_000;
        Bandwidth((bits / interval.as_nanos() as u128) as u64)
    }

    /// Bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Megabits per second, fractional (reporting).
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Bytes per second (truncating).
    pub const fn as_bytes_per_sec(self) -> u64 {
        self.0 / 8
    }

    /// True if the rate is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Wire time to serialize `bytes` at this rate, rounded *up* to the next
    /// nanosecond (pacing must never release early).
    ///
    /// # Panics
    /// Panics on a zero rate: asking how long an infinitely slow link takes
    /// is a logic error; guard with [`Bandwidth::is_zero`] first.
    pub fn time_to_send(self, bytes: u64) -> SimDuration {
        assert!(self.0 > 0, "time_to_send on zero bandwidth");
        let bits_ns = (bytes as u128) * 8 * 1_000_000_000;
        let ns = bits_ns.div_ceil(self.0 as u128);
        SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Bytes deliverable in `interval` at this rate (truncating).
    pub fn bytes_in(self, interval: SimDuration) -> u64 {
        let bits = (self.0 as u128) * (interval.as_nanos() as u128) / 1_000_000_000;
        ((bits / 8).min(u64::MAX as u128)) as u64
    }

    /// Scale by a float gain (BBR's pacing gains are 2.885, 1.25, 0.75, …).
    /// Panics on negative or non-finite gains.
    pub fn mul_f64(self, gain: f64) -> Bandwidth {
        assert!(
            gain.is_finite() && gain >= 0.0,
            "bandwidth gain must be finite and >= 0, got {gain}"
        );
        let scaled = self.0 as f64 * gain;
        Bandwidth(if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            scaled as u64
        })
    }

    /// Integer division (e.g. fair share per connection).
    // Deliberately not `Div::div`: the divisor is a plain count, not a
    // `Bandwidth`, and the zero-divisor clamp below is part of the API.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, k: u64) -> Bandwidth {
        Bandwidth(self.0 / k.max(1))
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}Mbps", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}Kbps", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

/// A byte count (sizes: segment lengths, buffer occupancy).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Construct from kilobytes (10^3).
    pub const fn from_kb(kb: u64) -> Self {
        ByteSize(kb * 1_000)
    }

    /// Construct from kibibytes (2^10) — socket buffer sizes are binary.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Kilobits, fractional — Table 2 reports skb length in Kb.
    pub fn as_kilobits_f64(self) -> f64 {
        self.0 as f64 * 8.0 / 1e3
    }

    /// True if zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Smaller of two sizes.
    pub fn min(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.min(rhs.0))
    }

    /// Larger of two sizes.
    pub fn max(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.max(rhs.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(
            self.0
                .checked_sub(rhs.0)
                .expect("ByteSize subtraction underflow"),
        )
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_048_576 {
            write!(f, "{:.2}MiB", self.0 as f64 / 1_048_576.0)
        } else if self.0 >= 1024 {
            write!(f, "{:.2}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A monotonically growing byte counter (totals: bytes delivered, sent).
/// Distinct from [`ByteSize`] so totals and sizes cannot be mixed up.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ByteCount(u64);

impl ByteCount {
    /// Zero.
    pub const ZERO: ByteCount = ByteCount(0);

    /// Construct from a raw count.
    pub const fn new(bytes: u64) -> Self {
        ByteCount(bytes)
    }

    /// Raw count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Add a size to the running total.
    pub fn add_size(&mut self, size: ByteSize) {
        self.0 = self.0.saturating_add(size.bytes());
    }

    /// Bytes accumulated since an earlier snapshot (panics if `earlier` is larger).
    pub fn since(self, earlier: ByteCount) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("ByteCount went backwards")
    }

    /// Goodput over an interval: total bytes / time.
    pub fn rate_over(self, interval: SimDuration) -> Bandwidth {
        Bandwidth::from_bytes_over(self.0, interval)
    }
}

impl fmt::Debug for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bandwidth_constructors_agree() {
        assert_eq!(Bandwidth::from_gbps(1), Bandwidth::from_mbps(1_000));
        assert_eq!(Bandwidth::from_mbps(1), Bandwidth::from_kbps(1_000));
        assert_eq!(Bandwidth::from_bytes_per_sec(125), Bandwidth::from_kbps(1));
    }

    #[test]
    fn time_to_send_exact_cases() {
        // 1514-byte wire frame at 1 Gbps = 12,112 ns.
        let gig = Bandwidth::from_gbps(1);
        assert_eq!(gig.time_to_send(1514), SimDuration::from_nanos(12_112));
        // 15,000-byte skb at 140 Mbps (paper's §5.1.2 rate).
        let d = Bandwidth::from_mbps(140).time_to_send(15_000);
        assert_eq!(
            d.as_nanos(),
            (15_000u128 * 8 * 1_000_000_000).div_ceil(140_000_000) as u64
        );
    }

    #[test]
    fn time_to_send_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s, must round up.
        let d = Bandwidth::from_bps(3).time_to_send(1);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn time_to_send_zero_rate_panics() {
        Bandwidth::ZERO.time_to_send(1);
    }

    #[test]
    fn paper_eq1_idle_time() {
        // Table 2 row 1x: 32.1 Kb skb, expected idle 0.88 ms implies a
        // per-connection pacing rate of ~36.5 Mbps.
        let skb_bits = 32_100u64;
        let rate = Bandwidth::from_bps(skb_bits * 1000 / 880 * 1000); // bits / 0.88ms
        let idle = rate.time_to_send(skb_bits / 8);
        assert!((idle.as_millis_f64() - 0.88).abs() < 0.01, "idle {idle}");
    }

    #[test]
    fn bytes_in_inverts_time_to_send_approximately() {
        let bw = Bandwidth::from_mbps(16); // paper's theoretical per-conn need
        let bytes = 10_000;
        let t = bw.time_to_send(bytes);
        let back = bw.bytes_in(t);
        assert!((back as i64 - bytes as i64).abs() <= 1, "{back} vs {bytes}");
    }

    #[test]
    fn from_bytes_over_computes_goodput() {
        // 325 Mbps over 5 s = 203,125,000 bytes.
        let bw = Bandwidth::from_bytes_over(203_125_000, SimDuration::from_secs(5));
        assert_eq!(bw, Bandwidth::from_mbps(325));
    }

    #[test]
    fn from_bytes_over_zero_interval_is_zero() {
        assert_eq!(
            Bandwidth::from_bytes_over(100, SimDuration::ZERO),
            Bandwidth::ZERO
        );
    }

    #[test]
    fn gain_scaling() {
        let bw = Bandwidth::from_mbps(100);
        assert_eq!(bw.mul_f64(1.25), Bandwidth::from_mbps(125));
        assert_eq!(bw.mul_f64(0.75), Bandwidth::from_mbps(75));
        assert_eq!(bw.mul_f64(0.0), Bandwidth::ZERO);
    }

    #[test]
    fn division_for_fair_share() {
        // 1 Gbps / 20 connections = 50 Mbps each.
        assert_eq!(Bandwidth::from_gbps(1).div(20), Bandwidth::from_mbps(50));
        // Division by zero clamps to 1 rather than panicking (harness safety).
        assert_eq!(Bandwidth::from_mbps(10).div(0), Bandwidth::from_mbps(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::from_gbps(1).to_string(), "1.000Gbps");
        assert_eq!(Bandwidth::from_mbps(140).to_string(), "140.000Mbps");
        assert_eq!(Bandwidth::from_bps(12).to_string(), "12bps");
        assert_eq!(ByteSize::from_kib(64).to_string(), "64.00KiB");
    }

    #[test]
    fn bytesize_kilobits_reporting() {
        // Table 2: a 15,125-byte skb is 121 Kb.
        let skb = ByteSize::new(15_125);
        assert!((skb.as_kilobits_f64() - 121.0).abs() < 0.01);
    }

    #[test]
    fn bytecount_accumulates_and_rates() {
        let mut total = ByteCount::ZERO;
        for _ in 0..10 {
            total.add_size(ByteSize::new(1_000_000));
        }
        assert_eq!(total.bytes(), 10_000_000);
        assert_eq!(
            total.rate_over(SimDuration::from_secs(1)),
            Bandwidth::from_mbps(80)
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn bytesize_sub_underflow_panics() {
        let _ = ByteSize::new(1) - ByteSize::new(2);
    }

    proptest! {
        #[test]
        fn prop_time_to_send_monotone_in_bytes(
            rate_mbps in 1u64..10_000,
            a in 0u64..10_000_000,
            b in 0u64..10_000_000,
        ) {
            let bw = Bandwidth::from_mbps(rate_mbps);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bw.time_to_send(lo) <= bw.time_to_send(hi));
        }

        #[test]
        fn prop_time_to_send_antitone_in_rate(
            r1 in 1u64..10_000,
            r2 in 1u64..10_000,
            bytes in 1u64..10_000_000,
        ) {
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            prop_assert!(
                Bandwidth::from_mbps(hi).time_to_send(bytes)
                    <= Bandwidth::from_mbps(lo).time_to_send(bytes)
            );
        }

        #[test]
        fn prop_rate_roundtrip(bytes in 1u64..100_000_000, ms in 1u64..100_000) {
            let interval = SimDuration::from_millis(ms);
            let bw = Bandwidth::from_bytes_over(bytes, interval);
            // Converting back loses at most rounding error.
            let back = bw.bytes_in(interval);
            prop_assert!(back <= bytes);
            prop_assert!(bytes - back <= bytes / 1000 + 8);
        }
    }
}
