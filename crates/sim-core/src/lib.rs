//! # sim-core
//!
//! The deterministic discrete-event simulation (DES) engine underneath the
//! `mobile-bbr` reproduction of *"Are Mobiles Ready for BBR?"* (IMC 2022).
//!
//! Everything in the reproduction — the mobile CPU model, the network links,
//! the TCP stack, the pacing timers — advances on a single logical clock
//! ([`SimTime`], nanosecond resolution) driven by an [`event::EventQueue`].
//! Determinism is a hard requirement: the paper's findings are statements
//! about *relative* performance across configurations, so every experiment
//! must be exactly reproducible from its seed. To that end:
//!
//! * time is integer nanoseconds (no floating-point clock drift);
//! * the event queue breaks ties by insertion sequence number, so two events
//!   scheduled for the same instant always pop in schedule order;
//! * randomness comes from [`rng::SimRng`], a splittable xoshiro256** PRNG
//!   with a documented, platform-independent bit stream.
//!
//! The companion modules provide the shared vocabulary of the workspace:
//! [`units`] (bandwidth, byte counts, and the byte↔time conversions every
//! pacing computation needs) and [`metrics`] (counters, time series, and
//! streaming summary statistics used by the iperf-style reports).
//!
//! Batch execution lives in [`sweep`]: a parallel, deterministic sweep
//! engine with a content-addressed run cache, used by the `repro` and
//! `ablations` binaries to fan experiment cells across worker threads
//! while staying bit-identical to a serial run.
//!
//! Verification machinery lives in [`check`]: invariant oracles,
//! scenario shrinking, and the persisted failure corpus behind the
//! `simcheck` scenario fuzzer (the concrete oracle library is in the
//! bench crate, which can see the full simulator API).
//!
//! Observability lives in [`trace`] (`sim-trace`) and [`telemetry`]:
//! `trace` is a flight recorder for *events* — ring buffers fed by
//! tracepoints in the hot paths, merged into a deterministic
//! [`trace::TraceLog`] and exported as JSONL or Chrome/Perfetto trace
//! events — while `telemetry` is a strip chart for *state*, sampling
//! per-flow cwnd/rate/RTT and bottleneck queue depth at a fixed sim-time
//! interval for the `repro --report` flight-data pipeline. Both are
//! statically zero-cost when their cargo feature (`trace` / `telemetry`,
//! on by default) is disabled, and neither perturbs simulation results
//! when enabled.

#![warn(missing_docs)]

pub mod check;
pub mod checkpoint;
pub mod error;
pub mod event;
pub mod metrics;
pub mod rng;
pub mod sweep;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod units;

pub use check::{evaluate, Corpus, NamedOracle, Oracle, Violation};
pub use checkpoint::CheckpointStore;
pub use error::{Error, Result};
pub use event::{EventQueue, ScheduledEvent, TimerToken};
pub use rng::SimRng;
pub use sweep::{
    run_sweep, run_sweep_streaming, CancelToken, CellReport, SweepCell, SweepOptions, SweepReport,
    SweepSummary,
};
pub use telemetry::{FlowSample, QueueSample, TelemetryLog, TelemetrySink};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceBuffer, TraceKind, TraceLog, TraceRecord, TraceSink};
pub use units::{Bandwidth, ByteCount, ByteSize};
