//! `sim-trace`: flight-recorder tracing for the simulation engine.
//!
//! The paper's evidence is observability — Fig. 4/5 are CPU profiles
//! attributing cycles to pacing-timer fires, and §5 is diagnosed by watching
//! per-flow pacing/cwnd dynamics. This module is the substrate for showing
//! that *mechanism* rather than only asserting end-of-run aggregates:
//! tracepoints in the hot paths record into fixed-capacity ring buffers that
//! are merged into a [`TraceLog`] and exported as compact JSONL or
//! Chrome/Perfetto trace-event JSON.
//!
//! # Design constraints
//!
//! * **Statically zero-cost when disabled.** All tracepoints go through
//!   [`TraceSink`]. With the `trace` cargo feature off, `TraceSink` is a
//!   zero-sized type and every method is an empty inline — the instrumented
//!   hot paths compile to exactly the un-instrumented code. With the feature
//!   on but no sink attached (the default at runtime), each tracepoint is a
//!   single branch on a `None`.
//! * **Deterministic.** Timestamps are [`SimTime`] — never wall clock — and
//!   each simulation owns its buffers, so a trace is a pure function of the
//!   simulated run and bit-identical across `--jobs N` worker placements.
//! * **No allocation in steady state.** [`TraceBuffer`] pre-allocates its
//!   full capacity up front and overwrites the oldest records when full
//!   (flight-recorder semantics), counting what it dropped.
//!
//! # Record model
//!
//! A [`TraceRecord`] is 32 bytes: a timestamp, a [`TraceKind`], and three
//! small integer operands (`conn`, `a`, `b`) whose meaning is per-kind (see
//! [`TraceKind`]). Kinds that carry strings (CPU span categories, CC phase
//! names) intern `&'static str`s into a per-buffer table and store the index;
//! [`TraceLog::merge`] rebuilds a unified table when buffers are combined.
//!
//! # Export formats
//!
//! * **JSONL** ([`write_jsonl`]): one header object
//!   (`{"schema":"sim-trace/v1",...}`), then one object per record in
//!   timestamp order, fields `t`/`k`/`conn`/`a`/`b` with interned fields
//!   resolved to inline strings, plus `{"k":"counter",...}` lines for
//!   counter series (e.g. the windowed CPU profile).
//! * **Chrome trace events** ([`write_chrome`]): loadable in Perfetto /
//!   `chrome://tracing`. CPU spans become complete (`ph:"X"`) events,
//!   cwnd/pacing-rate updates and counter series become counter (`ph:"C"`)
//!   tracks, per-connection events become instants on one track per
//!   connection. Raw wheel schedule/cancel/pop records are omitted (too
//!   dense to render usefully); cascades are kept as instants.

use crate::time::SimTime;
use std::io::{self, Write};

/// Default ring capacity per trace buffer (records). At 32 bytes per record
/// this is 8 MiB per domain — enough for several seconds of a 20-connection
/// run before the flight recorder starts overwriting.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// What a [`TraceRecord`] describes, and how to read its operands.
///
/// Operand meaning per kind (`-` = unused, zero):
///
/// | kind           | `conn`        | `a`                 | `b`          |
/// |----------------|---------------|---------------------|--------------|
/// | `WheelSchedule`| -             | deadline (ns)       | token bits   |
/// | `WheelCancel`  | -             | token bits          | -            |
/// | `WheelPop`     | -             | token bits          | -            |
/// | `WheelCascade` | -             | wheel level         | events moved |
/// | `PacingFire`   | connection    | -                   | -            |
/// | `TimerArm`     | connection    | deadline (ns)       | -            |
/// | `SegTx`        | connection    | packets             | bytes        |
/// | `SegRetx`      | connection    | packets             | bytes        |
/// | `AckRx`        | connection    | newly-acked bytes   | RTT (ns)     |
/// | `CwndUpdate`   | connection    | cwnd (bytes)        | -            |
/// | `PacingRate`   | connection    | rate (bits/sec)     | -            |
/// | `CcPhase`      | connection    | from (string id)    | to (string id)|
/// | `StrideAdapt`  | -             | old stride          | new stride   |
/// | `RtoFire`      | connection    | backoff exponent    | -            |
/// | `CpuSpan`      | category (string id) | span end (ns) | cycles      |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceKind {
    /// Timer wheel: an event was scheduled.
    WheelSchedule,
    /// Timer wheel: a pending event was cancelled.
    WheelCancel,
    /// Timer wheel: an event was delivered.
    WheelPop,
    /// Timer wheel: a slot list was cascaded down a level.
    WheelCascade,
    /// A pacing timer fired and released a send.
    PacingFire,
    /// A pacing timer was armed.
    TimerArm,
    /// Segments were transmitted (first transmission).
    SegTx,
    /// Segments were retransmitted.
    SegRetx,
    /// An ACK arrived and was processed.
    AckRx,
    /// The congestion window changed.
    CwndUpdate,
    /// The CC pacing rate changed.
    PacingRate,
    /// The congestion controller changed phase (e.g. Startup → Drain).
    CcPhase,
    /// The TSQ autosizing governor changed the pacing stride.
    StrideAdapt,
    /// A retransmission timeout fired.
    RtoFire,
    /// The modelled CPU executed a span of work.
    CpuSpan,
}

/// All kinds, in discriminant order (export and validation iterate this).
pub const ALL_KINDS: [TraceKind; 15] = [
    TraceKind::WheelSchedule,
    TraceKind::WheelCancel,
    TraceKind::WheelPop,
    TraceKind::WheelCascade,
    TraceKind::PacingFire,
    TraceKind::TimerArm,
    TraceKind::SegTx,
    TraceKind::SegRetx,
    TraceKind::AckRx,
    TraceKind::CwndUpdate,
    TraceKind::PacingRate,
    TraceKind::CcPhase,
    TraceKind::StrideAdapt,
    TraceKind::RtoFire,
    TraceKind::CpuSpan,
];

impl TraceKind {
    /// Stable snake_case name used in the JSONL `k` field.
    pub const fn name(self) -> &'static str {
        match self {
            TraceKind::WheelSchedule => "wheel_schedule",
            TraceKind::WheelCancel => "wheel_cancel",
            TraceKind::WheelPop => "wheel_pop",
            TraceKind::WheelCascade => "wheel_cascade",
            TraceKind::PacingFire => "pacing_fire",
            TraceKind::TimerArm => "timer_arm",
            TraceKind::SegTx => "seg_tx",
            TraceKind::SegRetx => "seg_retx",
            TraceKind::AckRx => "ack_rx",
            TraceKind::CwndUpdate => "cwnd_update",
            TraceKind::PacingRate => "pacing_rate",
            TraceKind::CcPhase => "cc_phase",
            TraceKind::StrideAdapt => "stride_adapt",
            TraceKind::RtoFire => "rto_fire",
            TraceKind::CpuSpan => "cpu_span",
        }
    }

    /// Which operands hold string-table indices: `(conn, a, b)`.
    pub const fn interned_operands(self) -> (bool, bool, bool) {
        match self {
            TraceKind::CcPhase => (false, true, true),
            TraceKind::CpuSpan => (true, false, false),
            _ => (false, false, false),
        }
    }
}

/// One trace event. 32 bytes; operand meaning is defined by [`TraceKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time the event happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Connection id, or a string-table index for [`TraceKind::CpuSpan`].
    pub conn: u32,
    /// First operand (see [`TraceKind`]).
    pub a: u64,
    /// Second operand (see [`TraceKind`]).
    pub b: u64,
}

/// A fixed-capacity flight-recorder ring of [`TraceRecord`]s.
///
/// Capacity is allocated once at construction; when full, the oldest record
/// is overwritten and `dropped` is incremented. Records are appended in
/// non-decreasing `at` order by construction (each domain records as its own
/// clock advances), which [`TraceLog::merge`] relies on.
#[derive(Debug)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
    cap: usize,
    /// Write cursor when full: index of the oldest (next overwritten) record.
    head: usize,
    dropped: u64,
    strings: Vec<&'static str>,
}

impl TraceBuffer {
    /// A ring holding at most `capacity` records (at least 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        TraceBuffer {
            records: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
            strings: Vec::new(),
        }
    }

    /// Append a record, overwriting the oldest if the ring is full.
    #[inline]
    pub fn push(&mut self, rec: TraceRecord) {
        if self.records.len() < self.cap {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Intern a static string, returning its stable index in this buffer.
    ///
    /// Linear search: tracepoints intern a handful of distinct strings (CPU
    /// cost categories, CC phase names), so this is a short scan of a tiny
    /// vector — no hashing on the hot path.
    #[inline]
    pub fn intern(&mut self, s: &'static str) -> u64 {
        if let Some(i) = self
            .strings
            .iter()
            .position(|&x| std::ptr::eq(x, s) || x == s)
        {
            return i as u64;
        }
        self.strings.push(s);
        (self.strings.len() - 1) as u64
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The interned string table (index = the id stored in records).
    pub fn strings(&self) -> &[&'static str] {
        &self.strings
    }

    /// Consume the ring, returning records oldest-first.
    fn into_ordered(self) -> (Vec<TraceRecord>, Vec<&'static str>, u64) {
        let mut records = self.records;
        if self.dropped > 0 {
            records.rotate_left(self.head);
        }
        (records, self.strings, self.dropped)
    }
}

/// A tracepoint target that may or may not be recording.
///
/// Instrumented structs own a `TraceSink` and call [`TraceSink::record`]
/// unconditionally at each tracepoint. With the `trace` cargo feature off
/// this type is zero-sized and every method is an inline no-op; with the
/// feature on, recording costs one branch until a buffer is attached with
/// [`TraceSink::enable`].
#[derive(Debug, Default)]
pub struct TraceSink {
    #[cfg(feature = "trace")]
    buf: Option<Box<TraceBuffer>>,
}

impl TraceSink {
    /// A sink that records nothing (the default for every simulation).
    pub const fn disabled() -> Self {
        TraceSink {
            #[cfg(feature = "trace")]
            buf: None,
        }
    }

    /// Attach a fresh ring of `capacity` records. No-op when the `trace`
    /// feature is compiled out.
    pub fn enable(&mut self, capacity: usize) {
        #[cfg(feature = "trace")]
        {
            self.buf = Some(Box::new(TraceBuffer::new(capacity)));
        }
        #[cfg(not(feature = "trace"))]
        let _ = capacity;
    }

    /// True if a buffer is attached and records are being kept.
    ///
    /// Always `false` with the `trace` feature off — guarding a tracepoint's
    /// argument preparation behind this lets the optimizer delete it.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.buf.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Record one event (dropped silently when not enabled).
    #[inline(always)]
    pub fn record(&mut self, at: SimTime, kind: TraceKind, conn: u32, a: u64, b: u64) {
        #[cfg(feature = "trace")]
        if let Some(buf) = self.buf.as_mut() {
            buf.push(TraceRecord {
                at,
                kind,
                conn,
                a,
                b,
            });
        }
        #[cfg(not(feature = "trace"))]
        let _ = (at, kind, conn, a, b);
    }

    /// Intern a string into the attached buffer (0 when not enabled).
    #[inline(always)]
    pub fn intern(&mut self, s: &'static str) -> u64 {
        #[cfg(feature = "trace")]
        if let Some(buf) = self.buf.as_mut() {
            return buf.intern(s);
        }
        let _ = s;
        0
    }

    /// Detach and return the buffer, leaving the sink disabled.
    pub fn take(&mut self) -> Option<TraceBuffer> {
        #[cfg(feature = "trace")]
        {
            self.buf.take().map(|b| *b)
        }
        #[cfg(not(feature = "trace"))]
        {
            None
        }
    }
}

/// A named time series of sampled values (e.g. per-window CPU cycles),
/// carried alongside point events in a [`TraceLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSeries {
    /// Series name, e.g. `cycles.timers`.
    pub name: String,
    /// `(window start, value)` points in ascending time order.
    pub points: Vec<(SimTime, u64)>,
}

/// A complete, merged trace of one simulated run.
#[derive(Debug, Default)]
pub struct TraceLog {
    /// All records in ascending `(at, domain, intra-domain order)` order.
    pub events: Vec<TraceRecord>,
    /// Unified string table; records index into it (see
    /// [`TraceKind::interned_operands`]).
    pub strings: Vec<&'static str>,
    /// Total records overwritten across all source rings.
    pub dropped: u64,
    /// Auxiliary counter series (e.g. the windowed CPU profile).
    pub counters: Vec<CounterSeries>,
}

impl TraceLog {
    /// Merge per-domain buffers into one time-ordered log.
    ///
    /// Buffers need not be internally time-ordered: the TCP stack stamps
    /// some records at CPU-completion times, which run ahead of the event
    /// clock, so a later handler can record an earlier timestamp. The
    /// merge stable-sorts by `at`; ties break by the position of the
    /// buffer in `buffers` (pass them in a fixed order — the simulator
    /// uses wheel, CPU, stack) and then by insertion order within a
    /// buffer, so the merged order is fully deterministic.
    pub fn merge(buffers: Vec<TraceBuffer>) -> TraceLog {
        let mut strings: Vec<&'static str> = Vec::new();
        let mut intern = |s: &'static str| -> u64 {
            if let Some(i) = strings.iter().position(|&x| x == s) {
                return i as u64;
            }
            strings.push(s);
            (strings.len() - 1) as u64
        };
        let mut dropped = 0u64;
        let mut events: Vec<TraceRecord> = Vec::new();
        for buf in buffers {
            let (mut records, local, d) = buf.into_ordered();
            dropped += d;
            // Remap this buffer's string ids into the unified table.
            let map: Vec<u64> = local.iter().map(|&s| intern(s)).collect();
            for rec in &mut records {
                let (c, a, b) = rec.kind.interned_operands();
                if c {
                    rec.conn = map.get(rec.conn as usize).copied().unwrap_or(0) as u32;
                }
                if a {
                    rec.a = map.get(rec.a as usize).copied().unwrap_or(0);
                }
                if b {
                    rec.b = map.get(rec.b as usize).copied().unwrap_or(0);
                }
            }
            events.extend(records);
        }
        // Concatenation order is (buffer position, insertion order); a
        // stable sort by time alone preserves exactly that order for ties.
        events.sort_by_key(|rec| rec.at);
        TraceLog {
            events,
            strings,
            dropped,
            counters: Vec::new(),
        }
    }

    /// Resolve an interned string id (empty string if out of range).
    pub fn string(&self, id: u64) -> &'static str {
        self.strings.get(id as usize).copied().unwrap_or("")
    }
}

/// Escape a string for embedding in a JSON string literal.
///
/// Trace strings are static identifiers (category and phase names), but the
/// exporters escape defensively so the output is always valid JSON.
fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Write a [`TraceLog`] as compact JSONL (`sim-trace/v1` schema).
///
/// Line 1 is a header object with the schema id, event/drop counts, and the
/// string table; every following line is one event object with fields
/// `t` (ns), `k` (kind name), and the operands `conn`/`a`/`b` (interned
/// operands resolved to inline strings, unused operands omitted when zero is
/// ambiguous is avoided — all three are always present for uniformity).
/// Counter series points are interleaved in time order as
/// `{"t":..,"k":"counter","name":..,"v":..}` lines.
pub fn write_jsonl<W: Write>(log: &TraceLog, w: &mut W) -> io::Result<()> {
    let mut header = String::new();
    header.push_str("{\"schema\":\"sim-trace/v1\",\"events\":");
    header.push_str(&log.events.len().to_string());
    header.push_str(",\"dropped\":");
    header.push_str(&log.dropped.to_string());
    header.push_str(",\"counters\":");
    header.push_str(&log.counters.len().to_string());
    header.push_str(",\"strings\":[");
    for (i, s) in log.strings.iter().enumerate() {
        if i > 0 {
            header.push(',');
        }
        header.push('"');
        escape_json(s, &mut header);
        header.push('"');
    }
    header.push_str("]}\n");
    w.write_all(header.as_bytes())?;

    // Interleave events and counter points in time order. Counter cursors
    // advance through each series as event time passes their points.
    let mut cursors: Vec<usize> = vec![0; log.counters.len()];
    let mut line = String::with_capacity(128);
    let flush_counters_until = |t: u64, cursors: &mut [usize], w: &mut W| -> io::Result<()> {
        for (ci, series) in log.counters.iter().enumerate() {
            while let Some(&(at, v)) = series.points.get(cursors[ci]) {
                if at.as_nanos() > t {
                    break;
                }
                let mut l = String::with_capacity(64);
                l.push_str("{\"t\":");
                l.push_str(&at.as_nanos().to_string());
                l.push_str(",\"k\":\"counter\",\"name\":\"");
                escape_json(&series.name, &mut l);
                l.push_str("\",\"v\":");
                l.push_str(&v.to_string());
                l.push_str("}\n");
                w.write_all(l.as_bytes())?;
                cursors[ci] += 1;
            }
        }
        Ok(())
    };
    for rec in &log.events {
        flush_counters_until(rec.at.as_nanos(), &mut cursors, w)?;
        line.clear();
        line.push_str("{\"t\":");
        line.push_str(&rec.at.as_nanos().to_string());
        line.push_str(",\"k\":\"");
        line.push_str(rec.kind.name());
        line.push('"');
        let (ic, ia, ib) = rec.kind.interned_operands();
        let field = |line: &mut String, name: &str, val: u64, interned: bool| {
            line.push_str(",\"");
            line.push_str(name);
            line.push_str("\":");
            if interned {
                line.push('"');
                escape_json(log.string(val), line);
                line.push('"');
            } else {
                line.push_str(&val.to_string());
            }
        };
        field(&mut line, "conn", rec.conn as u64, ic);
        field(&mut line, "a", rec.a, ia);
        field(&mut line, "b", rec.b, ib);
        line.push_str("}\n");
        w.write_all(line.as_bytes())?;
    }
    flush_counters_until(u64::MAX, &mut cursors, w)?;
    Ok(())
}

/// Write a [`TraceLog`] in Chrome trace-event JSON, loadable in Perfetto or
/// `chrome://tracing`.
///
/// Mapping: CPU spans → complete (`ph:"X"`) events on a dedicated "cpu"
/// track, named by cost category; cwnd / pacing-rate updates and counter
/// series → counter (`ph:"C"`) tracks; per-connection point events →
/// instants on one track per connection; wheel cascades → instants on the
/// "wheel" track. Raw wheel schedule/cancel/pop records are omitted (they
/// dominate the record count but render as noise). Timestamps are
/// microseconds (`ts`/`dur` may be fractional).
pub fn write_chrome<W: Write>(log: &TraceLog, w: &mut W) -> io::Result<()> {
    const TID_CPU: u32 = 0;
    const TID_WHEEL: u32 = 1;
    const TID_CONN_BASE: u32 = 2;
    w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")?;
    let mut first = true;
    let emit = |w: &mut W, line: &str, first: &mut bool| -> io::Result<()> {
        if !*first {
            w.write_all(b",\n")?;
        }
        *first = false;
        w.write_all(line.as_bytes())
    };
    // Track name metadata.
    let mut max_conn = 0u32;
    for rec in &log.events {
        let (ic, _, _) = rec.kind.interned_operands();
        if !ic && rec.kind != TraceKind::WheelCascade && rec.kind != TraceKind::StrideAdapt {
            max_conn = max_conn.max(rec.conn);
        }
    }
    let meta = |w: &mut W, tid: u32, name: &str, first: &mut bool| -> io::Result<()> {
        let mut l = String::new();
        l.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":");
        l.push_str(&tid.to_string());
        l.push_str(",\"args\":{\"name\":\"");
        escape_json(name, &mut l);
        l.push_str("\"}}");
        emit(w, &l, first)
    };
    meta(w, TID_CPU, "cpu", &mut first)?;
    meta(w, TID_WHEEL, "timer wheel", &mut first)?;
    for c in 0..=max_conn {
        meta(w, TID_CONN_BASE + c, &format!("conn {c}"), &mut first)?;
    }

    let ts = |t: SimTime| -> String {
        let ns = t.as_nanos();
        if ns.is_multiple_of(1000) {
            (ns / 1000).to_string()
        } else {
            format!("{}.{:03}", ns / 1000, ns % 1000)
        }
    };
    let mut line = String::with_capacity(160);
    for rec in &log.events {
        line.clear();
        match rec.kind {
            TraceKind::WheelSchedule | TraceKind::WheelCancel | TraceKind::WheelPop => continue,
            TraceKind::CpuSpan => {
                // conn = category string id, a = end ns, b = cycles.
                let dur_ns = rec.a.saturating_sub(rec.at.as_nanos());
                line.push_str("{\"ph\":\"X\",\"name\":\"");
                escape_json(log.string(rec.conn as u64), &mut line);
                line.push_str("\",\"cat\":\"cpu\",\"pid\":1,\"tid\":0,\"ts\":");
                line.push_str(&ts(rec.at));
                line.push_str(",\"dur\":");
                line.push_str(&ts(SimTime::from_nanos(dur_ns)));
                line.push_str(",\"args\":{\"cycles\":");
                line.push_str(&rec.b.to_string());
                line.push_str("}}");
            }
            TraceKind::CwndUpdate | TraceKind::PacingRate => {
                let (metric, unit) = if rec.kind == TraceKind::CwndUpdate {
                    ("cwnd", "bytes")
                } else {
                    ("pacing_rate", "bps")
                };
                line.push_str("{\"ph\":\"C\",\"name\":\"");
                line.push_str(metric);
                line.push_str("/conn");
                line.push_str(&rec.conn.to_string());
                line.push_str("\",\"pid\":1,\"tid\":0,\"ts\":");
                line.push_str(&ts(rec.at));
                line.push_str(",\"args\":{\"");
                line.push_str(unit);
                line.push_str("\":");
                line.push_str(&rec.a.to_string());
                line.push_str("}}");
            }
            TraceKind::WheelCascade => {
                line.push_str("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"cascade L");
                line.push_str(&rec.a.to_string());
                line.push_str(" x");
                line.push_str(&rec.b.to_string());
                line.push_str("\",\"pid\":1,\"tid\":1,\"ts\":");
                line.push_str(&ts(rec.at));
                line.push('}');
            }
            TraceKind::StrideAdapt => {
                line.push_str("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"stride ");
                line.push_str(&rec.a.to_string());
                line.push_str("->");
                line.push_str(&rec.b.to_string());
                line.push_str("\",\"pid\":1,\"tid\":0,\"ts\":");
                line.push_str(&ts(rec.at));
                line.push('}');
            }
            TraceKind::CcPhase => {
                line.push_str("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"");
                escape_json(log.string(rec.a), &mut line);
                line.push_str("->");
                escape_json(log.string(rec.b), &mut line);
                line.push_str("\",\"pid\":1,\"tid\":");
                line.push_str(&(TID_CONN_BASE + rec.conn).to_string());
                line.push_str(",\"ts\":");
                line.push_str(&ts(rec.at));
                line.push('}');
            }
            _ => {
                line.push_str("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"");
                line.push_str(rec.kind.name());
                line.push_str("\",\"pid\":1,\"tid\":");
                line.push_str(&(TID_CONN_BASE + rec.conn).to_string());
                line.push_str(",\"ts\":");
                line.push_str(&ts(rec.at));
                line.push('}');
            }
        }
        emit(w, &line, &mut first)?;
    }
    for series in &log.counters {
        for &(at, v) in &series.points {
            line.clear();
            line.push_str("{\"ph\":\"C\",\"name\":\"");
            escape_json(&series.name, &mut line);
            line.push_str("\",\"pid\":1,\"tid\":0,\"ts\":");
            line.push_str(&ts(at));
            line.push_str(",\"args\":{\"v\":");
            line.push_str(&v.to_string());
            line.push_str("}}");
            emit(w, &line, &mut first)?;
        }
    }
    w.write_all(b"\n]}\n")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, kind: TraceKind, conn: u32, a: u64, b: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_nanos(t),
            kind,
            conn,
            a,
            b,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut buf = TraceBuffer::new(3);
        for t in 0..5u64 {
            buf.push(rec(t, TraceKind::WheelPop, 0, t, 0));
        }
        assert_eq!(buf.dropped(), 2);
        let (records, _, dropped) = buf.into_ordered();
        assert_eq!(dropped, 2);
        let times: Vec<u64> = records.iter().map(|r| r.at.as_nanos()).collect();
        assert_eq!(times, vec![2, 3, 4], "oldest records evicted first");
    }

    #[test]
    fn intern_is_stable_and_deduplicates() {
        let mut buf = TraceBuffer::new(4);
        let a = buf.intern("timers");
        let b = buf.intern("acks");
        assert_eq!(buf.intern("timers"), a);
        assert_eq!(buf.intern("acks"), b);
        assert_ne!(a, b);
        assert_eq!(buf.strings(), &["timers", "acks"]);
    }

    #[test]
    fn merge_orders_by_time_with_domain_tiebreak() {
        let mut wheel = TraceBuffer::new(8);
        wheel.push(rec(10, TraceKind::WheelPop, 0, 1, 0));
        wheel.push(rec(30, TraceKind::WheelPop, 0, 2, 0));
        let mut stack = TraceBuffer::new(8);
        stack.push(rec(10, TraceKind::PacingFire, 1, 0, 0));
        stack.push(rec(20, TraceKind::SegTx, 1, 2, 3000));
        let log = TraceLog::merge(vec![wheel, stack]);
        let kinds: Vec<TraceKind> = log.events.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::WheelPop,   // t=10, domain 0 wins the tie
                TraceKind::PacingFire, // t=10, domain 1
                TraceKind::SegTx,      // t=20
                TraceKind::WheelPop,   // t=30
            ]
        );
    }

    #[test]
    fn merge_remaps_string_ids_into_unified_table() {
        let mut cpu = TraceBuffer::new(8);
        let t = cpu.intern("timers");
        cpu.push(rec(5, TraceKind::CpuSpan, t as u32, 9, 100));
        let mut stack = TraceBuffer::new(8);
        let from = stack.intern("startup");
        let to = stack.intern("drain");
        stack.push(rec(5, TraceKind::CcPhase, 0, from, to));
        let log = TraceLog::merge(vec![cpu, stack]);
        let span = log.events[0];
        assert_eq!(log.string(span.conn as u64), "timers");
        let phase = log.events[1];
        assert_eq!(log.string(phase.a), "startup");
        assert_eq!(log.string(phase.b), "drain");
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.record(SimTime::from_nanos(1), TraceKind::SegTx, 0, 1, 2);
        assert!(sink.take().is_none());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn enabled_sink_round_trips_records() {
        let mut sink = TraceSink::disabled();
        sink.enable(16);
        assert!(sink.is_enabled());
        let cat = sink.intern("timers");
        sink.record(
            SimTime::from_nanos(7),
            TraceKind::CpuSpan,
            cat as u32,
            9,
            42,
        );
        let buf = sink.take().expect("buffer attached");
        assert!(!sink.is_enabled(), "take() detaches");
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.strings(), &["timers"]);
    }

    #[test]
    fn jsonl_export_shape() {
        let mut stack = TraceBuffer::new(8);
        let from = stack.intern("startup");
        let to = stack.intern("drain");
        stack.push(rec(1000, TraceKind::SegTx, 3, 2, 3000));
        stack.push(rec(2000, TraceKind::CcPhase, 3, from, to));
        let mut log = TraceLog::merge(vec![stack]);
        log.counters.push(CounterSeries {
            name: "cycles.timers".into(),
            points: vec![(SimTime::from_nanos(1500), 77)],
        });
        let mut out = Vec::new();
        write_jsonl(&log, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 events + 1 counter point");
        assert!(lines[0].starts_with("{\"schema\":\"sim-trace/v1\""));
        assert_eq!(
            lines[1],
            "{\"t\":1000,\"k\":\"seg_tx\",\"conn\":3,\"a\":2,\"b\":3000}"
        );
        assert_eq!(
            lines[2], "{\"t\":1500,\"k\":\"counter\",\"name\":\"cycles.timers\",\"v\":77}",
            "counter point interleaves in time order"
        );
        assert_eq!(
            lines[3],
            "{\"t\":2000,\"k\":\"cc_phase\",\"conn\":3,\"a\":\"startup\",\"b\":\"drain\"}"
        );
        // Every line parses as JSON under the workspace shim.
        for l in &lines {
            serde_json::from_str(l).expect("valid JSON line");
        }
    }

    #[test]
    fn chrome_export_is_valid_json_and_skips_raw_wheel_ops() {
        let mut wheel = TraceBuffer::new(8);
        wheel.push(rec(100, TraceKind::WheelSchedule, 0, 500, 1));
        wheel.push(rec(500, TraceKind::WheelPop, 0, 1, 0));
        wheel.push(rec(600, TraceKind::WheelCascade, 0, 2, 5));
        let mut cpu = TraceBuffer::new(8);
        let cat = cpu.intern("acks");
        cpu.push(rec(700, TraceKind::CpuSpan, cat as u32, 1700, 5500));
        let log = TraceLog::merge(vec![wheel, cpu]);
        let mut out = Vec::new();
        write_chrome(&log, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        serde_json::from_str(&text).expect("valid JSON document");
        assert!(text.contains("\"ph\":\"X\""), "cpu span present");
        assert!(text.contains("cascade L2"), "cascade instant present");
        assert!(!text.contains("wheel_schedule"), "raw wheel ops omitted");
    }

    #[test]
    fn merge_of_empty_buffers_is_empty() {
        let log = TraceLog::merge(vec![TraceBuffer::new(4), TraceBuffer::new(4)]);
        assert!(log.events.is_empty());
        assert!(log.strings.is_empty());
        assert_eq!(log.dropped, 0);
    }
}
