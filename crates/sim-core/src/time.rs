//! Simulation time: integer nanoseconds since simulation start.
//!
//! The paper's mechanism lives at very different scales — CPU operations are
//! tens of microseconds, pacing idle times are hundreds of microseconds to
//! tens of milliseconds (Table 2 spans 0.88 ms to 31.1 ms), RTTs are
//! milliseconds, and iPerf runs are minutes. Nanosecond integer resolution
//! covers all of them without rounding surprises: a `u64` of nanoseconds
//! holds ~584 years of simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating). Telemetry
    /// rows are stamped in microseconds: every sampling interval in use is
    /// ≥ 1 µs, and integer stamps keep flight-data output byte-stable.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration; used as an "infinite" sentinel
    /// (e.g. an RTT filter that has not yet seen a sample).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite
    /// input — durations in the simulator are always forward.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative, got {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds (for reporting and rate arithmetic).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds (for reporting: Table 2 prints idle time in ms).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer scale (e.g. a pacing stride), saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (e.g. a congestion-control gain), rounding to
    /// the nearest nanosecond. Panics on negative or non-finite factors.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(
            k.is_finite() && k >= 0.0,
            "scale must be finite and non-negative, got {k}"
        );
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self`; use [`SimTime::saturating_since`]
    /// when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than self"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    /// Dimensionless ratio of two durations.
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

fn format_ns(ns: u64) -> String {
    if ns == u64::MAX {
        "inf".to_string()
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_nanos(2_000_000_000));
        assert_eq!(SimTime::from_millis(5), SimTime::from_micros(5_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_micros(3), SimDuration::from_nanos(3_000));
    }

    #[test]
    fn time_plus_duration_round_trips() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn checked_since_detects_inversion() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_millis(1)));
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn strict_subtraction_panics_on_inversion() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(880); // Table 2 row 1x: 0.88 ms idle
        assert_eq!(d.saturating_mul(5), SimDuration::from_micros(4_400));
        assert_eq!(d * 2, SimDuration::from_micros(1_760));
        assert_eq!(d / 2, SimDuration::from_micros(440));
        assert!((d.mul_f64(2.5).as_nanos() as i64 - 2_200_000).abs() <= 1);
    }

    #[test]
    fn duration_ratio() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(2);
        assert!((a / b - 1.5).abs() < 1e-12);
    }

    #[test]
    fn float_second_round_trip() {
        let d = SimDuration::from_secs_f64(0.00322); // Table 2 row 5x idle
        assert_eq!(d.as_millis(), 3);
        assert!((d.as_millis_f64() - 3.22).abs() < 1e-9);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(880).to_string(), "880.000us");
        assert_eq!(SimDuration::from_millis(31).to_string(), "31.000ms");
        assert_eq!(SimDuration::from_secs(300).to_string(), "300.000s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }

    #[test]
    fn max_sentinel_saturates() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
    }

    proptest! {
        #[test]
        fn prop_add_then_subtract_identity(base in 0u64..1u64 << 40, delta in 0u64..1u64 << 40) {
            let t = SimTime::from_nanos(base);
            let d = SimDuration::from_nanos(delta);
            prop_assert_eq!((t + d) - t, d);
        }

        #[test]
        fn prop_saturating_since_never_negative(a in any::<u64>(), b in any::<u64>()) {
            let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
            // Whichever order we ask in, the result is a valid (non-panicking) duration,
            // and at least one direction is zero.
            let ab = ta.saturating_since(tb);
            let ba = tb.saturating_since(ta);
            prop_assert!(ab == SimDuration::ZERO || ba == SimDuration::ZERO);
        }

        #[test]
        fn prop_duration_ordering_consistent_with_nanos(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(
                SimDuration::from_nanos(a).cmp(&SimDuration::from_nanos(b)),
                a.cmp(&b)
            );
        }
    }
}
