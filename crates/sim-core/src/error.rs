//! The workspace-wide error type.
//!
//! Every fallible public operation in the reproduction — config
//! validation, sweep checkpoint/cache I/O, trace decoding, interrupted
//! sweeps, CLI parsing — reports a variant of one [`Error`] enum instead
//! of an ad-hoc `String`. Library code returns [`Result`]; the binaries
//! convert to a process exit code in exactly one place, at the edge of
//! `main`, via [`Error::exit_code`].

use std::path::PathBuf;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong across the reproduction's public API.
#[derive(Debug)]
pub enum Error {
    /// A configuration failed validation (see `SimConfig::builder`).
    InvalidConfig {
        /// The offending field ("connections", "warmup", "pacing.stride"…).
        field: &'static str,
        /// Why the value was rejected, with the value included.
        reason: String,
    },
    /// An I/O operation failed (result files, traces, corpus, …).
    Io {
        /// What was being attempted ("write results.json", …).
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A sweep checkpoint could not be created, read, or appended.
    ///
    /// Note that a *corrupt* checkpoint is not an error: the loader keeps
    /// the valid prefix and the engine recomputes the rest (the same
    /// tolerance contract as the run cache). This variant is for hard
    /// failures like an unwritable path.
    Checkpoint {
        /// The checkpoint file involved.
        path: PathBuf,
        /// What went wrong.
        reason: String,
    },
    /// A recorded trace failed to decode.
    TraceDecode {
        /// 1-based line number in the JSONL input (0 when not line-based).
        line: usize,
        /// What was malformed.
        reason: String,
    },
    /// A sweep was cancelled (Ctrl-C / `CancelToken`) before completing.
    ///
    /// In-flight cells were drained and the checkpoint (when configured)
    /// records every completed cell, so re-running with the same
    /// checkpoint resumes exactly where the sweep stopped.
    Interrupted {
        /// Cells fully completed and released before the stop.
        completed: u64,
        /// Cells the sweep was asked to run.
        total: u64,
    },
    /// A command-line invocation was malformed (usage error).
    Cli(String),
}

impl Error {
    /// Shorthand for [`Error::InvalidConfig`].
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        Error::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }

    /// Shorthand for [`Error::Io`] with a human context string.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source,
        }
    }

    /// The process exit code a binary should use for this error.
    ///
    /// Usage errors (bad flags, invalid configs, undecodable trace input)
    /// exit 2; an interrupted sweep exits 130 (the shell convention for
    /// SIGINT, `128 + 2`); everything else exits 1. Binaries call this at
    /// the edge of `main` only — library code never calls `exit`.
    pub fn exit_code(&self) -> i32 {
        match self {
            Error::Cli(_) | Error::InvalidConfig { .. } | Error::TraceDecode { .. } => 2,
            Error::Interrupted { .. } => 130,
            Error::Io { .. } | Error::Checkpoint { .. } => 1,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            Error::Io { context, source } => write!(f, "{context}: {source}"),
            Error::Checkpoint { path, reason } => {
                write!(f, "checkpoint {}: {reason}", path.display())
            }
            Error::TraceDecode { line, reason } => {
                if *line > 0 {
                    write!(f, "trace decode: line {line}: {reason}")
                } else {
                    write!(f, "trace decode: {reason}")
                }
            }
            Error::Interrupted { completed, total } => {
                write!(
                    f,
                    "interrupted after {completed}/{total} cells (checkpointed work will be \
                     reused on resume)"
                )
            }
            Error::Cli(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_edge_convention() {
        assert_eq!(Error::Cli("bad flag".into()).exit_code(), 2);
        assert_eq!(Error::invalid_config("connections", "zero").exit_code(), 2);
        assert_eq!(
            Error::TraceDecode {
                line: 3,
                reason: "bad kind".into()
            }
            .exit_code(),
            2
        );
        assert_eq!(
            Error::Interrupted {
                completed: 2,
                total: 10
            }
            .exit_code(),
            130
        );
        assert_eq!(Error::io("x", std::io::Error::other("y")).exit_code(), 1);
    }

    #[test]
    fn display_includes_the_field_and_reason() {
        let e = Error::invalid_config("warmup", "warmup 5s >= duration 2s");
        let s = e.to_string();
        assert!(s.contains("warmup"), "{s}");
        assert!(s.contains("duration"), "{s}");
        let s = Error::Interrupted {
            completed: 7,
            total: 100,
        }
        .to_string();
        assert!(s.contains("7/100"), "{s}");
    }
}
